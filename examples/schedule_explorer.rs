//! Schedule explorer: see why schedule and restriction choice matters.
//!
//! ```text
//! cargo run --release --example schedule_explorer
//! ```
//!
//! For the Cycle-6-Tri pattern (P3), this example generates every schedule
//! kept by the 2-phase generator, predicts each one's cost under the
//! performance model with its best restriction set, measures a handful of
//! them, and prints predicted rank vs measured time — a miniature Figure 9.

use graphpi::core::config::Configuration;
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::core::perf_model::{select_best, PerformanceModel};
use graphpi::core::schedule::{all_schedules, efficient_schedules};
use graphpi::graph::generators;
use graphpi::pattern::prefab;
use graphpi::pattern::restriction::{generate_restriction_sets, GenerationOptions};
use std::time::Instant;

fn main() {
    let graph = generators::power_law(1_000, 8, 11);
    let engine = GraphPi::new(graph);
    let pattern = prefab::p3();

    let every = all_schedules(&pattern);
    let kept = efficient_schedules(&pattern);
    println!(
        "P3 has {} possible schedules; the 2-phase generator keeps {}",
        every.len(),
        kept.len()
    );

    let mut sets = generate_restriction_sets(&pattern, GenerationOptions::default());
    sets.sort_by_key(|s| s.len());
    sets.truncate(8);
    println!(
        "{} restriction sets generated (showing the smallest 8)",
        sets.len()
    );

    let model = PerformanceModel::new(*engine.stats(), pattern.num_vertices());

    // Rank every kept schedule by its best restriction set.
    let mut ranked: Vec<(f64, usize)> = kept
        .iter()
        .enumerate()
        .map(|(i, schedule)| {
            let candidates: Vec<Configuration> = sets
                .iter()
                .map(|s| Configuration::new(pattern.clone(), schedule.clone(), s.clone()))
                .collect();
            let (best, estimates) = select_best(&model, &candidates);
            (estimates[best].total, i)
        })
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    // Measure the predicted best, the median and the predicted worst.
    println!("\npredicted-rank -> measured time:");
    for &(cost, idx) in [
        &ranked[0],
        &ranked[ranked.len() / 2],
        &ranked[ranked.len() - 1],
    ] {
        let schedule = &kept[idx];
        let candidates: Vec<Configuration> = sets
            .iter()
            .map(|s| Configuration::new(pattern.clone(), schedule.clone(), s.clone()))
            .collect();
        let (best, _) = select_best(&model, &candidates);
        let plan = candidates[best].compile();
        let start = Instant::now();
        let count = engine.execute_count(&plan, CountOptions::sequential_enumeration());
        println!(
            "  schedule {:?}  predicted {:.3e}  measured {:?}  count {}",
            schedule.order(),
            cost,
            start.elapsed(),
            count
        );
    }

    // What the full planner would have picked.
    let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
    println!(
        "\nplanner selection: schedule {:?}, restrictions {:?}",
        plan.plan.config.schedule.order(),
        plan.plan.config.restrictions.restrictions()
    );
}
