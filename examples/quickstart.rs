//! Quickstart: count and list a pattern in a synthetic social graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example walks through the whole GraphPi pipeline on a small power-law
//! graph: plan (restriction sets + schedules + performance model), inspect
//! the selected configuration, count with and without IEP, and peek at a few
//! concrete embeddings.

use graphpi::core::codegen::{generate, Language};
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::graph::generators;
use graphpi::pattern::prefab;
use std::time::Instant;

fn main() {
    // 1. A data graph. Any edge list works (see `graphpi::graph::io`); here
    //    we generate a 2,000-vertex power-law graph.
    let graph = generators::power_law(2_000, 8, 42);
    println!(
        "data graph: {} vertices, {} edges, {} triangles",
        graph.num_vertices(),
        graph.num_edges(),
        graphpi::graph::triangles::count_triangles(&graph)
    );

    // 2. The engine computes the statistics the performance model needs.
    let engine = GraphPi::new(graph);

    // 3. Plan the House pattern (the paper's running example).
    let pattern = prefab::house();
    let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
    println!(
        "\nplanning: {} restriction sets x {} schedules -> {} configurations ranked in {:?}",
        plan.restriction_sets_generated,
        plan.schedules_generated,
        plan.candidates_considered,
        plan.preprocessing_time
    );
    println!(
        "selected schedule {:?} with restrictions {:?} (predicted cost {:.3e})",
        plan.plan.config.schedule.order(),
        plan.plan.config.restrictions.restrictions(),
        plan.predicted_cost
    );

    // 4. The generated code for the selected configuration (what the original
    //    system would compile with gcc).
    println!(
        "\ngenerated matcher:\n{}",
        generate(&plan.plan, Language::Cpp)
    );

    // 5. Count, four ways: they all agree.
    let sequential = engine.execute_count(&plan.plan, CountOptions::sequential_enumeration());
    let with_iep = engine.execute_count(
        &plan.plan,
        CountOptions {
            use_iep: true,
            threads: 1,
            ..CountOptions::default()
        },
    );
    let parallel = engine.execute_count(
        &plan.plan,
        CountOptions {
            use_iep: true,
            threads: 0,
            ..CountOptions::default()
        },
    );
    // Hub acceleration: degree-descending relabeling + bitset rows for the
    // high-degree core (built once, cached by the engine).
    let hub_parallel = engine.execute_count(
        &plan.plan,
        CountOptions {
            use_iep: true,
            threads: 0,
            hub_bitsets: true,
            ..CountOptions::default()
        },
    );
    println!("house embeddings: {sequential} (enumeration) = {with_iep} (IEP) = {parallel} (parallel IEP) = {hub_parallel} (hub bitsets)");
    assert_eq!(sequential, with_iep);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential, hub_parallel);

    // 6. List a few embeddings explicitly.
    let embeddings = engine.list(&pattern).unwrap();
    println!("\nfirst embeddings (data vertices for pattern vertices A..E):");
    for emb in embeddings.iter().take(5) {
        println!("  {emb:?}");
    }

    // 7. The serving path: a long-lived Session owns a persistent worker
    //    pool and a compiled-plan cache. The first count is cold (plans and
    //    fills the cache); repeats skip planning and thread spawning
    //    entirely.
    let session = engine.session();
    let start = Instant::now();
    let cold = session.count(&pattern).unwrap();
    let cold_time = start.elapsed();
    let start = Instant::now();
    let mut warm = 0;
    let warm_iters = 5;
    for _ in 0..warm_iters {
        warm = session.count(&pattern).unwrap();
    }
    let warm_time = start.elapsed() / warm_iters;
    assert_eq!(cold, warm);
    let stats = session.cache_stats();
    println!(
        "\nserving session: cold query {cold_time:?}, warm query {warm_time:?} \
         (plan cache: {} hit(s), {} miss(es))",
        stats.hits, stats.misses
    );
}
