//! Parallel and simulated-distributed scaling.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```
//!
//! Measures real multi-threaded speedup on the local machine through the
//! serving [`Session`] API (persistent work-stealing pool, Section IV-E):
//! for every thread count the first query is cold (plans, fills the plan
//! cache, ramps the pool) and the repeats are warm. It then replays the
//! measured task durations on a simulated cluster to show the
//! strong-scaling behaviour the paper reports in Figure 12.

use graphpi::core::config::PoolOptions;
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions, Session};
use graphpi::core::exec::cluster::strong_scaling;
use graphpi::graph::generators;
use graphpi::pattern::prefab;
use std::time::Instant;

fn main() {
    let graph = generators::power_law(2_000, 12, 3);
    println!(
        "data graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let engine = GraphPi::new(graph);
    let pattern = prefab::house();
    let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();

    // Real threads on this machine, via a persistent pool per thread count.
    println!("\nlocal multi-threaded scaling (enumeration, Session warm path):");
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let session: Session<'_> = engine.session_with(
            PoolOptions {
                threads,
                ..PoolOptions::default()
            },
            PlanOptions::default(),
            CountOptions {
                use_iep: false,
                ..CountOptions::default()
            },
        );
        let start = Instant::now();
        let count = session.count(&pattern).unwrap();
        let cold = start.elapsed().as_secs_f64();
        let warm_iters = 3u32;
        let start = Instant::now();
        for _ in 0..warm_iters {
            assert_eq!(session.count(&pattern).unwrap(), count);
        }
        let warm = start.elapsed().as_secs_f64() / warm_iters as f64;
        let baseline_time = *baseline.get_or_insert(warm);
        println!(
            "  {threads:>2} threads: cold {cold:.3}s  warm {warm:.3}s  \
             warm speedup {:.2}x  (count {count})",
            baseline_time / warm
        );
    }

    // Simulated cluster (per-node queues + work stealing over measured
    // task durations).
    println!("\nsimulated cluster strong scaling (24 workers per node):");
    let node_counts = [1usize, 2, 4, 8, 16, 32];
    let curve = strong_scaling(&plan.plan, engine.graph(), &node_counts, 24, None);
    let single = curve[0].1.makespan_seconds;
    for (nodes, report) in &curve {
        println!(
            "  {nodes:>3} nodes: makespan {:>8.3}ms  speedup {:>6.1}x  efficiency {:>5.1}%  steals {}",
            report.makespan_seconds * 1e3,
            single / report.makespan_seconds.max(1e-12),
            report.efficiency() * 100.0,
            report.steals
        );
    }
    println!(
        "\n({} tasks measured once and replayed for every cluster size)",
        curve[0].1.num_tasks
    );
}
