//! Clique counting and the paper's worked patterns, with baseline
//! cross-checks.
//!
//! ```text
//! cargo run --release --example clique_and_house
//! ```
//!
//! Counts k-cliques (k = 3..5) and the paper's House / Cycle-6-Tri patterns
//! on two synthetic graphs with very different structure, comparing GraphPi
//! against the rebuilt GraphZero baseline and showing the effect of IEP.

use graphpi::baseline::GraphZeroEngine;
use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::graph::generators;
use graphpi::pattern::prefab;
use std::time::Instant;

fn analyse(label: &str, graph: graphpi::graph::CsrGraph) {
    println!(
        "\n=== {label}: {} vertices, {} edges ===",
        graph.num_vertices(),
        graph.num_edges()
    );
    let graphzero = GraphZeroEngine::new(graph.clone());
    let engine = GraphPi::new(graph);

    let mut workloads = vec![
        ("triangle (K3)".to_string(), prefab::clique(3)),
        ("clique K4".to_string(), prefab::clique(4)),
        ("clique K5".to_string(), prefab::clique(5)),
        ("house".to_string(), prefab::house()),
        ("cycle-6-tri".to_string(), prefab::cycle_6_tri()),
    ];

    for (name, pattern) in workloads.drain(..) {
        let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
        let start = Instant::now();
        let count = engine.execute_count(&plan.plan, CountOptions::default());
        let graphpi_time = start.elapsed();

        let start = Instant::now();
        let gz = graphzero.count(&pattern);
        let graphzero_time = start.elapsed();
        assert_eq!(count, gz, "baseline disagreement on {name}");

        println!(
            "  {name:<14} count={count:<12} GraphPi {graphpi_time:>10?}  GraphZero {graphzero_time:>10?}  (k={} IEP loops)",
            plan.plan.iep_suffix_len
        );
    }
}

fn main() {
    analyse(
        "power-law social graph",
        generators::power_law(2_500, 7, 99),
    );
    analyse(
        "uniform sparse graph",
        generators::erdos_renyi(2_500, 12_000, 99),
    );
}
