//! Motif counting: count every connected 3- and 4-vertex pattern in a graph.
//!
//! ```text
//! cargo run --release --example motif_counting [path/to/edge_list.txt]
//! ```
//!
//! Motif counting (the 4-motif workload the paper's introduction uses to
//! motivate specialised systems) is simply pattern counting over the family
//! of all connected patterns of a given size. With an edge-list path the
//! example analyses that graph; without one it generates a synthetic
//! co-authorship-like stand-in.

use graphpi::core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi::graph::{generators, io};
use graphpi::pattern::prefab;

fn main() {
    let graph = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading edge list from {path}");
            io::load_edge_list(&path).expect("failed to load edge list")
        }
        None => {
            println!("no edge list given; generating a synthetic co-authorship graph");
            generators::power_law(3_000, 6, 7)
        }
    };
    println!(
        "graph: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let engine = GraphPi::new(graph);

    println!("3-vertex motifs:");
    for (name, pattern) in prefab::motifs_3() {
        let count = engine
            .count_with(&pattern, PlanOptions::default(), CountOptions::default())
            .unwrap();
        println!("  {name:<10} {count}");
    }

    println!("\n4-vertex motifs:");
    let mut total = 0u64;
    for (name, pattern) in prefab::motifs_4() {
        let count = engine
            .count_with(&pattern, PlanOptions::default(), CountOptions::default())
            .unwrap();
        total += count;
        println!("  {name:<10} {count}");
    }
    println!("  {:<10} {total}", "total");

    // The global clustering coefficient falls out of the motif counts:
    // 3 * triangles / wedges.
    let triangle = engine
        .count_with(
            &prefab::triangle(),
            PlanOptions::default(),
            CountOptions::default(),
        )
        .unwrap();
    let wedge = engine
        .count_with(
            &prefab::path_pattern(3),
            PlanOptions::default(),
            CountOptions::default(),
        )
        .unwrap();
    println!(
        "\nglobal clustering coefficient = 3*triangles/wedges = {:.4}",
        3.0 * triangle as f64 / (wedge as f64 + 3.0 * triangle as f64)
    );
}
