//! Offline stand-in for the `rand` crate, exposing the 0.8-style API surface
//! used by this workspace: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`prelude::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64: tiny, fast, and statistically fine for the
//! synthetic-graph generation and sampling done here. Seeded streams differ
//! from the real `rand` crate's ChaCha-based `StdRng`.

/// Concrete random number generators.
pub mod rngs {
    /// A seedable pseudo-random generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble once so that nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x51_7C_C1_B7_27_22_0A_95,
            };
            let _ = crate::RngCore::next_u64(&mut rng);
            rng
        }
    }
}

/// The raw entropy source behind [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free uniform sample in `[0, bound)` via 128-bit multiply.
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Extra methods on slices: random shuffling.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0u32..100);
            assert_eq!(x, b.gen_range(0u32..100));
            assert!(x < 100);
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(2usize..=4) - 2] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
