//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Supports the subset used by this workspace: [`Criterion::bench_function`]
//! with [`Bencher::iter`], the [`criterion_group!`] / [`criterion_main!`]
//! macros (including the `name = ...; config = ...; targets = ...` form),
//! and [`black_box`]. Timing is a plain mean over `sample_size` batches
//! printed to stdout — no statistics, plots, or saved baselines.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The measured outcome of one `bench_function` run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// The benchmark id passed to [`Criterion::bench_function`].
    pub id: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Total number of timed iterations.
    pub iters: u64,
}

/// Process-wide registry of completed benchmark results, filled by
/// [`Criterion::bench_function`]. Lets `harness = false` bench mains emit
/// machine-readable reports (e.g. `BENCH_micro.json`) after running their
/// groups.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains and returns every result recorded so far, in execution order.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("bench results poisoned"))
}

/// Benchmark driver: collects configuration and runs benchmark closures.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: also discovers how many iterations fit in one sample.
        let warm_up_start = Instant::now();
        let mut iters_per_sample = 0u64;
        while warm_up_start.elapsed() < self.warm_up_time || iters_per_sample == 0 {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            iters_per_sample += 1;
        }

        let per_sample = (self.measurement_time.as_nanos()
            / (self.sample_size as u128)
            / bencher.elapsed.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            bencher.iters = per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total += bencher.elapsed;
            total_iters += per_sample;
        }

        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!("{id:<40} {:>12}  ({total_iters} iters)", format_ns(mean_ns));
        RESULTS
            .lock()
            .expect("bench results poisoned")
            .push(BenchResult {
                id: id.to_string(),
                mean_ns,
                iters: total_iters,
            });
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the driver requests.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u64;
        quick().bench_function("stub/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn results_are_recorded_for_reporting() {
        quick().bench_function("stub/registry_test", |b| b.iter(|| black_box(3 * 3)));
        let results = take_results();
        let mine = results
            .iter()
            .find(|r| r.id == "stub/registry_test")
            .expect("bench result recorded");
        assert!(mine.mean_ns >= 0.0);
        assert!(mine.iters > 0);
    }

    #[test]
    fn group_and_main_macros_expand() {
        fn target(c: &mut Criterion) {
            c.bench_function("stub/macro_test", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(
            name = group;
            config = quick();
            targets = target
        );
        group();
    }
}
