//! Offline stand-in for the `crossbeam` crate, exposing the
//! [`deque::Injector`] / [`deque::Steal`] API used by the work-stealing
//! executor. The queue is a mutex-guarded `VecDeque` rather than a lock-free
//! deque: same FIFO semantics, different contention profile.

/// Work-stealing queue primitives (`crossbeam-deque` API subset).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A FIFO queue that any thread can push to and steal from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// Outcome of a [`Injector::steal`] attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The queue was observed empty.
        Empty,
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends a task at the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Attempts to pop the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                Err(_) => Steal::Retry,
            }
        }

        /// Returns `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Returns the observed queue length.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_until_empty() {
            let inj = Injector::new();
            for i in 0..5 {
                inj.push(i);
            }
            assert_eq!(inj.len(), 5);
            for i in 0..5 {
                assert_eq!(inj.steal(), Steal::Success(i));
            }
            assert_eq!(inj.steal(), Steal::Empty);
            assert!(inj.is_empty());
        }

        #[test]
        fn concurrent_stealing_drains_everything() {
            let inj = Injector::new();
            let n = 10_000u64;
            for i in 0..n {
                inj.push(i);
            }
            let total = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| loop {
                        match inj.steal() {
                            Steal::Success(v) => {
                                total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    });
                }
            });
            assert_eq!(
                total.load(std::sync::atomic::Ordering::Relaxed),
                n * (n - 1) / 2
            );
        }
    }
}
