//! Offline stand-in for the `crossbeam` crate, exposing the subset of the
//! `crossbeam-deque` API used by the work-stealing executor: per-worker
//! Chase–Lev deques ([`deque::Worker`] / [`deque::Stealer`]) plus a global
//! FIFO [`deque::Injector`] with batched transfers
//! ([`deque::Injector::steal_batch_and_pop`]) — and the subset of
//! `crossbeam-utils`' parking API ([`sync::Parker`] / [`sync::Unparker`])
//! used by the persistent worker pool to idle without burning a core.
//!
//! The worker deque is a real lock-free Chase–Lev deque (Chase & Lev,
//! *Dynamic Circular Work-Stealing Deque*, with the memory orderings of
//! Lê et al., *Correct and Efficient Work-Stealing for Weak Memory Models*):
//! the owner pushes and pops at the bottom without contention, thieves CAS
//! the top. The injector remains mutex-backed — it is the cold path, touched
//! once per *batch* rather than once per task — and, unlike the previous
//! stand-in, it **panics on a poisoned mutex** instead of returning
//! [`deque::Steal::Retry`] forever (which livelocked every worker once any
//! thread died while holding the lock).

/// Work-stealing queue primitives (`crossbeam-deque` API subset).
pub mod deque {
    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    /// Default number of tasks moved per batched steal.
    pub const BATCH: usize = 32;

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The queue was observed empty.
        Empty,
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// Fixed-capacity ring buffer of `MaybeUninit<T>` slots, indexed by the
    /// deque's monotonically increasing logical indices.
    struct RingBuffer<T> {
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: usize,
    }

    impl<T> RingBuffer<T> {
        fn new(capacity: usize) -> Self {
            debug_assert!(capacity.is_power_of_two());
            let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect();
            Self {
                slots,
                mask: capacity - 1,
            }
        }

        fn capacity(&self) -> usize {
            self.mask + 1
        }

        /// # Safety
        /// The caller must hold exclusive logical ownership of index `i`.
        unsafe fn write(&self, i: isize, value: T) {
            (*self.slots[(i as usize) & self.mask].get()).write(value);
        }

        /// # Safety
        /// The caller must ensure index `i` holds an initialised value and
        /// either owns it exclusively or validates the read with a CAS
        /// before using (and `mem::forget`s the copy on CAS failure).
        unsafe fn read(&self, i: isize) -> T {
            (*self.slots[(i as usize) & self.mask].get()).assume_init_read()
        }
    }

    /// State shared between one [`Worker`] and its [`Stealer`]s.
    struct Shared<T> {
        /// Next index a thief steals from (only ever incremented).
        top: AtomicIsize,
        /// Next index the owner pushes to.
        bottom: AtomicIsize,
        /// Current ring buffer.
        buffer: AtomicPtr<RingBuffer<T>>,
        /// Buffers retired by growth. Thieves may still be reading a retired
        /// buffer when the owner swaps in a larger one, so retired buffers
        /// stay allocated until the deque itself is dropped (growth is rare:
        /// amortised O(log n) buffers for n pushes).
        retired: Mutex<Vec<*mut RingBuffer<T>>>,
    }

    unsafe impl<T: Send> Send for Shared<T> {}
    unsafe impl<T: Send> Sync for Shared<T> {}

    impl<T> Drop for Shared<T> {
        fn drop(&mut self) {
            // Sole owner at this point: drop the remaining tasks, the live
            // buffer, and every retired buffer.
            let top = self.top.load(Ordering::Relaxed);
            let bottom = self.bottom.load(Ordering::Relaxed);
            let buffer = self.buffer.load(Ordering::Relaxed);
            unsafe {
                for i in top..bottom {
                    drop((*buffer).read(i));
                }
                drop(Box::from_raw(buffer));
            }
            for &retired in self
                .retired
                .lock()
                .expect("deque retired-buffer list poisoned")
                .iter()
            {
                unsafe { drop(Box::from_raw(retired)) };
            }
        }
    }

    /// The owner handle of a Chase–Lev work-stealing deque.
    ///
    /// `Worker` is `Send` but deliberately not `Sync`: exactly one thread
    /// may push/pop at the bottom. Any number of [`Stealer`]s (obtained via
    /// [`Worker::stealer`]) may concurrently steal from the top.
    pub struct Worker<T> {
        shared: Arc<Shared<T>>,
        /// Opt out of `Sync` (raw pointers are `!Sync`).
        _not_sync: PhantomData<*mut ()>,
    }

    unsafe impl<T: Send> Send for Worker<T> {}

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    impl<T> std::fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Worker").field("len", &self.len()).finish()
        }
    }

    impl<T> Worker<T> {
        /// Creates a new deque whose owner pops in LIFO order (the order
        /// that keeps the working set cache-hot; thieves always steal the
        /// oldest task, FIFO from their point of view).
        pub fn new_lifo() -> Self {
            let buffer = Box::into_raw(Box::new(RingBuffer::new(64)));
            Self {
                shared: Arc::new(Shared {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    buffer: AtomicPtr::new(buffer),
                    retired: Mutex::new(Vec::new()),
                }),
                _not_sync: PhantomData,
            }
        }

        /// Creates a [`Stealer`] handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }

        /// Observed number of queued tasks.
        pub fn len(&self) -> usize {
            let bottom = self.shared.bottom.load(Ordering::Relaxed);
            let top = self.shared.top.load(Ordering::Relaxed);
            bottom.saturating_sub(top).max(0) as usize
        }

        /// Whether the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Pushes a task at the bottom (owner only).
        pub fn push(&self, task: T) {
            let shared = &*self.shared;
            let bottom = shared.bottom.load(Ordering::Relaxed);
            let top = shared.top.load(Ordering::Acquire);
            let mut buffer = shared.buffer.load(Ordering::Relaxed);
            unsafe {
                if bottom - top >= (*buffer).capacity() as isize {
                    buffer = self.grow(top, bottom, buffer);
                }
                (*buffer).write(bottom, task);
            }
            shared.bottom.store(bottom + 1, Ordering::Release);
        }

        /// Pops the most recently pushed task (owner only).
        pub fn pop(&self) -> Option<T> {
            let shared = &*self.shared;
            let bottom = shared.bottom.load(Ordering::Relaxed) - 1;
            let buffer = shared.buffer.load(Ordering::Relaxed);
            shared.bottom.store(bottom, Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::SeqCst);
            let top = shared.top.load(Ordering::Relaxed);

            if top > bottom {
                // Deque was empty; restore bottom.
                shared.bottom.store(bottom + 1, Ordering::Relaxed);
                return None;
            }
            let task = unsafe { (*buffer).read(bottom) };
            if top == bottom {
                // Last task: race against thieves for it.
                let won = shared
                    .top
                    .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                shared.bottom.store(bottom + 1, Ordering::Relaxed);
                if won {
                    Some(task)
                } else {
                    // A thief got it; it owns the value now.
                    std::mem::forget(task);
                    None
                }
            } else {
                Some(task)
            }
        }

        /// Doubles the buffer, copying the live range `[top, bottom)`. The
        /// old buffer is retired (kept allocated) because thieves may still
        /// be reading from it.
        unsafe fn grow(
            &self,
            top: isize,
            bottom: isize,
            old: *mut RingBuffer<T>,
        ) -> *mut RingBuffer<T> {
            let new = Box::into_raw(Box::new(RingBuffer::new((*old).capacity() * 2)));
            for i in top..bottom {
                // Copy (not move): the old slot stays untouched for racing
                // thieves; ownership is logically transferred to the new
                // buffer, and retired buffers are never read() at drop.
                let value = std::ptr::read((*old).slots[(i as usize) & (*old).mask].get());
                (*new).slots[(i as usize) & (*new).mask].get().write(value);
            }
            self.shared
                .retired
                .lock()
                .expect("deque retired-buffer list poisoned")
                .push(old);
            self.shared.buffer.store(new, Ordering::Release);
            new
        }
    }

    /// A thief handle of a Chase–Lev deque. Cloneable and shareable across
    /// threads.
    pub struct Stealer<T> {
        shared: Arc<Shared<T>>,
    }

    unsafe impl<T: Send> Send for Stealer<T> {}
    unsafe impl<T: Send> Sync for Stealer<T> {}

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> std::fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Stealer").finish_non_exhaustive()
        }
    }

    impl<T> Stealer<T> {
        /// Observed number of queued tasks.
        pub fn len(&self) -> usize {
            let top = self.shared.top.load(Ordering::Relaxed);
            let bottom = self.shared.bottom.load(Ordering::Relaxed);
            bottom.saturating_sub(top).max(0) as usize
        }

        /// Whether the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Attempts to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            let shared = &*self.shared;
            let top = shared.top.load(Ordering::Acquire);
            std::sync::atomic::fence(Ordering::SeqCst);
            let bottom = shared.bottom.load(Ordering::Acquire);
            if top >= bottom {
                return Steal::Empty;
            }
            let buffer = shared.buffer.load(Ordering::Acquire);
            let task = unsafe { (*buffer).read(top) };
            if shared
                .top
                .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(task)
            } else {
                // Lost the race; the value belongs to whoever won.
                std::mem::forget(task);
                Steal::Retry
            }
        }

        /// Steals a batch of tasks (up to half the victim's queue, capped at
        /// [`BATCH`]), moving all but the first into `dest` and returning the
        /// first.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            match self.steal() {
                Steal::Success(first) => {
                    // Grab up to half of what remains, one CAS each; every
                    // single steal is linearisable so the batch as a whole
                    // cannot lose or duplicate tasks.
                    let extra = (self.len() / 2).min(BATCH - 1);
                    for _ in 0..extra {
                        match self.steal() {
                            Steal::Success(task) => dest.push(task),
                            Steal::Empty | Steal::Retry => break,
                        }
                    }
                    Steal::Success(first)
                }
                other => other,
            }
        }
    }

    /// A global FIFO queue every thread can push to and steal from.
    ///
    /// Mutex-backed by design: the executor touches it once per *batch*
    /// ([`Injector::push_batch`] / [`Injector::steal_batch_and_pop`]), so
    /// lock traffic is amortised over [`BATCH`] tasks. A poisoned mutex
    /// panics — the previous stand-in returned [`Steal::Retry`] forever,
    /// livelocking every surviving worker.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // Propagate a worker's death instead of spinning forever.
            self.queue.lock().expect("injector mutex poisoned")
        }

        /// Appends a task at the back of the queue.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Appends every task of a batch, taking the lock once.
        pub fn push_batch(&self, tasks: impl IntoIterator<Item = T>) {
            let mut queue = self.lock();
            queue.extend(tasks);
        }

        /// Attempts to pop the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.lock().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Pops up to [`BATCH`] tasks, pushing all but the first into `dest`
        /// and returning the first. One lock acquisition per batch.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.lock();
            let first = match queue.pop_front() {
                Some(task) => task,
                None => return Steal::Empty,
            };
            let extra = queue.len().min(BATCH - 1);
            for _ in 0..extra {
                // `extra <= len`, so the pops cannot fail.
                dest.push(queue.pop_front().expect("len-checked pop"));
            }
            Steal::Success(first)
        }

        /// Returns `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Returns the observed queue length.
        pub fn len(&self) -> usize {
            self.lock().len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicU64;

        #[test]
        fn injector_fifo_until_empty() {
            let inj = Injector::new();
            for i in 0..5 {
                inj.push(i);
            }
            assert_eq!(inj.len(), 5);
            for i in 0..5 {
                assert_eq!(inj.steal(), Steal::Success(i));
            }
            assert_eq!(inj.steal(), Steal::Empty);
            assert!(inj.is_empty());
        }

        #[test]
        fn injector_concurrent_stealing_drains_everything() {
            let inj = Injector::new();
            let n = 10_000u64;
            for i in 0..n {
                inj.push(i);
            }
            let total = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| loop {
                        match inj.steal() {
                            Steal::Success(v) => {
                                total.fetch_add(v, Ordering::Relaxed);
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
        }

        #[test]
        fn worker_lifo_pop_stealer_fifo_steal() {
            let w: Worker<u32> = Worker::new_lifo();
            let s = w.stealer();
            for i in 0..4 {
                w.push(i);
            }
            assert_eq!(w.len(), 4);
            assert_eq!(w.pop(), Some(3)); // owner pops newest
            assert_eq!(s.steal(), Steal::Success(0)); // thief steals oldest
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), None);
            assert!(s.steal().is_empty());
        }

        #[test]
        fn worker_grows_past_initial_capacity() {
            let w: Worker<usize> = Worker::new_lifo();
            for i in 0..10_000 {
                w.push(i);
            }
            assert_eq!(w.len(), 10_000);
            for i in (0..10_000).rev() {
                assert_eq!(w.pop(), Some(i));
            }
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn batch_steal_moves_tasks_into_destination() {
            let inj = Injector::new();
            inj.push_batch(0..100u32);
            let w: Worker<u32> = Worker::new_lifo();
            let got = inj.steal_batch_and_pop(&w);
            assert_eq!(got, Steal::Success(0));
            assert_eq!(w.len(), BATCH - 1);
            assert_eq!(inj.len(), 100 - BATCH);
        }

        #[test]
        fn stealer_batch_steals_up_to_half() {
            let victim: Worker<u32> = Worker::new_lifo();
            for i in 0..100 {
                victim.push(i);
            }
            let dest: Worker<u32> = Worker::new_lifo();
            let got = victim.stealer().steal_batch_and_pop(&dest);
            assert_eq!(got, Steal::Success(0));
            assert!(dest.len() < BATCH);
            assert!(dest.len() + victim.len() == 99);
        }

        #[test]
        fn drop_releases_queued_tasks() {
            // Heap-allocated tasks left in the deque must be freed on drop
            // (covers the live buffer, and growth retires buffers cleanly).
            let w: Worker<Box<u64>> = Worker::new_lifo();
            for i in 0..1000 {
                w.push(Box::new(i));
            }
            let _ = w.pop();
            drop(w);
        }

        /// Concurrent owner pops + multiple thieves: every task is received
        /// exactly once (checksum + per-task seen bitmap).
        fn stress_once(num_tasks: usize, thieves: usize) {
            let w: Worker<usize> = Worker::new_lifo();
            let stealer = w.stealer();
            let seen: Vec<std::sync::atomic::AtomicU8> = (0..num_tasks)
                .map(|_| std::sync::atomic::AtomicU8::new(0))
                .collect();
            let done = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                for _ in 0..thieves {
                    s.spawn(|| {
                        let local: Worker<usize> = Worker::new_lifo();
                        loop {
                            let task = match local.pop() {
                                Some(t) => Some(t),
                                None => stealer.steal_batch_and_pop(&local).success(),
                            };
                            match task {
                                Some(t) => {
                                    assert_eq!(seen[t].fetch_add(1, Ordering::Relaxed), 0);
                                }
                                None => {
                                    if done.load(Ordering::Acquire) && stealer.is_empty() {
                                        break;
                                    }
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    });
                }
                // Owner interleaves pushes with occasional pops.
                let mut popped = 0usize;
                for i in 0..num_tasks {
                    w.push(i);
                    if i % 7 == 0 {
                        if let Some(t) = w.pop() {
                            assert_eq!(seen[t].fetch_add(1, Ordering::Relaxed), 0);
                            popped += 1;
                        }
                    }
                }
                // Drain whatever the thieves left behind.
                while let Some(t) = w.pop() {
                    assert_eq!(seen[t].fetch_add(1, Ordering::Relaxed), 0);
                    popped += 1;
                }
                let _ = popped;
                done.store(true, Ordering::Release);
            });
            for (i, flag) in seen.iter().enumerate() {
                assert_eq!(
                    flag.load(Ordering::Relaxed),
                    1,
                    "task {i} lost or duplicated"
                );
            }
        }

        #[test]
        fn chase_lev_stress_no_lost_or_duplicated_tasks() {
            stress_once(20_000, 3);
        }

        /// The executor's full topology: multiple producers pushing batches
        /// into the injector, workers refilling their deques from the
        /// injector and stealing from each other. Every task must be
        /// received exactly once.
        #[test]
        fn pipeline_stress_no_lost_or_duplicated_tasks() {
            const PRODUCERS: usize = 3;
            const WORKERS: usize = 4;
            const PER_PRODUCER: usize = 10_000;
            let injector: Injector<usize> = Injector::new();
            let seen: Vec<std::sync::atomic::AtomicU8> = (0..PRODUCERS * PER_PRODUCER)
                .map(|_| std::sync::atomic::AtomicU8::new(0))
                .collect();
            let done = std::sync::atomic::AtomicBool::new(false);
            let workers: Vec<Worker<usize>> = (0..WORKERS).map(|_| Worker::new_lifo()).collect();
            let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
            std::thread::scope(|s| {
                for p in 0..PRODUCERS {
                    let injector = &injector;
                    s.spawn(move || {
                        let base = p * PER_PRODUCER;
                        for chunk in (0..PER_PRODUCER).collect::<Vec<_>>().chunks(17) {
                            injector.push_batch(chunk.iter().map(|i| base + i));
                        }
                    });
                }
                let producers_done = &done;
                for (me, worker) in workers.into_iter().enumerate() {
                    let injector = &injector;
                    let stealers = &stealers;
                    let seen = &seen;
                    s.spawn(move || loop {
                        let task = worker.pop().or_else(|| {
                            injector.steal_batch_and_pop(&worker).success().or_else(|| {
                                stealers
                                    .iter()
                                    .enumerate()
                                    .filter(|(i, _)| *i != me)
                                    .find_map(|(_, st)| st.steal_batch_and_pop(&worker).success())
                            })
                        });
                        match task {
                            Some(t) => {
                                assert_eq!(seen[t].fetch_add(1, Ordering::Relaxed), 0);
                            }
                            None => {
                                if producers_done.load(Ordering::Acquire) && injector.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    });
                }
                // This scope block returns once the producers AND workers
                // finish, so flip `done` from here once every task has been
                // seen. Bounded wait: a lost task (sum stuck low) or a
                // duplicated one (sum overshoots, never equal) must fail
                // with diagnostics, not hang CI.
                let seen_all = || {
                    seen.iter()
                        .map(|f| f.load(Ordering::Relaxed) as usize)
                        .sum::<usize>()
                        == PRODUCERS * PER_PRODUCER
                };
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                while !seen_all() {
                    if std::time::Instant::now() > deadline {
                        // Release the workers before panicking so the scope
                        // can join them.
                        done.store(true, Ordering::Release);
                        let missing: Vec<usize> = seen
                            .iter()
                            .enumerate()
                            .filter(|(_, f)| f.load(Ordering::Relaxed) == 0)
                            .map(|(i, _)| i)
                            .collect();
                        panic!(
                            "pipeline stress timed out: {} tasks unseen (first few: {:?})",
                            missing.len(),
                            &missing[..missing.len().min(8)]
                        );
                    }
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Release);
            });
            for (i, flag) in seen.iter().enumerate() {
                assert_eq!(
                    flag.load(Ordering::Relaxed),
                    1,
                    "task {i} lost or duplicated"
                );
            }
        }

        #[test]
        #[ignore = "tier-2: long-running randomized stress"]
        fn chase_lev_stress_heavy() {
            for round in 0..20 {
                stress_once(50_000, 2 + (round % 5));
            }
        }
    }
}

/// Thread parking primitives (`crossbeam-utils::sync` API subset).
pub mod sync {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// Shared parking state: a one-shot token plus the condvar the parked
    /// thread sleeps on. The token makes `unpark` permits sticky — an
    /// `unpark` delivered *before* the matching `park` is not lost, which is
    /// what makes the "check for work, then park" pattern race-free.
    #[derive(Debug, Default)]
    struct ParkState {
        /// One wake-up permit. Stored outside the mutex so `unpark` on an
        /// already-tokened parker is a single atomic store.
        token: AtomicBool,
        /// Guards the sleep itself (condvars need a mutex).
        lock: Mutex<()>,
        cvar: Condvar,
    }

    /// The parking side of a [`Parker`]/[`Unparker`] pair.
    ///
    /// A `Parker` is owned by exactly one thread, which calls [`Parker::park`]
    /// or [`Parker::park_timeout`]; any number of [`Unparker`] clones may
    /// wake it from other threads. Consecutive `unpark`s collapse into a
    /// single token, so a parked consumer must re-check its wake condition
    /// in a loop, exactly like a condvar wait.
    #[derive(Debug)]
    pub struct Parker {
        state: Arc<ParkState>,
        /// Opt out of `Sync`: one thread parks (mirrors the real crate).
        _not_sync: std::marker::PhantomData<*mut ()>,
    }

    unsafe impl Send for Parker {}

    impl Default for Parker {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Parker {
        /// Creates a parker with no pending token.
        pub fn new() -> Self {
            Self {
                state: Arc::new(ParkState::default()),
                _not_sync: std::marker::PhantomData,
            }
        }

        /// Creates an [`Unparker`] handle for this parker.
        pub fn unparker(&self) -> Unparker {
            Unparker {
                state: Arc::clone(&self.state),
            }
        }

        /// Blocks until an [`Unparker::unpark`] token arrives (consuming a
        /// token delivered earlier returns immediately).
        pub fn park(&self) {
            self.park_inner(None);
        }

        /// Like [`Parker::park`] but gives up after `timeout`. Used by pool
        /// workers that ran out of local work: sleeping with a short timeout
        /// bounds steal latency while still releasing the core.
        pub fn park_timeout(&self, timeout: Duration) {
            self.park_inner(Some(timeout));
        }

        fn park_inner(&self, timeout: Option<Duration>) {
            // Fast path: a token is already banked.
            if self.state.token.swap(false, Ordering::Acquire) {
                return;
            }
            let mut guard = self.state.lock.lock().expect("parker mutex poisoned");
            let deadline = timeout.map(|t| std::time::Instant::now() + t);
            loop {
                if self.state.token.swap(false, Ordering::Acquire) {
                    return;
                }
                match deadline {
                    None => {
                        guard = self.state.cvar.wait(guard).expect("parker mutex poisoned");
                    }
                    Some(deadline) => {
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            return;
                        }
                        let (g, _timed_out) = self
                            .state
                            .cvar
                            .wait_timeout(guard, deadline - now)
                            .expect("parker mutex poisoned");
                        guard = g;
                    }
                }
            }
        }
    }

    /// The waking side of a [`Parker`]. Clone freely and share across
    /// threads.
    #[derive(Debug, Clone)]
    pub struct Unparker {
        state: Arc<ParkState>,
    }

    impl Unparker {
        /// Banks one wake-up token and wakes the parked thread if there is
        /// one. Tokens do not accumulate: unparking twice before a park
        /// wakes exactly one park.
        pub fn unpark(&self) {
            self.state.token.store(true, Ordering::Release);
            // Take the lock before notifying so the store cannot slot into
            // the parked thread's check-then-wait window.
            drop(self.state.lock.lock().expect("parker mutex poisoned"));
            self.state.cvar.notify_one();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicUsize;

        #[test]
        fn unpark_before_park_returns_immediately() {
            let p = Parker::new();
            p.unparker().unpark();
            p.park(); // must not block
        }

        #[test]
        fn park_timeout_expires_without_token() {
            let p = Parker::new();
            let start = std::time::Instant::now();
            p.park_timeout(Duration::from_millis(10));
            assert!(start.elapsed() >= Duration::from_millis(5));
        }

        #[test]
        fn tokens_do_not_accumulate() {
            let p = Parker::new();
            let u = p.unparker();
            u.unpark();
            u.unpark();
            p.park(); // consumes the single banked token
            let start = std::time::Instant::now();
            p.park_timeout(Duration::from_millis(10)); // must wait
            assert!(start.elapsed() >= Duration::from_millis(5));
        }

        #[test]
        fn unpark_wakes_a_parked_thread() {
            let p = Parker::new();
            let u = p.unparker();
            let woke = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let woke = &woke;
                // Parker is deliberately !Sync: move it into its thread.
                s.spawn(move || {
                    p.park();
                    woke.fetch_add(1, Ordering::SeqCst);
                });
                std::thread::sleep(Duration::from_millis(20));
                u.unpark();
            });
            assert_eq!(woke.load(Ordering::SeqCst), 1);
        }

        /// Strictly alternating ping-pong: tokens never collapse (unlike N
        /// blind unparks against N parks, which would deadlock by design),
        /// so this exercises the sleep/wake handshake hundreds of times.
        #[test]
        fn repeated_park_unpark_rounds() {
            let a = Parker::new();
            let ua = a.unparker();
            let b = Parker::new();
            let ub = b.unparker();
            let rounds = 200usize;
            std::thread::scope(|s| {
                s.spawn(move || {
                    for _ in 0..rounds {
                        a.park();
                        ub.unpark();
                    }
                });
                for _ in 0..rounds {
                    ua.unpark();
                    b.park();
                }
            });
        }
    }
}
