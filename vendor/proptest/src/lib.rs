//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! (including `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, the [`strategy::Strategy`] trait
//! with `prop_map`, `prop_flat_map` and `prop_shuffle`, strategies for
//! integer ranges, tuples and [`strategy::Just`], and
//! [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest: generation is driven by a fixed
//! deterministic seed derived from the test function's name (failures
//! reproduce exactly across runs), and there is **no shrinking** — a
//! failing case is reported as-is by the underlying `assert!`.

pub mod strategy;

/// Collection strategies (`proptest::collection` API subset).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose cardinality falls in `size` (best effort when
    /// the element domain is smaller than the requested size).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Test-runner configuration and the deterministic RNG behind generation.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic generator seeded from the test name, backed by the
    /// vendored `rand` crate's `StdRng` (real proptest also builds on
    /// `rand`, so the sampling logic lives in one place).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (FNV-1a hash), so
        /// each property gets a distinct but fully reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            use rand::SeedableRng;
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                inner: rand::rngs::StdRng::seed_from_u64(hash),
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform sample in `[0, bound)`; `bound` of zero returns zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            rand::Rng::gen_range(&mut self.inner, 0..bound)
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds for the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions differ for the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..100, 0..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, y in 3u32..=6) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((3..=6).contains(&y));
        }

        #[test]
        fn map_and_flat_map_compose(v in small_vec().prop_map(|mut v| { v.sort_unstable(); v })) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn sets_are_deduplicated(s in crate::collection::btree_set(0u32..50, 0..20)) {
            let as_vec: Vec<u32> = s.iter().copied().collect();
            prop_assert!(as_vec.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn shuffle_preserves_elements(v in Just((0usize..20).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0usize..20).collect::<Vec<_>>());
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = small_vec();
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
