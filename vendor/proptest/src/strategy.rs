//! The [`Strategy`] trait and the combinators/primitive strategies this
//! workspace uses: integer ranges, tuples, [`Just`], `prop_map`,
//! `prop_flat_map`, and `prop_shuffle`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }

    /// Generates a value, builds a new strategy from it, and samples that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap {
            source: self,
            flat_map,
        }
    }

    /// Randomly permutes generated vectors (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { source: self }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.flat_map)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    source: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut items = self.source.generate(rng);
        for i in (1..items.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
        items
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
