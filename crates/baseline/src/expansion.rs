//! A Fractal/Arabesque-style breadth-first embedding-expansion baseline.
//!
//! General-purpose graph mining systems (Arabesque, Fractal, RStream)
//! materialise *partial embeddings* level by level: level `i` holds every
//! injective, edge-preserving mapping of the first `i` pattern vertices, and
//! level `i + 1` is produced by extending each of them with one more data
//! vertex. The intermediate data grows combinatorially — the reason the
//! paper's introduction cites terabyte-scale intermediate state for such
//! systems — and no symmetry breaking or schedule optimisation is applied
//! until the final deduplication.
//!
//! This module reproduces that architecture (bounded by an explicit budget
//! so experiments can report "exceeded budget" instead of exhausting
//! memory, mirroring the paper's "T" entries for runs over the time limit).

use graphpi_core::schedule::connected_schedules;
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_pattern::automorphism::automorphism_count;
use graphpi_pattern::pattern::Pattern;

/// Result of an expansion run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpansionOutcome {
    /// The run finished; the value is the number of distinct embeddings.
    Finished(u64),
    /// The number of materialised partial embeddings exceeded the budget at
    /// the given level.
    BudgetExceeded {
        /// Level (number of mapped pattern vertices) at which the run gave up.
        level: usize,
        /// Number of partial embeddings materialised when the budget tripped.
        partials: usize,
    },
}

impl ExpansionOutcome {
    /// The embedding count, if the run finished.
    pub fn count(&self) -> Option<u64> {
        match self {
            ExpansionOutcome::Finished(c) => Some(*c),
            ExpansionOutcome::BudgetExceeded { .. } => None,
        }
    }
}

/// The expansion-style baseline engine.
#[derive(Debug, Clone)]
pub struct ExpansionEngine {
    graph: CsrGraph,
    /// Maximum number of partial embeddings materialised at any level.
    max_partials: usize,
}

impl ExpansionEngine {
    /// Default budget on materialised partial embeddings.
    pub const DEFAULT_MAX_PARTIALS: usize = 20_000_000;

    /// Wraps a data graph with the default budget.
    pub fn new(graph: CsrGraph) -> Self {
        Self {
            graph,
            max_partials: Self::DEFAULT_MAX_PARTIALS,
        }
    }

    /// Overrides the partial-embedding budget.
    pub fn with_budget(graph: CsrGraph, max_partials: usize) -> Self {
        Self {
            graph,
            max_partials,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Counts embeddings by levelwise expansion.
    pub fn count(&self, pattern: &Pattern) -> ExpansionOutcome {
        let n = pattern.num_vertices();
        if n == 0 {
            return ExpansionOutcome::Finished(0);
        }
        // Expansion systems still need a connected exploration order; use
        // the first connected order (no optimisation — that is the point of
        // the baseline).
        let order = connected_schedules(pattern)
            .into_iter()
            .next()
            .map(|s| s.order().to_vec())
            .unwrap_or_else(|| (0..n).collect());

        // Level 1: every data vertex is a partial embedding of the first
        // pattern vertex.
        let mut partials: Vec<Vec<VertexId>> = self.graph.vertices().map(|v| vec![v]).collect();
        for level in 1..n {
            let mut next: Vec<Vec<VertexId>> = Vec::new();
            let current_pattern_vertex = order[level];
            for partial in &partials {
                'candidates: for candidate in self.graph.vertices() {
                    if partial.contains(&candidate) {
                        continue;
                    }
                    for (i, &mapped) in partial.iter().enumerate() {
                        if pattern.has_edge(current_pattern_vertex, order[i])
                            && !self.graph.has_edge(candidate, mapped)
                        {
                            continue 'candidates;
                        }
                    }
                    next.push({
                        let mut extended = partial.clone();
                        extended.push(candidate);
                        extended
                    });
                    if next.len() > self.max_partials {
                        return ExpansionOutcome::BudgetExceeded {
                            level: level + 1,
                            partials: next.len(),
                        };
                    }
                }
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }
        let aut = automorphism_count(pattern) as u64;
        ExpansionOutcome::Finished(partials.len() as u64 / aut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;

    #[test]
    fn matches_naive_ground_truth() {
        let graph = generators::erdos_renyi(30, 120, 14);
        let engine = ExpansionEngine::new(graph.clone());
        for pattern in [prefab::triangle(), prefab::rectangle(), prefab::house()] {
            assert_eq!(
                engine.count(&pattern),
                ExpansionOutcome::Finished(crate::naive::count_embeddings(&pattern, &graph))
            );
        }
    }

    #[test]
    fn budget_trips_on_dense_inputs() {
        let graph = generators::complete(40);
        let engine = ExpansionEngine::with_budget(graph, 10_000);
        match engine.count(&prefab::house()) {
            ExpansionOutcome::BudgetExceeded { level, partials } => {
                assert!(level >= 2);
                assert!(partials > 10_000);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn outcome_accessor() {
        assert_eq!(ExpansionOutcome::Finished(5).count(), Some(5));
        assert_eq!(
            ExpansionOutcome::BudgetExceeded {
                level: 2,
                partials: 10
            }
            .count(),
            None
        );
    }

    #[test]
    fn empty_pattern_counts_zero() {
        let graph = generators::complete(5);
        let engine = ExpansionEngine::new(graph);
        assert_eq!(
            engine.count(&Pattern::empty(0)),
            ExpansionOutcome::Finished(0)
        );
    }
}
