//! Baseline systems rebuilt for comparison with GraphPi.
//!
//! The paper compares against GraphZero (the previous state of the art,
//! itself reproduced by the GraphPi authors because it was not released) and
//! Fractal (a JVM BFS-expansion system). Neither is available here, so this
//! crate rebuilds the *algorithmic content* of both on top of the same
//! substrates:
//!
//! * [`graphzero`] — a nested-loop matcher that uses GraphZero's single
//!   symmetry-breaking restriction set (stabilizer-chain ordering) and its
//!   pattern-only schedule heuristic, with no data-graph-aware performance
//!   model and no IEP counting.
//! * [`expansion`] — a Fractal/Arabesque-style breadth-first embedding
//!   expansion enumerator that materialises partial embeddings level by
//!   level (the architecture whose intermediate-data blow-up motivates
//!   specialised systems).
//! * [`naive`] — a brute-force enumerator over injective mappings, used as
//!   ground truth in tests and experiments.

pub mod expansion;
pub mod graphzero;
pub mod naive;

pub use expansion::ExpansionEngine;
pub use graphzero::GraphZeroEngine;
