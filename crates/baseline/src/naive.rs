//! Brute-force ground truth.
//!
//! Enumerates every injective mapping of pattern vertices to data vertices
//! that preserves pattern edges (non-induced subgraph semantics, the same as
//! GraphPi's), then divides by the pattern's automorphism count to obtain
//! the number of distinct embeddings. Exponential in the pattern size and
//! only intended for small graphs in tests and validation runs.

use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_pattern::automorphism::automorphism_count;
use graphpi_pattern::pattern::Pattern;

/// Counts injective, edge-preserving mappings (each distinct subgraph is
/// counted once per automorphism).
pub fn count_mappings(pattern: &Pattern, graph: &CsrGraph) -> u64 {
    let n = pattern.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut assignment: Vec<VertexId> = Vec::with_capacity(n);
    let mut count = 0u64;
    extend(pattern, graph, &mut assignment, &mut count);
    count
}

/// Counts distinct embeddings (subgraphs isomorphic to the pattern).
pub fn count_embeddings(pattern: &Pattern, graph: &CsrGraph) -> u64 {
    let aut = automorphism_count(pattern) as u64;
    count_mappings(pattern, graph) / aut
}

fn extend(pattern: &Pattern, graph: &CsrGraph, assignment: &mut Vec<VertexId>, count: &mut u64) {
    let next = assignment.len();
    if next == pattern.num_vertices() {
        *count += 1;
        return;
    }
    'candidates: for v in graph.vertices() {
        if assignment.contains(&v) {
            continue;
        }
        for (prev, &mapped) in assignment.iter().enumerate() {
            if pattern.has_edge(next, prev) && !graph.has_edge(v, mapped) {
                continue 'candidates;
            }
        }
        assignment.push(v);
        extend(pattern, graph, assignment, count);
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_graph::{builder::from_edges, generators, triangles};
    use graphpi_pattern::prefab;

    #[test]
    fn triangle_count_matches_dedicated_counter() {
        let g = generators::erdos_renyi(40, 250, 7);
        assert_eq!(
            count_embeddings(&prefab::triangle(), &g),
            triangles::count_triangles(&g)
        );
    }

    #[test]
    fn known_small_graphs() {
        // A 4-cycle with one chord contains exactly one rectangle and two
        // triangles.
        let g = from_edges(&[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(count_embeddings(&prefab::rectangle(), &g), 1);
        assert_eq!(count_embeddings(&prefab::triangle(), &g), 2);
        // K4 contains 3 rectangles (each 4-cycle) and 4 triangles.
        let k4 = generators::complete(4);
        assert_eq!(count_embeddings(&prefab::rectangle(), &k4), 3);
        assert_eq!(count_embeddings(&prefab::triangle(), &k4), 4);
    }

    #[test]
    fn clique_counts_on_complete_graphs() {
        // K6 contains C(6, k) k-cliques.
        let k6 = generators::complete(6);
        assert_eq!(count_embeddings(&prefab::clique(3), &k6), 20);
        assert_eq!(count_embeddings(&prefab::clique(4), &k6), 15);
        assert_eq!(count_embeddings(&prefab::clique(5), &k6), 6);
    }

    #[test]
    fn empty_pattern_and_graph() {
        let g = generators::complete(4);
        assert_eq!(count_mappings(&graphpi_pattern::Pattern::empty(0), &g), 0);
        let empty = graphpi_graph::GraphBuilder::new().build();
        assert_eq!(count_embeddings(&prefab::triangle(), &empty), 0);
    }
}
