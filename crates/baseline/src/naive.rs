//! Brute-force ground truth.
//!
//! Enumerates every injective mapping of pattern vertices to data vertices
//! that preserves pattern edges (non-induced subgraph semantics, the same as
//! GraphPi's), then divides by the pattern's automorphism count to obtain
//! the number of distinct embeddings. Exponential in the pattern size and
//! only intended for small graphs in tests and validation runs.

use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_pattern::automorphism::{automorphism_count, automorphism_group};
use graphpi_pattern::pattern::Pattern;
use graphpi_pattern::permutation::Permutation;

/// Counts injective, edge-preserving mappings (each distinct subgraph is
/// counted once per automorphism).
pub fn count_mappings(pattern: &Pattern, graph: &CsrGraph) -> u64 {
    let n = pattern.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut assignment: Vec<VertexId> = Vec::with_capacity(n);
    let mut count = 0u64;
    extend(pattern, graph, &mut assignment, &mut count);
    count
}

/// Counts distinct embeddings (subgraphs isomorphic to the pattern).
pub fn count_embeddings(pattern: &Pattern, graph: &CsrGraph) -> u64 {
    let aut = automorphism_count(pattern) as u64;
    count_mappings(pattern, graph) / aut
}

/// Visits every injective, edge-preserving mapping (indexed by pattern
/// vertex). A distinct subgraph is visited once per pattern automorphism;
/// callers that want one visit per *embedding* canonicalize the tuple
/// (e.g. sort it) and deduplicate.
pub fn for_each_mapping(
    pattern: &Pattern,
    graph: &CsrGraph,
    mut visit: impl FnMut(&[VertexId]),
) {
    if pattern.num_vertices() == 0 {
        return;
    }
    let mut assignment: Vec<VertexId> = Vec::with_capacity(pattern.num_vertices());
    extend_visit(pattern, graph, &mut assignment, &mut visit);
}

/// Canonical representative of a mapping's automorphism orbit: the
/// lexicographically smallest relabeling `m ∘ π` over the pattern's
/// automorphism group. Two mappings describe the same embedding iff their
/// canonical tuples are equal. Sorting the data vertices instead is NOT a
/// valid canonical form: distinct embeddings can share a vertex set (a K5
/// holds 60 house embeddings on the same five vertices).
pub fn canonical_embedding(auts: &[Permutation], mapping: &[VertexId]) -> Vec<VertexId> {
    let mut best: Option<Vec<VertexId>> = None;
    for perm in auts {
        let candidate: Vec<VertexId> = (0..mapping.len()).map(|i| mapping[perm.apply(i)]).collect();
        if best.as_ref().is_none_or(|b| candidate < *b) {
            best = Some(candidate);
        }
    }
    best.unwrap_or_default()
}

/// Collects the distinct embeddings as canonical tuples (one per subgraph
/// occurrence, indexed by pattern vertex), sorted — the set GraphPi's
/// enumeration mode must reproduce exactly after canonicalizing its own
/// output with [`canonical_embedding`].
pub fn embeddings_sorted(pattern: &Pattern, graph: &CsrGraph) -> Vec<Vec<VertexId>> {
    let auts = automorphism_group(pattern);
    let mut tuples = Vec::new();
    for_each_mapping(pattern, graph, |mapping| {
        tuples.push(canonical_embedding(&auts, mapping));
    });
    tuples.sort_unstable();
    tuples.dedup();
    tuples
}

fn extend(pattern: &Pattern, graph: &CsrGraph, assignment: &mut Vec<VertexId>, count: &mut u64) {
    let next = assignment.len();
    if next == pattern.num_vertices() {
        *count += 1;
        return;
    }
    'candidates: for v in graph.vertices() {
        if assignment.contains(&v) {
            continue;
        }
        for (prev, &mapped) in assignment.iter().enumerate() {
            if pattern.has_edge(next, prev) && !graph.has_edge(v, mapped) {
                continue 'candidates;
            }
        }
        assignment.push(v);
        extend(pattern, graph, assignment, count);
        assignment.pop();
    }
}

fn extend_visit(
    pattern: &Pattern,
    graph: &CsrGraph,
    assignment: &mut Vec<VertexId>,
    visit: &mut impl FnMut(&[VertexId]),
) {
    let next = assignment.len();
    if next == pattern.num_vertices() {
        visit(assignment);
        return;
    }
    'candidates: for v in graph.vertices() {
        if assignment.contains(&v) {
            continue;
        }
        for (prev, &mapped) in assignment.iter().enumerate() {
            if pattern.has_edge(next, prev) && !graph.has_edge(v, mapped) {
                continue 'candidates;
            }
        }
        assignment.push(v);
        extend_visit(pattern, graph, assignment, visit);
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_graph::{builder::from_edges, generators, triangles};
    use graphpi_pattern::prefab;

    #[test]
    fn triangle_count_matches_dedicated_counter() {
        let g = generators::erdos_renyi(40, 250, 7);
        assert_eq!(
            count_embeddings(&prefab::triangle(), &g),
            triangles::count_triangles(&g)
        );
    }

    #[test]
    fn known_small_graphs() {
        // A 4-cycle with one chord contains exactly one rectangle and two
        // triangles.
        let g = from_edges(&[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(count_embeddings(&prefab::rectangle(), &g), 1);
        assert_eq!(count_embeddings(&prefab::triangle(), &g), 2);
        // K4 contains 3 rectangles (each 4-cycle) and 4 triangles.
        let k4 = generators::complete(4);
        assert_eq!(count_embeddings(&prefab::rectangle(), &k4), 3);
        assert_eq!(count_embeddings(&prefab::triangle(), &k4), 4);
    }

    #[test]
    fn clique_counts_on_complete_graphs() {
        // K6 contains C(6, k) k-cliques.
        let k6 = generators::complete(6);
        assert_eq!(count_embeddings(&prefab::clique(3), &k6), 20);
        assert_eq!(count_embeddings(&prefab::clique(4), &k6), 15);
        assert_eq!(count_embeddings(&prefab::clique(5), &k6), 6);
    }

    #[test]
    fn distinct_embeddings_on_a_shared_vertex_set() {
        // K5 holds 5!/|Aut(house)| = 60 distinct house embeddings, every one
        // of them on the same five vertices — canonicalization must keep
        // them apart while collapsing each automorphism orbit to one tuple.
        let k5 = generators::complete(5);
        let house = prefab::house();
        let embeddings = embeddings_sorted(&house, &k5);
        assert_eq!(embeddings.len(), 60);
        assert_eq!(embeddings.len() as u64, count_embeddings(&house, &k5));
        for tuple in &embeddings {
            let mut sorted = tuple.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn empty_pattern_and_graph() {
        let g = generators::complete(4);
        assert_eq!(count_mappings(&graphpi_pattern::Pattern::empty(0), &g), 0);
        let empty = graphpi_graph::GraphBuilder::new().build();
        assert_eq!(count_embeddings(&prefab::triangle(), &empty), 0);
    }
}
