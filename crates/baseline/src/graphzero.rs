//! A reproduction of GraphZero, the baseline system of the paper.
//!
//! GraphZero (Mawhirter et al.) breaks pattern symmetry with a **single**
//! restriction set derived from the automorphism group via the classic
//! stabilizer-chain ordering (pin the smallest moved vertex, add `id(v) <
//! id(σ(v))` for every automorphism moving it, recurse into the stabilizer),
//! and selects its schedule from the pattern alone — without the data-graph
//! statistics GraphPi's performance model uses, and without IEP counting.
//! Those two gaps are exactly what the paper's breakdown experiments
//! (Table II and Figure 9) quantify, so this module reproduces them
//! faithfully:
//!
//! * [`graphzero_restrictions`] — the single restriction set.
//! * [`graphzero_schedule`] — a pattern-only, degree-greedy connected order.
//! * [`GraphZeroEngine`] — the end-to-end baseline matcher (same CSR
//!   substrate and interpreter as GraphPi, so measured differences come from
//!   the configuration choice, not from implementation details).

use graphpi_core::config::Configuration;
use graphpi_core::exec::interp;
use graphpi_core::schedule::Schedule;
use graphpi_graph::csr::CsrGraph;
use graphpi_pattern::automorphism::automorphism_group;
use graphpi_pattern::pattern::Pattern;
use graphpi_pattern::restriction::{Restriction, RestrictionSet};

/// GraphZero's single symmetry-breaking restriction set.
///
/// Implements the stabilizer-chain ordering of Grochow & Kellis that
/// GraphZero adopts: process pattern vertices in index order; whenever the
/// remaining automorphism subgroup moves the current vertex `v`, emit
/// `id(σ(v)) > id(v)` for every such image and shrink the subgroup to the
/// stabilizer of `v`.
pub fn graphzero_restrictions(pattern: &Pattern) -> RestrictionSet {
    let mut group = automorphism_group(pattern);
    let mut set = RestrictionSet::empty();
    for v in 0..pattern.num_vertices() {
        if group.len() <= 1 {
            break;
        }
        let images: std::collections::BTreeSet<usize> = group
            .iter()
            .map(|sigma| sigma.apply(v))
            .filter(|&img| img != v)
            .collect();
        for img in images {
            set.push(Restriction::new(img, v));
        }
        group.retain(|sigma| sigma.apply(v) == v);
    }
    set
}

/// GraphZero's schedule heuristic: start from a highest-degree pattern
/// vertex and greedily append the vertex with the most already-scheduled
/// neighbors (ties broken by higher pattern degree, then by index). This
/// keeps every prefix connected but ignores the data graph entirely.
pub fn graphzero_schedule(pattern: &Pattern) -> Schedule {
    let n = pattern.num_vertices();
    assert!(n > 0, "cannot schedule an empty pattern");
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];

    let first = (0..n)
        .max_by_key(|&v| (pattern.degree(v), std::cmp::Reverse(v)))
        .unwrap();
    order.push(first);
    used[first] = true;

    while order.len() < n {
        let next = (0..n)
            .filter(|&v| !used[v])
            .max_by_key(|&v| {
                let connected = order.iter().filter(|&&u| pattern.has_edge(u, v)).count();
                (connected, pattern.degree(v), std::cmp::Reverse(v))
            })
            .unwrap();
        order.push(next);
        used[next] = true;
    }
    Schedule::new(pattern, order)
}

/// The end-to-end GraphZero baseline bound to one data graph.
#[derive(Debug, Clone)]
pub struct GraphZeroEngine {
    graph: CsrGraph,
}

impl GraphZeroEngine {
    /// Wraps a data graph (GraphZero performs no graph-dependent
    /// preprocessing).
    pub fn new(graph: CsrGraph) -> Self {
        Self { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The configuration GraphZero would run for this pattern.
    pub fn configuration(&self, pattern: &Pattern) -> Configuration {
        Configuration::new(
            pattern.clone(),
            graphzero_schedule(pattern),
            graphzero_restrictions(pattern),
        )
    }

    /// Counts all embeddings of `pattern` (always by enumeration — GraphZero
    /// has no IEP optimization).
    pub fn count(&self, pattern: &Pattern) -> u64 {
        let plan = self.configuration(pattern).compile();
        interp::count_embeddings(&plan, &self.graph)
    }

    /// Counts embeddings with GraphZero's restriction set but a
    /// caller-provided schedule (used by the Table II experiment, which
    /// compares restriction sets on identical schedules).
    pub fn count_with_schedule(&self, pattern: &Pattern, schedule: Schedule) -> u64 {
        let plan = Configuration::new(pattern.clone(), schedule, graphzero_restrictions(pattern))
            .compile();
        interp::count_embeddings(&plan, &self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_core::engine::{CountOptions, GraphPi, PlanOptions};
    use graphpi_graph::generators;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::validate;

    #[test]
    fn restriction_set_is_complete_for_every_evaluation_pattern() {
        for (name, pattern) in prefab::evaluation_patterns() {
            let set = graphzero_restrictions(&pattern);
            assert!(validate(&pattern, &set), "{name}: {set:?}");
        }
        for n in 3..7usize {
            let clique = prefab::clique(n);
            assert!(validate(&clique, &graphzero_restrictions(&clique)), "K{n}");
        }
    }

    #[test]
    fn asymmetric_patterns_need_no_restrictions() {
        let p = Pattern::new(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (4, 5)]);
        assert!(graphzero_restrictions(&p).is_empty());
    }

    #[test]
    fn schedule_is_connected_and_starts_at_max_degree() {
        for (name, pattern) in prefab::evaluation_patterns() {
            let schedule = graphzero_schedule(&pattern);
            assert!(schedule.prefixes_connected(&pattern), "{name}");
            let first = schedule.order()[0];
            let max_degree = (0..pattern.num_vertices())
                .map(|v| pattern.degree(v))
                .max()
                .unwrap();
            assert_eq!(pattern.degree(first), max_degree, "{name}");
        }
    }

    #[test]
    fn counts_agree_with_graphpi() {
        let graph = generators::power_law(300, 5, 50);
        let graphzero = GraphZeroEngine::new(graph.clone());
        let graphpi = GraphPi::new(graph);
        for (name, pattern) in prefab::evaluation_patterns().into_iter().take(4) {
            let a = graphzero.count(&pattern);
            let b = graphpi
                .count_with(
                    &pattern,
                    PlanOptions::default(),
                    CountOptions::sequential_enumeration(),
                )
                .unwrap();
            assert_eq!(a, b, "{name}");
        }
    }

    #[test]
    fn counts_agree_with_naive_ground_truth() {
        let graph = generators::erdos_renyi(35, 150, 23);
        let graphzero = GraphZeroEngine::new(graph.clone());
        for pattern in [prefab::triangle(), prefab::rectangle(), prefab::house()] {
            assert_eq!(
                graphzero.count(&pattern),
                crate::naive::count_embeddings(&pattern, &graph)
            );
        }
    }

    #[test]
    fn custom_schedule_does_not_change_the_count() {
        let graph = generators::power_law(200, 4, 3);
        let engine = GraphZeroEngine::new(graph);
        let pattern = prefab::house();
        let default_count = engine.count(&pattern);
        for schedule in graphpi_core::schedule::efficient_schedules(&pattern)
            .into_iter()
            .take(5)
        {
            assert_eq!(
                engine.count_with_schedule(&pattern, schedule),
                default_count
            );
        }
    }
}
