//! Connected components and BFS-based structure queries.
//!
//! Used by the dataset registry and benchmark harness to characterise the
//! synthetic stand-ins (a stand-in should be dominated by one giant
//! component, like the originals), and by the expansion baseline's sanity
//! checks.

use crate::csr::{CsrGraph, VertexId};

/// Result of a connected-components labelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the component id of vertex `v` (ids are dense, in
    /// order of discovery).
    pub labels: Vec<u32>,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of vertices inside the largest component.
    pub fn largest_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.largest() as f64 / self.labels.len() as f64
        }
    }
}

/// Labels connected components with iterative BFS.
pub fn connected_components(graph: &CsrGraph) -> Components {
    let n = graph.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        labels[start] = id;
        queue.push_back(start as VertexId);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &u in graph.neighbors(v) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = id;
                    queue.push_back(u);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Breadth-first distances from a source vertex (`u32::MAX` = unreachable).
pub fn bfs_distances(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in graph.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Estimates the graph's effective diameter by running BFS from a sample of
/// `samples` sources (deterministically spaced) and returning the maximum
/// finite distance seen. Exact for `samples >= |V|`.
pub fn approximate_diameter(graph: &CsrGraph, samples: usize) -> u32 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    let step = (n / samples.max(1)).max(1);
    let mut best = 0u32;
    for source in (0..n).step_by(step) {
        let far = bfs_distances(graph, source as VertexId)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        best = best.max(far);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators;

    #[test]
    fn single_component_graph() {
        let g = generators::cycle(10);
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 10);
        assert!((c.largest_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_components_and_isolated_vertices() {
        let g = crate::GraphBuilder::new()
            .num_vertices(7)
            .edges([(0, 1), (1, 2), (3, 4)])
            .build();
        let c = connected_components(&g);
        assert_eq!(c.count(), 4); // {0,1,2}, {3,4}, {5}, {6}
        assert_eq!(c.largest(), 3);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = generators::path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let d = bfs_distances(&g, 3);
        assert_eq!(d, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices_have_infinite_distance() {
        let g = from_edges(&[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(approximate_diameter(&generators::path(10), 10), 9);
        assert_eq!(approximate_diameter(&generators::complete(8), 8), 1);
        assert_eq!(approximate_diameter(&generators::cycle(10), 10), 5);
        assert_eq!(
            approximate_diameter(&crate::GraphBuilder::new().build(), 4),
            0
        );
    }

    #[test]
    fn power_law_standins_have_a_giant_component() {
        let g = generators::power_law(1_000, 4, 9);
        let c = connected_components(&g);
        assert!(c.largest_fraction() > 0.99);
        assert!(approximate_diameter(&g, 16) >= 2);
    }
}
