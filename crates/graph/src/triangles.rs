//! Triangle counting.
//!
//! GraphPi's performance model (Section IV-C) needs the global triangle
//! count `tri_cnt` of the data graph to estimate `p2`, the probability that
//! two vertices sharing a neighbor are themselves adjacent. The paper treats
//! the data graph as immutable, so the count is computed once during
//! preprocessing; this module provides that computation.

use crate::csr::{CsrGraph, VertexId};
use crate::vertex_set;

/// Counts every triangle in the graph exactly once.
///
/// Uses the standard "forward" algorithm: for each edge `(u, v)` with
/// `u < v`, count common neighbors `w > v`. Complexity is
/// `O(sum_over_edges(deg(u) + deg(v)))`.
pub fn count_triangles(graph: &CsrGraph) -> u64 {
    let mut total = 0u64;
    for u in graph.vertices() {
        let nu = graph.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = graph.neighbors(v);
            // Common neighbors w with w > v to count each triangle once.
            total += count_common_above(nu, nv, v);
        }
    }
    total
}

/// Counts common elements of two sorted sets strictly greater than `bound`.
fn count_common_above(a: &[VertexId], b: &[VertexId], bound: VertexId) -> u64 {
    let ai = a.partition_point(|&x| x <= bound);
    let bi = b.partition_point(|&x| x <= bound);
    vertex_set::intersect_count(&a[ai..], &b[bi..]) as u64
}

/// Per-vertex triangle participation: `result[v]` is the number of triangles
/// containing `v`. The sum over all vertices is `3 *` [`count_triangles`].
pub fn per_vertex_triangles(graph: &CsrGraph) -> Vec<u64> {
    let mut counts = vec![0u64; graph.num_vertices()];
    for u in graph.vertices() {
        let nu = graph.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = graph.neighbors(v);
            let ai = nu.partition_point(|&x| x <= v);
            let bi = nv.partition_point(|&x| x <= v);
            for &w in vertex_set::intersect(&nu[ai..], &nv[bi..]).iter() {
                counts[u as usize] += 1;
                counts[v as usize] += 1;
                counts[w as usize] += 1;
            }
        }
    }
    counts
}

/// Global clustering coefficient: `3 * triangles / wedges`, where a wedge is
/// an unordered path of length two. Returns 0.0 when there are no wedges.
pub fn global_clustering_coefficient(graph: &CsrGraph) -> f64 {
    let triangles = count_triangles(graph) as f64;
    let wedges: u64 = graph
        .vertices()
        .map(|v| {
            let d = graph.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators;

    #[test]
    fn triangle_graph() {
        let g = from_edges(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(count_triangles(&g), 1);
        assert_eq!(per_vertex_triangles(&g), vec![1, 1, 1]);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn square_has_no_triangles() {
        let g = generators::cycle(4);
        assert_eq!(count_triangles(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn complete_graph_triangle_count() {
        // K_n has C(n, 3) triangles.
        for n in 3..8usize {
            let g = generators::complete(n);
            let expected = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(count_triangles(&g), expected, "K_{n}");
        }
    }

    #[test]
    fn per_vertex_sums_to_three_times_total() {
        let g = generators::power_law(300, 4, 3);
        let total = count_triangles(&g);
        let per_vertex: u64 = per_vertex_triangles(&g).iter().sum();
        assert_eq!(per_vertex, 3 * total);
    }

    #[test]
    fn matches_naive_on_small_random_graphs() {
        for seed in 0..5u64 {
            let g = generators::erdos_renyi(30, 120, seed);
            // Naive O(n^3) count.
            let mut naive = 0u64;
            for a in 0..30u32 {
                for b in (a + 1)..30 {
                    for c in (b + 1)..30 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            naive += 1;
                        }
                    }
                }
            }
            assert_eq!(count_triangles(&g), naive, "seed {seed}");
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = crate::GraphBuilder::new().build();
        assert_eq!(count_triangles(&empty), 0);
        let single_edge = from_edges(&[(0, 1)]);
        assert_eq!(count_triangles(&single_edge), 0);
    }
}
