//! Write-ahead log for edge batches: checksummed appends, torn-tail
//! tolerant recovery, checkpointing to the `GRPHPI02` binary format.
//!
//! The durability contract mirrors the classic WAL design:
//!
//! * **Log first.** [`DurableGraph::commit`] appends the batch to the log
//!   and `fsync`s it *before* applying it in memory; a commit is only
//!   acknowledged once it would survive `kill -9`.
//! * **Torn tails recover, corruption errors.** Appends are sequential,
//!   so a crash leaves a *prefix* of the final record. [`Wal::open`]
//!   scans records front to back: a record whose (self-checksummed)
//!   header is incomplete or whose payload extends past EOF is a torn
//!   tail — the file is truncated back to the last durable record and
//!   serving continues. A record that is fully present but fails its
//!   checksum cannot come from a torn append; that is real corruption
//!   and yields a typed [`WalError::Corrupt`], never a panic or a
//!   silently wrong graph.
//! * **Checkpoint + replay.** When the log grows past a threshold the
//!   current generation is saved to `<wal>.ckpt` in the existing
//!   `GRPHPI02` format (atomic tmp+rename) and the log is reset to a
//!   checkpoint marker. Recovery = load the checkpoint (or the initial
//!   graph) + replay the log suffix. Because batch application is
//!   deterministic and normalising (see [`crate::delta`]), replaying a
//!   batch the checkpoint already contains is a no-op, so every crash
//!   window between "checkpoint written" and "log reset" still recovers
//!   bit-identical to the never-crashed graph.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! file   := header record*
//! header := "GRPHWAL1" version:u32 reserved:u32          (16 bytes)
//! record := len:u32 header_check:u32 payload_fnv:u64 payload
//! ```
//!
//! `payload_fnv` is FNV-1a over the payload bytes; `header_check` is
//! FNV-1a over the `len` and `payload_fnv` bytes (truncated to `u32`),
//! which is what lets the opener trust `len` before reading the payload
//! and so distinguish "payload torn off at EOF" from "length field
//! corrupted".

use crate::csr::CsrGraph;
use crate::delta::{
    CommitReport, DeltaError, DynamicGraph, EdgeBatch, GraphSnapshot, DEFAULT_COMPACTION_THRESHOLD,
};
use crate::io;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"GRPHWAL1";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Byte length of the WAL file header.
pub const WAL_HEADER_LEN: usize = 16;
/// Byte length of a record header (`len`, `header_check`, `payload_fnv`).
const RECORD_HEADER_LEN: usize = 16;
/// Upper bound on a single record's payload; appends beyond it are
/// rejected and claimed lengths beyond it are treated as corruption.
pub const MAX_WAL_RECORD_LEN: usize = 1 << 26;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over raw bytes (byte-wise; the `GRPHPI02` header uses the
/// word-wise variant — the two logs are independent formats).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn header_check(len: u32, payload_fnv: u64) -> u32 {
    let mut bytes = [0u8; 12];
    bytes[..4].copy_from_slice(&len.to_le_bytes());
    bytes[4..].copy_from_slice(&payload_fnv.to_le_bytes());
    fnv1a(&bytes) as u32
}

/// Errors from the WAL layer.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The 16-byte file header is present but invalid (wrong magic,
    /// unsupported version, nonzero reserved field).
    BadHeader {
        /// What was wrong with it.
        reason: String,
    },
    /// A fully-present record failed validation — not reachable from a
    /// torn append; the log bytes were damaged after they were synced.
    Corrupt {
        /// File offset of the offending record.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
    /// A record was too large to append.
    RecordTooLarge {
        /// The offending payload length.
        len: usize,
    },
    /// A logged batch failed to re-apply during recovery.
    Replay {
        /// Generation recorded for the failing batch.
        generation: u64,
        /// The apply error, rendered.
        reason: String,
    },
    /// The checkpoint file exists but could not be loaded.
    Checkpoint {
        /// The load error, rendered.
        reason: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(err) => write!(f, "wal i/o error: {err}"),
            WalError::BadHeader { reason } => write!(f, "bad wal header: {reason}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "corrupt wal record at offset {offset}: {reason}")
            }
            WalError::RecordTooLarge { len } => {
                write!(f, "wal record payload of {len} bytes exceeds the maximum")
            }
            WalError::Replay { generation, reason } => {
                write!(
                    f,
                    "replaying wal batch for generation {generation}: {reason}"
                )
            }
            WalError::Checkpoint { reason } => write!(f, "loading wal checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(err: std::io::Error) -> Self {
        WalError::Io(err)
    }
}

/// Errors from the durable graph (WAL or batch application).
#[derive(Debug)]
pub enum DurableError {
    /// The log could not be written or read back.
    Wal(WalError),
    /// The batch itself was invalid (e.g. vertex id out of range); the
    /// log and the graph are unchanged.
    Delta(DeltaError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(err) => err.fmt(f),
            DurableError::Delta(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<WalError> for DurableError {
    fn from(err: WalError) -> Self {
        DurableError::Wal(err)
    }
}

impl From<DeltaError> for DurableError {
    fn from(err: DeltaError) -> Self {
        DurableError::Delta(err)
    }
}

const KIND_BATCH: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;

/// One logical log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An edge batch that produced `generation`.
    Batch {
        /// Generation the batch produced when first committed.
        generation: u64,
        /// The batch itself, as committed.
        batch: EdgeBatch,
    },
    /// Marker written when the log is reset after a checkpoint: the
    /// checkpoint file holds the graph as of `generation`.
    Checkpoint {
        /// Generation captured by the checkpoint.
        generation: u64,
    },
}

/// Sorted edge pairs as they travel through record payloads.
type EdgePairs<'a> = &'a [(u32, u32)];

fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let (kind, generation, inserts, deletes): (u8, u64, EdgePairs<'_>, EdgePairs<'_>) = match record
    {
        WalRecord::Batch { generation, batch } => {
            (KIND_BATCH, *generation, batch.inserts(), batch.deletes())
        }
        WalRecord::Checkpoint { generation } => (KIND_CHECKPOINT, *generation, &[], &[]),
    };
    let mut payload = Vec::with_capacity(17 + 8 * (inserts.len() + deletes.len()));
    payload.push(kind);
    payload.extend_from_slice(&generation.to_le_bytes());
    payload.extend_from_slice(&(inserts.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
    for &(u, v) in inserts.iter().chain(deletes.iter()) {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload
}

fn decode_payload(payload: &[u8], offset: u64) -> Result<WalRecord, WalError> {
    let corrupt = |reason: &str| WalError::Corrupt {
        offset,
        reason: reason.to_string(),
    };
    if payload.len() < 17 {
        return Err(corrupt("payload shorter than the fixed fields"));
    }
    let kind = payload[0];
    let generation = u64::from_le_bytes(payload[1..9].try_into().unwrap());
    let n_inserts = u32::from_le_bytes(payload[9..13].try_into().unwrap()) as usize;
    let n_deletes = u32::from_le_bytes(payload[13..17].try_into().unwrap()) as usize;
    let expected = 17 + 8 * (n_inserts + n_deletes);
    if payload.len() != expected {
        return Err(corrupt("payload length disagrees with its edge counts"));
    }
    let mut pairs = payload[17..]
        .chunks_exact(8)
        .map(|pair| {
            (
                u32::from_le_bytes(pair[..4].try_into().unwrap()),
                u32::from_le_bytes(pair[4..].try_into().unwrap()),
            )
        })
        .collect::<Vec<_>>();
    let deletes = pairs.split_off(n_inserts);
    match kind {
        KIND_BATCH => Ok(WalRecord::Batch {
            generation,
            batch: EdgeBatch::from_edges(pairs, deletes),
        }),
        KIND_CHECKPOINT if n_inserts == 0 && n_deletes == 0 => {
            Ok(WalRecord::Checkpoint { generation })
        }
        KIND_CHECKPOINT => Err(corrupt("checkpoint marker carries edges")),
        _ => Err(corrupt("unknown record kind")),
    }
}

/// Tries to parse one record frame starting at `bytes[offset..]`.
/// `Ok(None)` means the frame is incomplete — a torn tail when scanning a
/// file, "wait for more bytes" when parsing a shipped stream.
/// `base_offset` is only used to report absolute positions in errors.
fn parse_frame_at(
    bytes: &[u8],
    offset: usize,
    base_offset: u64,
) -> Result<Option<(WalRecord, usize)>, WalError> {
    let at = base_offset + offset as u64;
    if bytes.len() - offset < RECORD_HEADER_LEN {
        return Ok(None); // torn record header
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
    let check = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
    let payload_fnv = u64::from_le_bytes(bytes[offset + 8..offset + 16].try_into().unwrap());
    if check != header_check(len as u32, payload_fnv) {
        // The header bytes are all present yet do not validate: a
        // sequential append cannot produce this.
        return Err(WalError::Corrupt {
            offset: at,
            reason: "record header checksum mismatch".to_string(),
        });
    }
    if len > MAX_WAL_RECORD_LEN {
        return Err(WalError::Corrupt {
            offset: at,
            reason: format!("record claims {len} payload bytes"),
        });
    }
    let payload_start = offset + RECORD_HEADER_LEN;
    if bytes.len() - payload_start < len {
        return Ok(None); // torn payload: the tail of a killed append
    }
    let payload = &bytes[payload_start..payload_start + len];
    if fnv1a(payload) != payload_fnv {
        return Err(WalError::Corrupt {
            offset: at,
            reason: "record payload checksum mismatch".to_string(),
        });
    }
    let record = decode_payload(payload, at)?;
    Ok(Some((record, RECORD_HEADER_LEN + len)))
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Whether the file was created (or was empty) and got a fresh
    /// header.
    pub created: bool,
    /// Valid records recovered.
    pub records: usize,
    /// Torn-tail bytes dropped (0 on a clean open).
    pub truncated_bytes: u64,
}

/// An open, append-only write-ahead log.
///
/// Appends are acknowledged only after `fsync`; see the module docs for
/// the recovery rules.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    /// Bumped on every reset (checkpoint truncation). Replication readers
    /// snapshot it around file reads: a change means byte offsets from
    /// before the reset no longer address the same stream.
    epoch: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scans and returns
    /// every durable record, and truncates any torn tail.
    pub fn open<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Self, Vec<WalRecord>, WalOpenReport), WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut report = WalOpenReport::default();

        if bytes.len() < WAL_HEADER_LEN {
            // Missing, empty, or torn mid-header-write: start fresh.
            report.created = bytes.is_empty();
            report.truncated_bytes = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN);
            header.extend_from_slice(WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            file.write_all(&header)?;
            file.sync_data()?;
            return Ok((
                Self {
                    file,
                    path,
                    len: WAL_HEADER_LEN as u64,
                    epoch: 0,
                },
                Vec::new(),
                report,
            ));
        }

        if &bytes[..8] != WAL_MAGIC {
            return Err(WalError::BadHeader {
                reason: "wrong magic bytes".to_string(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(WalError::BadHeader {
                reason: format!("unsupported version {version}"),
            });
        }
        let reserved = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if reserved != 0 {
            return Err(WalError::BadHeader {
                reason: format!("nonzero reserved field {reserved:#x}"),
            });
        }

        let mut records = Vec::new();
        let mut offset = WAL_HEADER_LEN;
        let durable_end = loop {
            if offset == bytes.len() {
                break offset; // clean end
            }
            match parse_frame_at(&bytes, offset, 0)? {
                Some((record, frame_len)) => {
                    records.push(record);
                    offset += frame_len;
                }
                None => break offset, // torn tail of a killed append
            }
        };

        if durable_end < bytes.len() {
            report.truncated_bytes = (bytes.len() - durable_end) as u64;
            file.set_len(durable_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        report.records = records.len();
        Ok((
            Self {
                file,
                path,
                len: durable_end as u64,
                epoch: 0,
            },
            records,
            report,
        ))
    }

    /// Appends one record and `fsync`s it. When this returns `Ok`, the
    /// record survives `kill -9`.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let frame = encode_record_frame(record);
        let payload_len = frame.len() - RECORD_HEADER_LEN;
        if payload_len > MAX_WAL_RECORD_LEN {
            return Err(WalError::RecordTooLarge { len: payload_len });
        }
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Resets the log to just a checkpoint marker for `generation` —
    /// called after the checkpoint file has durably captured that
    /// generation.
    pub fn reset(&mut self, generation: u64) -> Result<(), WalError> {
        let end = self.len;
        self.reset_keeping_suffix(generation, end)
    }

    /// Resets the log to a checkpoint marker for `generation`, keeping
    /// every record byte from `suffix_start` onward. This is the
    /// short-critical-section checkpoint path: the caller captured
    /// `suffix_start` when it snapshotted `generation`, saved the
    /// checkpoint file *without* holding the commit lock, and any records
    /// appended meanwhile (all with generations past the checkpoint) are
    /// re-seated right after the fresh marker.
    pub fn reset_keeping_suffix(
        &mut self,
        generation: u64,
        suffix_start: u64,
    ) -> Result<(), WalError> {
        let mut suffix = Vec::new();
        if suffix_start < self.len {
            self.file.seek(SeekFrom::Start(suffix_start))?;
            self.file.read_to_end(&mut suffix)?;
        }
        self.file.set_len(WAL_HEADER_LEN as u64)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN as u64))?;
        self.len = WAL_HEADER_LEN as u64;
        self.epoch += 1;
        self.append(&WalRecord::Checkpoint { generation })?;
        if !suffix.is_empty() {
            self.file.write_all(&suffix)?;
            self.file.sync_data()?;
            self.len += suffix.len() as u64;
        }
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current byte length of the record region (excludes the header).
    pub fn record_bytes(&self) -> u64 {
        self.len - WAL_HEADER_LEN as u64
    }

    /// Absolute end offset of the durable log (header included) — the
    /// position replication cursors address.
    pub fn end_offset(&self) -> u64 {
        self.len
    }

    /// Reset epoch: bumped every time the log is truncated back to a
    /// checkpoint marker. Offsets taken under one epoch are meaningless
    /// under another.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A read-only view of a WAL file for replication shipping: reads raw
/// record-stream bytes (checksums and all, so they can travel to a
/// replica unmodified) and resolves `(generation, offset)` cursors to
/// byte positions.
///
/// The reader holds its own file handle and takes no locks; it may
/// observe a partially-appended record at the tail (the bytes simply
/// arrive in a later read) but a concurrent *reset* invalidates offsets —
/// callers detect that through [`DurableGraph::wal_epoch`] and
/// re-resolve.
#[derive(Debug)]
pub struct WalReader {
    file: File,
}

/// Where [`WalReader::resolve_cursor`] decided shipping should start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipPoint {
    /// Stream records from this absolute file offset.
    Records {
        /// Absolute file offset of the first record to ship.
        offset: u64,
    },
    /// The cursor's generation predates this log's base: the replica
    /// must be bootstrapped from the checkpoint file first.
    NeedsCheckpoint,
}

impl WalReader {
    /// Opens the WAL at `path` read-only and validates its header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, WalError> {
        let mut file = OpenOptions::new().read(true).open(path.as_ref())?;
        let mut header = [0u8; WAL_HEADER_LEN];
        file.read_exact(&mut header)?;
        if &header[..8] != WAL_MAGIC {
            return Err(WalError::BadHeader {
                reason: "wrong magic bytes".to_string(),
            });
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(WalError::BadHeader {
                reason: format!("unsupported version {version}"),
            });
        }
        Ok(Self { file })
    }

    /// Reads up to `max_bytes` raw stream bytes starting at `offset`.
    /// The slice is *not* record-aligned — a consumer reassembles frames
    /// with [`RecordStreamParser`]. Returns the bytes and the offset just
    /// past them.
    pub fn read_raw(&mut self, offset: u64, max_bytes: usize) -> Result<(Vec<u8>, u64), WalError> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; max_bytes];
        let mut filled = 0;
        while filled < buf.len() {
            match self.file.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(err) => return Err(err.into()),
            }
        }
        buf.truncate(filled);
        let next = offset + filled as u64;
        Ok((buf, next))
    }

    /// Maps a replica's `(generation, offset)` cursor to the file offset
    /// shipping should resume from. The offset hint is trusted only if a
    /// valid record parses there and continues `generation` exactly;
    /// otherwise the log is scanned front to back (it is bounded by the
    /// checkpoint threshold). A cursor older than the log's base —
    /// records begin past `generation` — needs a checkpoint bootstrap.
    pub fn resolve_cursor(
        &mut self,
        generation: u64,
        offset_hint: u64,
    ) -> Result<ShipPoint, WalError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_HEADER_LEN {
            return Ok(ShipPoint::Records {
                offset: WAL_HEADER_LEN as u64,
            });
        }

        // Fast path: the hint addresses the exact next record.
        if offset_hint >= WAL_HEADER_LEN as u64 && offset_hint <= bytes.len() as u64 {
            if let Ok(Some((WalRecord::Batch { generation: g, .. }, _))) =
                parse_frame_at(&bytes, offset_hint as usize, 0)
            {
                if g == generation + 1 {
                    return Ok(ShipPoint::Records {
                        offset: offset_hint,
                    });
                }
            }
        }

        let mut offset = WAL_HEADER_LEN;
        let mut horizon = None;
        loop {
            if offset >= bytes.len() {
                break;
            }
            let (record, frame_len) = match parse_frame_at(&bytes, offset, 0) {
                Ok(Some(parsed)) => parsed,
                // Torn tail (an append in flight) — stop at the durable
                // prefix. Corruption mid-scan can also be a concurrent
                // reset rewriting the bytes under us; the caller's epoch
                // check sorts real corruption from that race.
                Ok(None) | Err(WalError::Corrupt { .. }) => break,
                Err(err) => return Err(err),
            };
            match record {
                WalRecord::Checkpoint { generation: g } => {
                    if horizon.is_none() {
                        horizon = Some(g);
                    }
                }
                WalRecord::Batch { generation: g, .. } => {
                    if horizon.is_none() {
                        // Records start at the initial graph: base is
                        // generation g - 1 of the sequence.
                        horizon = Some(g.saturating_sub(1));
                    }
                    if g > generation {
                        if horizon.unwrap_or(0) > generation {
                            return Ok(ShipPoint::NeedsCheckpoint);
                        }
                        return Ok(ShipPoint::Records {
                            offset: offset as u64,
                        });
                    }
                }
            }
            offset += frame_len;
        }
        if horizon.unwrap_or(0) > generation {
            return Ok(ShipPoint::NeedsCheckpoint);
        }
        // Every durable record is at or before the cursor: caught up.
        Ok(ShipPoint::Records {
            offset: offset as u64,
        })
    }
}

/// Reassembles WAL records from an arbitrarily-chunked byte stream — the
/// replica side of replication. Bytes are pushed as they arrive off the
/// wire; complete, checksum-validated records are drained in order, and a
/// partial frame simply waits for more bytes (torn-stream tolerance, the
/// same rule WAL replay applies to a torn tail). A checksum mismatch is a
/// damaged stream and surfaces as a typed error — the consumer drops the
/// connection and resubscribes from its durable cursor.
#[derive(Debug, Default)]
pub struct RecordStreamParser {
    buf: Vec<u8>,
    consumed: u64,
}

impl RecordStreamParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete record, with the stream-byte length of its
    /// frame. `Ok(None)` means more bytes are needed.
    pub fn next_record(&mut self) -> Result<Option<(WalRecord, u64)>, WalError> {
        match parse_frame_at(&self.buf, 0, self.consumed)? {
            Some((record, frame_len)) => {
                self.buf.drain(..frame_len);
                self.consumed += frame_len as u64;
                Ok(Some((record, frame_len as u64)))
            }
            None => Ok(None),
        }
    }

    /// Bytes buffered but not yet forming a complete record.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Drops any partial frame (used when resubscribing after a torn
    /// stream: the gap is refetched from the durable cursor).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.consumed = 0;
    }
}

/// Encodes one record as a raw stream frame (the same checksummed bytes
/// [`Wal::append`] writes) — lets tests and the bootstrap path synthesize
/// replication streams without a file.
pub fn encode_record_frame(record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let payload_fnv = fnv1a(&payload);
    let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&header_check(payload.len() as u32, payload_fnv).to_le_bytes());
    frame.extend_from_slice(&payload_fnv.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Tuning for [`DurableGraph`].
#[derive(Debug, Clone, Copy)]
pub struct DurableGraphOptions {
    /// Overlay size past which the in-memory overlay folds into a fresh
    /// base CSR (see [`crate::delta::DynamicGraph`]).
    pub compaction_threshold: u64,
    /// WAL record-region size (bytes) past which a commit triggers a
    /// checkpoint + log reset. `u64::MAX` disables automatic
    /// checkpointing.
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurableGraphOptions {
    fn default() -> Self {
        Self {
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            checkpoint_wal_bytes: 4 << 20,
        }
    }
}

/// What [`DurableGraph::open`] reconstructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether the WAL was created fresh (no previous run).
    pub created: bool,
    /// Whether a checkpoint file was loaded as the base.
    pub checkpoint_loaded: bool,
    /// Batches replayed from the log.
    pub replayed_batches: usize,
    /// Torn-tail bytes dropped from the log.
    pub truncated_bytes: u64,
    /// Generation after recovery.
    pub generation: u64,
}

/// A [`DynamicGraph`] whose commits are write-ahead logged: log first
/// (fsync), apply second, checkpoint when the log grows. Reopening after
/// any crash reconstructs the exact acknowledged state.
///
/// ```
/// use graphpi_graph::wal::{DurableGraph, DurableGraphOptions};
/// use graphpi_graph::delta::EdgeBatch;
/// use graphpi_graph::generators;
///
/// let dir = std::env::temp_dir().join(format!("graphpi_wal_doc_{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let wal = dir.join("graph.wal");
/// let initial = generators::cycle(6);
///
/// let (durable, _) =
///     DurableGraph::open(initial.clone(), &wal, DurableGraphOptions::default()).unwrap();
/// let mut batch = EdgeBatch::new();
/// batch.insert(0, 3);
/// durable.commit(&batch).unwrap();
/// let before = durable.snapshot();
/// drop(durable); // "crash"
///
/// let (recovered, report) =
///     DurableGraph::open(initial, &wal, DurableGraphOptions::default()).unwrap();
/// assert_eq!(report.replayed_batches, 1);
/// assert_eq!(recovered.snapshot().graph(), before.graph());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct DurableGraph {
    graph: DynamicGraph,
    wal: Mutex<Wal>,
    /// Serialises checkpointers against each other (NOT against commits
    /// — that is the point of the short-critical-section checkpoint).
    /// Lock order: `ckpt_lock` before `wal`; the commit path, which holds
    /// `wal`, only ever `try_lock`s this, so the pair cannot deadlock.
    ckpt_lock: Mutex<()>,
    /// Generation of the log's base: a cursor at or past this can be
    /// served from records alone, an older one needs the checkpoint file.
    horizon: AtomicU64,
    checkpoint_path: PathBuf,
    checkpoint_wal_bytes: u64,
}

/// The checkpoint file that accompanies a WAL at `wal_path`.
pub fn checkpoint_path_for(wal_path: &Path) -> PathBuf {
    let mut name = wal_path.as_os_str().to_os_string();
    name.push(".ckpt");
    PathBuf::from(name)
}

impl DurableGraph {
    /// Opens the durable graph backed by the WAL at `wal_path`: loads the
    /// checkpoint if one exists (falling back to `initial`), replays the
    /// log suffix, and truncates any torn tail.
    pub fn open<P: AsRef<Path>>(
        initial: CsrGraph,
        wal_path: P,
        options: DurableGraphOptions,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let wal_path = wal_path.as_ref().to_path_buf();
        let checkpoint_path = checkpoint_path_for(&wal_path);
        let (wal, records, open_report) = Wal::open(&wal_path)?;
        let mut checkpoint_loaded = false;
        let base = if checkpoint_path.exists() {
            let loaded = io::load_binary(&checkpoint_path).map_err(|err| WalError::Checkpoint {
                reason: err.to_string(),
            })?;
            checkpoint_loaded = true;
            loaded
        } else {
            initial
        };
        let graph = DynamicGraph::with_compaction_threshold(base, options.compaction_threshold);
        let mut generation = 0;
        let mut replayed = 0;
        let mut horizon = None;
        for record in &records {
            match record {
                WalRecord::Checkpoint { generation: g } => {
                    if horizon.is_none() {
                        horizon = Some(*g);
                    }
                    generation = *g;
                }
                WalRecord::Batch {
                    generation: g,
                    batch,
                } => {
                    graph.commit(batch).map_err(|err| WalError::Replay {
                        generation: *g,
                        reason: err.to_string(),
                    })?;
                    generation = *g;
                    replayed += 1;
                }
            }
        }
        graph.set_generation(generation);
        Ok((
            Self {
                graph,
                wal: Mutex::new(wal),
                ckpt_lock: Mutex::new(()),
                horizon: AtomicU64::new(horizon.unwrap_or(0)),
                checkpoint_path,
                checkpoint_wal_bytes: options.checkpoint_wal_bytes,
            },
            RecoveryReport {
                created: open_report.created,
                checkpoint_loaded,
                replayed_batches: replayed,
                truncated_bytes: open_report.truncated_bytes,
                generation,
            },
        ))
    }

    /// Durably commits one batch: validate, append to the log, `fsync`,
    /// apply in memory, checkpoint if the log crossed the threshold. On
    /// `Ok` the batch survives any crash.
    pub fn commit(&self, batch: &EdgeBatch) -> Result<CommitReport, DurableError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        // Validate before logging: an invalid batch must leave both the
        // log and the graph untouched (and must never poison replay).
        self.graph.validate_batch(batch)?;
        let generation = self.graph.generation() + 1;
        wal.append(&WalRecord::Batch {
            generation,
            batch: batch.clone(),
        })?;
        let report = self
            .graph
            .commit(batch)
            .expect("validated batch must apply");
        debug_assert_eq!(report.generation, generation);
        self.maybe_checkpoint_inline(&mut wal)?;
        Ok(report)
    }

    /// Applies one batch from a replication stream: the batch's claimed
    /// `generation` must continue this graph's sequence exactly
    /// ([`DeltaError::GenerationGap`] otherwise, nothing changed), and on
    /// success the batch is in this graph's *own* log — a replica is as
    /// crash-safe as its primary.
    pub fn commit_replicated(
        &self,
        generation: u64,
        batch: &EdgeBatch,
    ) -> Result<CommitReport, DurableError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        self.graph.validate_batch(batch)?;
        let expected = self.graph.generation() + 1;
        if generation != expected {
            return Err(DeltaError::GenerationGap {
                expected,
                found: generation,
            }
            .into());
        }
        wal.append(&WalRecord::Batch {
            generation,
            batch: batch.clone(),
        })?;
        let report = self
            .graph
            .commit_at(batch, generation)
            .expect("continuity-checked batch must apply");
        self.maybe_checkpoint_inline(&mut wal)?;
        Ok(report)
    }

    /// Inline size-triggered checkpoint on the committing thread — the
    /// fallback when no maintenance thread runs [`DurableGraph::checkpoint`]
    /// periodically. Skipped (`try_lock`) when a concurrent checkpointer
    /// already holds the checkpoint lock.
    fn maybe_checkpoint_inline(&self, wal: &mut Wal) -> Result<(), DurableError> {
        if wal.record_bytes() >= self.checkpoint_wal_bytes {
            if let Ok(_ckpt) = self.ckpt_lock.try_lock() {
                self.checkpoint_locked(wal)?;
            }
        }
        Ok(())
    }

    /// Forces a checkpoint: saves the current generation to the
    /// checkpoint file and resets the log. Returns the checkpointed
    /// generation.
    ///
    /// The commit lock is held only to *capture* the snapshot and to
    /// perform the final log reset — the graph save (the expensive part)
    /// runs unlocked, with commits proceeding concurrently. Records
    /// appended during the save are preserved across the reset.
    pub fn checkpoint(&self) -> Result<u64, DurableError> {
        let _ckpt = self.ckpt_lock.lock().expect("checkpoint lock poisoned");
        let (snapshot, suffix_start) = {
            let wal = self.wal.lock().expect("wal poisoned");
            (self.graph.snapshot(), wal.end_offset())
        };
        // Checkpoint file first (atomic tmp+rename), log reset second: a
        // crash between the two replays the old log against the new
        // checkpoint, which re-applies as no-ops.
        io::save_binary(snapshot.graph(), &self.checkpoint_path).map_err(WalError::Io)?;
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.reset_keeping_suffix(snapshot.generation(), suffix_start)?;
        self.horizon.store(snapshot.generation(), Ordering::SeqCst);
        Ok(snapshot.generation())
    }

    fn checkpoint_locked(&self, wal: &mut Wal) -> Result<u64, DurableError> {
        let snapshot = self.graph.snapshot();
        // Checkpoint file first (atomic tmp+rename), log reset second: a
        // crash between the two replays the old log against the new
        // checkpoint, which re-applies as no-ops.
        io::save_binary(snapshot.graph(), &self.checkpoint_path).map_err(WalError::Io)?;
        wal.reset(snapshot.generation())?;
        self.horizon.store(snapshot.generation(), Ordering::SeqCst);
        Ok(snapshot.generation())
    }

    /// Replaces the whole graph with `base` at `generation` — the
    /// receiving end of a checkpoint bootstrap. The new base is saved as
    /// this graph's own checkpoint file and the log is reset to a marker,
    /// so the installed state is immediately crash-safe.
    pub fn install_checkpoint(&self, base: CsrGraph, generation: u64) -> Result<(), DurableError> {
        let _ckpt = self.ckpt_lock.lock().expect("checkpoint lock poisoned");
        io::save_binary(&base, &self.checkpoint_path).map_err(WalError::Io)?;
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.reset(generation)?;
        self.horizon.store(generation, Ordering::SeqCst);
        self.graph.reset_base(base, generation);
        Ok(())
    }

    /// Folds the in-memory overlay into a fresh base CSR off the commit
    /// path (see [`DynamicGraph::compact`]). Returns whether a compaction
    /// was installed.
    pub fn compact(&self) -> bool {
        self.graph.compact()
    }

    /// Pins the current generation (see [`DynamicGraph::snapshot`]).
    pub fn snapshot(&self) -> GraphSnapshot {
        self.graph.snapshot()
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.graph.generation()
    }

    /// Current overlay size in edge modifications.
    pub fn overlay_edges(&self) -> u64 {
        self.graph.overlay_edges()
    }

    /// Current WAL record-region size in bytes.
    pub fn wal_record_bytes(&self) -> u64 {
        self.wal.lock().expect("wal poisoned").record_bytes()
    }

    /// The checkpoint file path paired with this WAL.
    pub fn checkpoint_path(&self) -> &Path {
        &self.checkpoint_path
    }

    /// The log file path (what a [`WalReader`] opens to ship records).
    pub fn wal_path(&self) -> PathBuf {
        self.wal.lock().expect("wal poisoned").path().to_path_buf()
    }

    /// Current durable end of the log in bytes (header included).
    pub fn wal_len(&self) -> u64 {
        self.wal.lock().expect("wal poisoned").end_offset()
    }

    /// The log's reset epoch (see [`Wal::epoch`]).
    pub fn wal_epoch(&self) -> u64 {
        self.wal.lock().expect("wal poisoned").epoch()
    }

    /// Generation of the log's base: cursors at or past this can be
    /// served from log records alone, older ones need the checkpoint
    /// file first.
    pub fn replication_horizon(&self) -> u64 {
        self.horizon.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("graphpi_wal_{label}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        let mut small = EdgeBatch::new();
        small.insert(0, 5).delete(1, 2);
        let mut large = EdgeBatch::new();
        for i in 0..40u32 {
            large.insert(i, i + 7);
        }
        vec![
            WalRecord::Checkpoint { generation: 3 },
            WalRecord::Batch {
                generation: 4,
                batch: small,
            },
            WalRecord::Batch {
                generation: 5,
                batch: EdgeBatch::new(),
            },
            WalRecord::Batch {
                generation: 6,
                batch: large,
            },
        ]
    }

    /// Writes the sample records and returns the raw file bytes plus the
    /// end offset of every durable prefix (header-only, then one more
    /// record each).
    fn sample_wal(dir: &Path) -> (Vec<u8>, Vec<usize>) {
        let path = dir.join("sample.wal");
        let (mut wal, records, report) = Wal::open(&path).unwrap();
        assert!(report.created);
        assert!(records.is_empty());
        let mut boundaries = vec![WAL_HEADER_LEN];
        for record in sample_records() {
            wal.append(&record).unwrap();
            boundaries.push(wal.len as usize);
        }
        drop(wal);
        (std::fs::read(&path).unwrap(), boundaries)
    }

    #[test]
    fn roundtrips_records_through_a_reopen() {
        let dir = scratch("roundtrip");
        let (bytes, boundaries) = sample_wal(&dir);
        assert_eq!(bytes.len(), *boundaries.last().unwrap());
        let path = dir.join("sample.wal");
        let (_, records, report) = Wal::open(&path).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(
            report,
            WalOpenReport {
                created: false,
                records: 4,
                truncated_bytes: 0,
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn systematically_truncated_wals_recover_the_durable_prefix() {
        let dir = scratch("truncate");
        let (bytes, boundaries) = sample_wal(&dir);
        let expected = sample_records();
        let path = dir.join("cut.wal");
        for cut in 0..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (_, records, report) = Wal::open(&path)
                .unwrap_or_else(|err| panic!("cut at {cut} must recover, got {err}"));
            // The durable prefix: every record fully contained in the cut.
            let survivors = boundaries[1..].iter().filter(|&&end| end <= cut).count();
            assert_eq!(records, expected[..survivors], "cut at {cut}");
            let clean = cut == 0 || boundaries.contains(&cut);
            assert_eq!(
                report.truncated_bytes > 0,
                !clean,
                "cut at {cut}: report {report:?}"
            );
            // Recovery truncated the file back to the durable prefix, so
            // reopening is clean and appending works.
            let (mut wal, records, report) = Wal::open(&path).unwrap();
            assert_eq!(records.len(), survivors);
            assert_eq!(report.truncated_bytes, 0);
            wal.append(&WalRecord::Checkpoint { generation: 99 })
                .unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_byte_corruption_is_a_typed_error() {
        let dir = scratch("corrupt");
        let (bytes, _) = sample_wal(&dir);
        let path = dir.join("flip.wal");
        for position in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[position] ^= 0xA5;
            std::fs::write(&path, &damaged).unwrap();
            match Wal::open(&path) {
                Err(WalError::BadHeader { .. }) => assert!(
                    position < WAL_HEADER_LEN,
                    "flip at {position} blamed the header"
                ),
                Err(WalError::Corrupt { offset, .. }) => assert!(
                    position >= WAL_HEADER_LEN && (offset as usize) <= position,
                    "flip at {position} blamed offset {offset}"
                ),
                Ok(_) => panic!("flip at {position} was silently accepted"),
                Err(other) => panic!("flip at {position}: unexpected error {other}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_is_durable_and_reset_keeps_only_the_marker() {
        let dir = scratch("reset");
        let path = dir.join("log.wal");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            let mut batch = EdgeBatch::new();
            batch.insert(1, 2);
            wal.append(&WalRecord::Batch {
                generation: 1,
                batch,
            })
            .unwrap();
            wal.reset(1).unwrap();
            assert!(wal.record_bytes() > 0);
        }
        let (_, records, _) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![WalRecord::Checkpoint { generation: 1 }]);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn batch_for_round(round: u32) -> EdgeBatch {
        let mut batch = EdgeBatch::new();
        batch.insert(round % 50, (round * 7 + 3) % 50);
        batch.insert(round % 50, 50 + round % 13);
        batch.delete((round + 1) % 50, (round + 2) % 50);
        batch
    }

    #[test]
    fn recovery_is_bit_identical_with_and_without_checkpoints() {
        let dir = scratch("recovery");
        let initial = generators::power_law(50, 3, 11);

        // Reference: never-crashed, no checkpoints.
        let reference = DynamicGraph::new(initial.clone());
        for round in 0..30 {
            reference.commit(&batch_for_round(round)).unwrap();
        }

        // Durable, with aggressive checkpointing (every commit crosses
        // the 1-byte threshold) and a mid-stream reopen.
        let wal_path = dir.join("graph.wal");
        let options = DurableGraphOptions {
            compaction_threshold: 4,
            checkpoint_wal_bytes: 1,
        };
        let (durable, report) = DurableGraph::open(initial.clone(), &wal_path, options).unwrap();
        assert!(report.created);
        for round in 0..17 {
            durable.commit(&batch_for_round(round)).unwrap();
        }
        drop(durable); // crash between checkpoints
        let (durable, report) = DurableGraph::open(initial.clone(), &wal_path, options).unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.generation, 17);
        for round in 17..30 {
            durable.commit(&batch_for_round(round)).unwrap();
        }
        let recovered = durable.snapshot();
        assert_eq!(recovered.generation(), 30);
        assert_eq!(
            recovered.graph().as_ref(),
            reference.snapshot().graph().as_ref()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_recovers_exactly_the_acknowledged_prefix() {
        let dir = scratch("torn");
        let initial = generators::cycle(40);
        let wal_path = dir.join("graph.wal");
        let options = DurableGraphOptions {
            compaction_threshold: u64::MAX,
            checkpoint_wal_bytes: u64::MAX,
        };
        let (durable, _) = DurableGraph::open(initial.clone(), &wal_path, options).unwrap();
        let mut ends = vec![WAL_HEADER_LEN as u64];
        for round in 0..10 {
            durable.commit(&batch_for_round(round)).unwrap();
            ends.push(WAL_HEADER_LEN as u64 + durable.wal_record_bytes());
        }
        drop(durable);
        let full = std::fs::read(&wal_path).unwrap();

        for acked in (0..=10).rev() {
            // Cut mid-way into the record after `acked` commits (or at
            // the exact boundary for the full log).
            let cut = if acked == 10 {
                full.len() as u64
            } else {
                ends[acked] + (ends[acked + 1] - ends[acked]) / 2
            };
            std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
            let expected = DynamicGraph::new(initial.clone());
            for round in 0..acked {
                expected.commit(&batch_for_round(round as u32)).unwrap();
            }
            let (durable, report) =
                DurableGraph::open(initial.clone(), &wal_path, options).unwrap();
            assert_eq!(report.replayed_batches, acked);
            assert_eq!(report.generation, acked as u64);
            assert_eq!(
                durable.snapshot().graph().as_ref(),
                expected.snapshot().graph().as_ref(),
                "after {acked} acked commits"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_crash_window_replays_as_no_ops() {
        let dir = scratch("ckptwindow");
        let initial = generators::cycle(30);
        let wal_path = dir.join("graph.wal");
        let options = DurableGraphOptions {
            compaction_threshold: u64::MAX,
            checkpoint_wal_bytes: u64::MAX,
        };
        let (durable, _) = DurableGraph::open(initial.clone(), &wal_path, options).unwrap();
        for round in 0..8 {
            durable.commit(&batch_for_round(round)).unwrap();
        }
        let expected = durable.snapshot();
        // Simulate the crash window: checkpoint file written, log NOT yet
        // reset (the log still holds all 8 batches).
        io::save_binary(expected.graph(), durable.checkpoint_path()).unwrap();
        drop(durable);
        let (durable, report) = DurableGraph::open(initial, &wal_path, options).unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed_batches, 8);
        assert_eq!(report.generation, 8);
        assert_eq!(
            durable.snapshot().graph().as_ref(),
            expected.graph().as_ref()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_batches_leave_log_and_graph_untouched() {
        let dir = scratch("invalid");
        let wal_path = dir.join("graph.wal");
        let (durable, _) = DurableGraph::open(
            generators::cycle(10),
            &wal_path,
            DurableGraphOptions::default(),
        )
        .unwrap();
        let before = durable.wal_record_bytes();
        let mut hostile = EdgeBatch::new();
        hostile.insert(0, u32::MAX);
        let err = durable.commit(&hostile).unwrap_err();
        assert!(matches!(err, DurableError::Delta(_)));
        assert_eq!(durable.wal_record_bytes(), before);
        assert_eq!(durable.generation(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
