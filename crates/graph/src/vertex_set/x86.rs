//! SIMD intersection kernels for `x86_64` (SSE/SSSE3 and AVX2).
//!
//! Every function in this module is an `unsafe fn` gated on a
//! `#[target_feature]`; the **only** caller is the dispatch layer in
//! [`super`], which proves the required CPU feature with
//! `is_x86_feature_detected!` before taking a SIMD path. The kernels
//! implement the same contracts as the scalar cores (inputs strictly
//! sorted and duplicate-free, output sorted and duplicate-free) and the
//! proptest agreement suite pits them against the scalar reference on
//! adversarial inputs.
//!
//! Two kernel families:
//!
//! * **Block merge** (`merge_count_*` / `merge_into_*`): the classic
//!   all-pairs block comparison — load a block from each side, compare the
//!   `a` block against every rotation of the `b` block, `movemask` the
//!   matches, then advance whichever block has the smaller maximum. Matches
//!   are only ever emitted from the `a` lanes, so each common element is
//!   counted exactly once. Materialising variants compact the matched lanes
//!   with a shuffle table indexed by the match mask.
//! * **Block galloping** (`gallop_count_avx2` / `gallop_into_avx2`): for
//!   skewed `|a| ≪ |b|` inputs — exponential search over 8-element blocks
//!   (comparing only each block's last element), a block-granular binary
//!   narrowing, and a final 8-lane unsigned-compare probe that locates the
//!   lower bound and the match with two instructions.
//!
//! Unsigned semantics: `_mm*_cmpgt_epi32` is signed, so ordered compares
//! flip the sign bit of both operands first; equality compares are
//! sign-agnostic and used as-is.

use core::arch::x86_64::*;

/// Shuffle-control table for SSSE3 compaction: entry `m` moves the dwords
/// whose bit is set in the 4-bit match mask `m` to the front (byte `0x80`
/// zeroes the rest).
static SSE_COMPACT: [[u8; 16]; 16] = sse_compact_table();

const fn sse_compact_table() -> [[u8; 16]; 16] {
    let mut table = [[0x80u8; 16]; 16];
    let mut mask = 0usize;
    while mask < 16 {
        let mut out_lane = 0usize;
        let mut lane = 0usize;
        while lane < 4 {
            if mask & (1 << lane) != 0 {
                let mut byte = 0usize;
                while byte < 4 {
                    table[mask][out_lane * 4 + byte] = (lane * 4 + byte) as u8;
                    byte += 1;
                }
                out_lane += 1;
            }
            lane += 1;
        }
        mask += 1;
    }
    table
}

/// Permutation-index table for AVX2 compaction: entry `m` lists, for the
/// 8-bit match mask `m`, the source lanes of the matched dwords compacted
/// to the front.
static AVX2_COMPACT: [[u32; 8]; 256] = avx2_compact_table();

const fn avx2_compact_table() -> [[u32; 8]; 256] {
    let mut table = [[0u32; 8]; 256];
    let mut mask = 0usize;
    while mask < 256 {
        let mut out_lane = 0usize;
        let mut lane = 0usize;
        while lane < 8 {
            if mask & (1 << lane) != 0 {
                table[mask][out_lane] = lane as u32;
                out_lane += 1;
            }
            lane += 1;
        }
        mask += 1;
    }
    table
}

/// Rotation-index vectors for the AVX2 all-pairs compare: `ROT8[k][l] =
/// (l + k) % 8`.
static ROT8: [[u32; 8]; 8] = {
    let mut rot = [[0u32; 8]; 8];
    let mut k = 0usize;
    while k < 8 {
        let mut l = 0usize;
        while l < 8 {
            rot[k][l] = ((l + k) % 8) as u32;
            l += 1;
        }
        k += 1;
    }
    rot
};

/// Scalar merge over the block loop's tails, shared by every kernel.
#[inline]
fn scalar_tail(a: &[u32], b: &[u32], mut emit: impl FnMut(u32)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            emit(x);
            i += 1;
            j += 1;
        }
    }
}

/// OR of the equality compares of `va` against all four rotations of `vb`:
/// lane `l` is all-ones iff `va[l]` occurs anywhere in `vb`.
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn block_matches_sse(va: __m128i, vb: __m128i) -> __m128i {
    let r1 = _mm_shuffle_epi32::<0b00_11_10_01>(vb);
    let r2 = _mm_shuffle_epi32::<0b01_00_11_10>(vb);
    let r3 = _mm_shuffle_epi32::<0b10_01_00_11>(vb);
    let m01 = _mm_or_si128(_mm_cmpeq_epi32(va, vb), _mm_cmpeq_epi32(va, r1));
    let m23 = _mm_or_si128(_mm_cmpeq_epi32(va, r2), _mm_cmpeq_epi32(va, r3));
    _mm_or_si128(m01, m23)
}

/// `|a ∩ b|` via the 4-lane block merge.
///
/// # Safety
/// Caller must have verified SSE2 support (always present on `x86_64`, but
/// the dispatch layer still proves it for uniformity).
#[target_feature(enable = "sse2")]
pub unsafe fn merge_count_sse(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0usize;
    while i + 4 <= a.len() && j + 4 <= b.len() {
        let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
        let m = block_matches_sse(va, vb);
        count += (_mm_movemask_ps(_mm_castsi128_ps(m)) as u32).count_ones() as usize;
        let a_max = *a.get_unchecked(i + 3);
        let b_max = *b.get_unchecked(j + 3);
        i += 4 * usize::from(a_max <= b_max);
        j += 4 * usize::from(b_max <= a_max);
    }
    let mut tail = 0usize;
    scalar_tail(&a[i..], &b[j..], |_| tail += 1);
    count + tail
}

/// Materialising sibling of [`merge_count_sse`] (needs SSSE3 for the
/// `pshufb` compaction).
///
/// # Safety
/// Caller must have verified SSSE3 support. `out` must not alias `a`/`b`.
#[target_feature(enable = "ssse3")]
pub unsafe fn merge_into_sse(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    debug_assert!(out.is_empty());
    out.reserve(a.len().min(b.len()) + 4);
    let base = out.as_mut_ptr();
    let mut len = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i + 4 <= a.len() && j + 4 <= b.len() {
        let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
        let m = block_matches_sse(va, vb);
        let mask = _mm_movemask_ps(_mm_castsi128_ps(m)) as usize;
        let shuffle = _mm_loadu_si128(SSE_COMPACT.get_unchecked(mask).as_ptr().cast());
        // The store may write up to 4 lanes of garbage past the matches;
        // the reserve above guarantees the capacity and `len` only advances
        // over the real matches.
        _mm_storeu_si128(base.add(len).cast(), _mm_shuffle_epi8(va, shuffle));
        len += mask.count_ones() as usize;
        let a_max = *a.get_unchecked(i + 3);
        let b_max = *b.get_unchecked(j + 3);
        i += 4 * usize::from(a_max <= b_max);
        j += 4 * usize::from(b_max <= a_max);
    }
    out.set_len(len);
    scalar_tail(&a[i..], &b[j..], |v| out.push(v));
}

/// The seven non-identity rotation index vectors, loaded once per kernel
/// invocation and kept in registers across the block loop.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn load_rotations_avx2() -> [__m256i; 7] {
    let mut rot = [_mm256_setzero_si256(); 7];
    for (slot, idx) in rot.iter_mut().zip(ROT8[1..].iter()) {
        *slot = _mm256_loadu_si256(idx.as_ptr().cast());
    }
    rot
}

/// OR of the equality compares of `va` against all eight rotations of `vb`,
/// fully unrolled with a tree reduction so the eight compares pipeline
/// instead of serialising on one accumulator.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn block_matches_avx2(va: __m256i, vb: __m256i, rot: &[__m256i; 7]) -> __m256i {
    let e0 = _mm256_cmpeq_epi32(va, vb);
    let e1 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[0]));
    let e2 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[1]));
    let e3 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[2]));
    let e4 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[3]));
    let e5 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[4]));
    let e6 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[5]));
    let e7 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[6]));
    let m01 = _mm256_or_si256(e0, e1);
    let m23 = _mm256_or_si256(e2, e3);
    let m45 = _mm256_or_si256(e4, e5);
    let m67 = _mm256_or_si256(e6, e7);
    _mm256_or_si256(_mm256_or_si256(m01, m23), _mm256_or_si256(m45, m67))
}

/// `|a ∩ b|` via the 8-lane block merge.
///
/// # Safety
/// Caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
pub unsafe fn merge_count_avx2(a: &[u32], b: &[u32]) -> usize {
    let rot = load_rotations_avx2();
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0usize;
    while i + 8 <= a.len() && j + 8 <= b.len() {
        let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
        let vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
        let m = block_matches_avx2(va, vb, &rot);
        count += (_mm256_movemask_ps(_mm256_castsi256_ps(m)) as u32).count_ones() as usize;
        let a_max = *a.get_unchecked(i + 7);
        let b_max = *b.get_unchecked(j + 7);
        i += 8 * usize::from(a_max <= b_max);
        j += 8 * usize::from(b_max <= a_max);
    }
    let mut tail = 0usize;
    scalar_tail(&a[i..], &b[j..], |_| tail += 1);
    count + tail
}

/// Materialising sibling of [`merge_count_avx2`].
///
/// # Safety
/// Caller must have verified AVX2 support. `out` must not alias `a`/`b`.
#[target_feature(enable = "avx2")]
pub unsafe fn merge_into_avx2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    debug_assert!(out.is_empty());
    out.reserve(a.len().min(b.len()) + 8);
    let rot = load_rotations_avx2();
    let base = out.as_mut_ptr();
    let mut len = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i + 8 <= a.len() && j + 8 <= b.len() {
        let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
        let vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
        let m = block_matches_avx2(va, vb, &rot);
        let mask = _mm256_movemask_ps(_mm256_castsi256_ps(m)) as usize;
        let idx = _mm256_loadu_si256(AVX2_COMPACT.get_unchecked(mask).as_ptr().cast());
        _mm256_storeu_si256(base.add(len).cast(), _mm256_permutevar8x32_epi32(va, idx));
        len += mask.count_ones() as usize;
        let a_max = *a.get_unchecked(i + 7);
        let b_max = *b.get_unchecked(j + 7);
        i += 8 * usize::from(a_max <= b_max);
        j += 8 * usize::from(b_max <= a_max);
    }
    out.set_len(len);
    scalar_tail(&a[i..], &b[j..], |v| out.push(v));
}

/// Locates the first element of `large[from..]` that is `>= x` using
/// block-granular exponential search, block-granular binary narrowing and a
/// final 8-lane probe. Returns the absolute index (== `large.len()` when
/// every element is smaller) and whether the element equals `x`.
///
/// Correctness relies on every element before `from` being `< x`, which the
/// galloping drivers maintain by walking `small` in ascending order.
#[target_feature(enable = "avx2")]
unsafe fn gallop_find_avx2(large: &[u32], from: usize, x: u32) -> (usize, bool) {
    let n = large.len();
    // Exponential search over 8-element blocks: advance while the window's
    // last element is still < x.
    let mut base = from;
    let mut step = 8usize;
    while base + step <= n && *large.get_unchecked(base + step - 1) < x {
        base += step;
        step <<= 1;
    }
    // The first `>= x` now lies in `[base, min(base+step, n))` (or is `n`).
    let mut lo = base;
    let mut rem = (base + step).min(n) - base;
    while rem > 8 {
        let half = rem / 2;
        if *large.get_unchecked(lo + half - 1) < x {
            lo += half;
        }
        rem -= half;
    }
    if lo + 8 <= n {
        // 8-lane unsigned lower-bound probe: lanes `< x` produce a
        // contiguous low-bit run in the movemask, so the first `>= x` lane
        // is its trailing-ones count.
        let v = _mm256_loadu_si256(large.as_ptr().add(lo).cast());
        let sign = _mm256_set1_epi32(i32::MIN);
        let xv = _mm256_set1_epi32(x as i32);
        let lt = _mm256_cmpgt_epi32(_mm256_xor_si256(xv, sign), _mm256_xor_si256(v, sign));
        let lt_mask = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32;
        let idx = (!lt_mask).trailing_zeros() as usize;
        let pos = lo + idx;
        (pos, pos < n && *large.get_unchecked(pos) == x)
    } else {
        let mut pos = lo;
        while pos < n && *large.get_unchecked(pos) < x {
            pos += 1;
        }
        (pos, pos < n && *large.get_unchecked(pos) == x)
    }
}

/// `|small ∩ large|` for skewed inputs via block-based galloping.
///
/// # Safety
/// Caller must have verified AVX2 support. Both inputs strictly sorted.
#[target_feature(enable = "avx2")]
pub unsafe fn gallop_count_avx2(small: &[u32], large: &[u32]) -> usize {
    let mut count = 0usize;
    let mut lo = 0usize;
    for &x in small {
        if lo >= large.len() {
            break;
        }
        let (pos, found) = gallop_find_avx2(large, lo, x);
        count += usize::from(found);
        lo = pos + usize::from(found);
    }
    count
}

/// Materialising sibling of [`gallop_count_avx2`]; emits the common
/// elements (in ascending order, since `small` is sorted).
///
/// # Safety
/// Caller must have verified AVX2 support. `out` must not alias the inputs.
#[target_feature(enable = "avx2")]
pub unsafe fn gallop_into_avx2(small: &[u32], large: &[u32], out: &mut Vec<u32>) {
    let mut lo = 0usize;
    for &x in small {
        if lo >= large.len() {
            break;
        }
        let (pos, found) = gallop_find_avx2(large, lo, x);
        if found {
            out.push(x);
        }
        lo = pos + usize::from(found);
    }
}
