//! Sorted vertex-set algebra.
//!
//! Every candidate set manipulated by the nested-loop matching engine is a
//! sorted slice of [`VertexId`]s: either a CSR neighborhood borrowed from the
//! data graph or the intersection of several neighborhoods materialised into
//! a scratch buffer.  The paper notes (Section IV-E) that because adjacency
//! lists are sorted, an intersection costs `O(n + m)` and yields a sorted
//! result.
//!
//! All intersection variants — materialising ([`intersect_into`],
//! [`intersect_many_into`]), counting ([`intersect_count`]) and bound-clamped
//! counting ([`intersect_count_below`]) — share the same routing: a linear
//! merge for balanced inputs and a galloping (exponential) search when one
//! input is at least `GALLOP_RATIO` times larger, which is the common case
//! on skewed degree distributions. Bounded variants clamp both inputs with
//! `partition_point` first so the galloping path applies to them too.
//!
//! # Kernel dispatch
//!
//! On `x86_64` both regimes have SIMD implementations (the `x86`
//! submodule): 4-lane
//! SSE/SSSE3 and 8-lane AVX2 block merges, and an AVX2 block-based galloping
//! kernel for skewed inputs. The best available kernel is detected once at
//! runtime with `is_x86_feature_detected!` and every public API routes
//! through it, so `exec::interp`, `iep` and `hub` consumers get the speedup
//! with zero call-site churn. Counts are **bit-identical** across kernels —
//! the proptest agreement suite and the end-to-end scalar-vs-auto tests
//! enforce this.
//!
//! Dispatch is process-global and can be pinned to the scalar reference
//! with [`set_force_scalar`] or the `GRAPHPI_FORCE_SCALAR` environment
//! variable (read once, at first use) — the knob CI uses to keep both paths
//! green.

use crate::csr::VertexId;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
mod x86;

/// Threshold ratio above which the intersection kernels switch from a linear
/// merge to galloping (exponential) search in the larger input.
const GALLOP_RATIO: usize = 32;

/// Largest number of sets [`intersect_many_into`] accepts (bounded by the
/// engine's maximum pattern size; keeps the ordering scratch on the stack).
pub const MAX_INTERSECT_SETS: usize = 16;

/// The intersection kernel family the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar merge/galloping cores (the reference).
    Scalar,
    /// 4-lane SSE block merge (SSSE3 compaction); scalar galloping.
    Sse,
    /// 8-lane AVX2 block merge plus AVX2 block-based galloping.
    Avx2,
}

impl Kernel {
    /// Short stable name (`scalar`, `sse`, `avx2`) for logs and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse => "sse",
            Kernel::Avx2 => "avx2",
        }
    }
}

/// Runtime force-scalar override ([`set_force_scalar`]).
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Cached detection result: 0 = undetected, else `Kernel as u8 + 1`.
static DETECTED: AtomicU8 = AtomicU8::new(0);

#[cold]
fn detect_kernel() -> Kernel {
    // The `GRAPHPI_FORCE_SCALAR` environment pin is **sticky**: it makes
    // the *detected* kernel Scalar for the lifetime of the process, so
    // [`set_force_scalar`]`(false)` cannot release it and a test run
    // under the CI scalar leg stays scalar throughout. Folding the pin
    // into the single `DETECTED` atomic also means no thread can ever
    // observe detection complete but the pin unpublished.
    let env_forced = std::env::var("GRAPHPI_FORCE_SCALAR")
        .map(|v| matches!(v.as_str(), "1" | "true" | "yes" | "on"))
        .unwrap_or(false);
    #[cfg(target_arch = "x86_64")]
    let kernel = if env_forced {
        Kernel::Scalar
    } else if std::arch::is_x86_feature_detected!("avx2") {
        Kernel::Avx2
    } else if std::arch::is_x86_feature_detected!("ssse3") {
        Kernel::Sse
    } else {
        Kernel::Scalar
    };
    #[cfg(not(target_arch = "x86_64"))]
    let kernel = {
        let _ = env_forced;
        Kernel::Scalar
    };
    DETECTED.store(kernel as u8 + 1, Ordering::Relaxed);
    kernel
}

/// The kernel the next intersection will run on: the best CPU-supported
/// SIMD family, unless scalar is forced (runtime knob or environment).
#[inline]
pub fn active_kernel() -> Kernel {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return Kernel::Scalar;
    }
    match DETECTED.load(Ordering::Relaxed) {
        0 => detect_kernel(),
        1 => Kernel::Scalar,
        2 => Kernel::Sse,
        _ => Kernel::Avx2,
    }
}

/// Forces (or releases) the portable scalar kernels, process-wide.
///
/// Counts are bit-identical either way; this exists so tests, benches and
/// the CLI/CI can exercise and time both dispatch paths deterministically.
/// The `GRAPHPI_FORCE_SCALAR=1` environment pin is sticky:
/// `set_force_scalar(false)` releases only the runtime knob, so a process
/// launched under the CI scalar leg runs scalar throughout.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// Computes `out = a ∩ b` for two sorted, duplicate-free slices.
///
/// `out` is cleared first. The result is sorted and duplicate-free.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        #[cfg(target_arch = "x86_64")]
        if active_kernel() == Kernel::Avx2 {
            // SAFETY: AVX2 support proven by `active_kernel`.
            unsafe { x86::gallop_into_avx2(small, large, out) };
            return;
        }
        gallop_intersect(small, large, &mut |v| out.push(v));
    } else {
        #[cfg(target_arch = "x86_64")]
        match active_kernel() {
            // SAFETY: the matching feature was proven by `active_kernel`.
            Kernel::Avx2 => return unsafe { x86::merge_into_avx2(a, b, out) },
            Kernel::Sse => return unsafe { x86::merge_into_sse(a, b, out) },
            Kernel::Scalar => {}
        }
        merge_intersect(a, b, &mut |v| out.push(v));
    }
}

/// Allocates and returns `a ∩ b`.
pub fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

/// Returns `|a ∩ b|` without materialising the intersection.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        #[cfg(target_arch = "x86_64")]
        if active_kernel() == Kernel::Avx2 {
            // SAFETY: AVX2 support proven by `active_kernel`.
            return unsafe { x86::gallop_count_avx2(small, large) };
        }
        let mut count = 0usize;
        gallop_intersect(small, large, &mut |_| count += 1);
        count
    } else {
        #[cfg(target_arch = "x86_64")]
        match active_kernel() {
            // SAFETY: the matching feature was proven by `active_kernel`.
            Kernel::Avx2 => return unsafe { x86::merge_count_avx2(a, b) },
            Kernel::Sse => return unsafe { x86::merge_count_sse(a, b) },
            Kernel::Scalar => {}
        }
        let mut count = 0usize;
        merge_intersect(a, b, &mut |_| count += 1);
        count
    }
}

/// Clamps a sorted set to its prefix of elements strictly below `bound`.
#[inline]
pub fn clamp_below(a: &[VertexId], bound: VertexId) -> &[VertexId] {
    &a[..a.partition_point(|&x| x < bound)]
}

/// Returns `|a ∩ b|` counting only elements strictly smaller than `bound`.
///
/// Used when a restriction `id(x) > id(y)` bounds the candidate set of an
/// inner loop: only candidates below the already-bound vertex survive. Both
/// inputs are clamped with `partition_point` first, so the count reuses the
/// same merge/galloping kernels as [`intersect_count`].
pub fn intersect_count_below(a: &[VertexId], b: &[VertexId], bound: VertexId) -> usize {
    intersect_count(clamp_below(a, bound), clamp_below(b, bound))
}

/// Materialises `a ∩ b` keeping only elements strictly below `bound`
/// (bound-clamped sibling of [`intersect_into`]).
pub fn intersect_into_below(
    a: &[VertexId],
    b: &[VertexId],
    bound: VertexId,
    out: &mut Vec<VertexId>,
) {
    intersect_into(clamp_below(a, bound), clamp_below(b, bound), out);
}

#[inline]
fn merge_intersect(a: &[VertexId], b: &[VertexId], emit: &mut impl FnMut(VertexId)) {
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                emit(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[inline]
fn gallop_intersect(small: &[VertexId], large: &[VertexId], emit: &mut impl FnMut(VertexId)) {
    let mut lo = 0usize;
    for &x in small {
        if lo >= large.len() {
            break;
        }
        // Exponential search for x in large[lo..].
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            hi = (lo + step).min(large.len());
            step *= 2;
        }
        // `hi` may point at the first element >= x, which must be included
        // in the search window.
        let end = if hi < large.len() {
            hi + 1
        } else {
            large.len()
        };
        match large[lo..end].binary_search(&x) {
            Ok(i) => {
                emit(x);
                lo += i + 1;
            }
            Err(i) => lo += i,
        }
    }
}

/// Returns the elements of `a` that are **not** in the (small, unsorted)
/// exclusion list `excluded`, preserving order.
///
/// This implements the `- {v_A, v_B, …}` subtraction from the paper's
/// generated code, where the exclusion list holds the few vertices already
/// bound by outer loops.
pub fn subtract_into(a: &[VertexId], excluded: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    out.extend(a.iter().copied().filter(|v| !excluded.contains(v)));
}

/// Allocating variant of [`subtract_into`].
pub fn subtract(a: &[VertexId], excluded: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len());
    subtract_into(a, excluded, &mut out);
    out
}

/// Counts the elements of `a` not present in `excluded`.
pub fn subtract_count(a: &[VertexId], excluded: &[VertexId]) -> usize {
    a.iter().filter(|v| !excluded.contains(v)).count()
}

/// Intersects an arbitrary number of sorted sets into `out` without heap
/// allocation: `tmp` is the ping-pong scratch, the set order is kept on the
/// stack, and the sets are intersected smallest-first so intermediates stay
/// tiny. `sets` must be non-empty and hold at most [`MAX_INTERSECT_SETS`]
/// entries; `out` and `tmp` must be distinct buffers (both are clobbered).
pub fn intersect_many_into(sets: &[&[VertexId]], out: &mut Vec<VertexId>, tmp: &mut Vec<VertexId>) {
    assert!(
        !sets.is_empty(),
        "intersect_many_into requires at least one set"
    );
    assert!(
        sets.len() <= MAX_INTERSECT_SETS,
        "intersect_many_into supports at most {MAX_INTERSECT_SETS} sets"
    );
    match sets.len() {
        1 => {
            out.clear();
            out.extend_from_slice(sets[0]);
        }
        2 => intersect_into(sets[0], sets[1], out),
        k => {
            // Smallest-first order, computed on the stack.
            let mut order = [0usize; MAX_INTERSECT_SETS];
            for (i, slot) in order.iter_mut().enumerate().take(k) {
                *slot = i;
            }
            order[..k].sort_unstable_by_key(|&i| sets[i].len());
            intersect_into(sets[order[0]], sets[order[1]], out);
            for &i in &order[2..k] {
                if out.is_empty() {
                    break;
                }
                intersect_into_swap(sets[i], out, tmp);
            }
        }
    }
}

/// `out = out ∩ b`, using `tmp` as scratch (cheap `Vec` pointer swap, no
/// allocation beyond buffer growth).
#[inline]
fn intersect_into_swap(b: &[VertexId], out: &mut Vec<VertexId>, tmp: &mut Vec<VertexId>) {
    intersect_into(out, b, tmp);
    std::mem::swap(out, tmp);
}

/// Allocating variant of [`intersect_many_into`].
pub fn intersect_many(sets: &[&[VertexId]]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    intersect_many_into(sets, &mut out, &mut tmp);
    out
}

/// Checks that a slice is strictly increasing (sorted, duplicate-free).
pub fn is_sorted_set(a: &[VertexId]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_intersections() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<u32>::new());
        assert_eq!(intersect(&[5], &[5]), vec![5]);
    }

    #[test]
    fn counting_matches_materialised() {
        let a = [1, 4, 6, 9, 12, 15];
        let b = [2, 4, 9, 10, 15, 20];
        assert_eq!(intersect_count(&a, &b), intersect(&a, &b).len());
    }

    #[test]
    fn bounded_count() {
        let a = [1, 4, 6, 9, 12];
        let b = [4, 6, 9, 12];
        assert_eq!(intersect_count_below(&a, &b, 10), 3);
        assert_eq!(intersect_count_below(&a, &b, 4), 0);
        assert_eq!(intersect_count_below(&a, &b, 100), 4);
    }

    #[test]
    fn bounded_count_uses_galloping_for_skewed_inputs() {
        // The small side falls below GALLOP_RATIO of the clamped large side.
        let small: Vec<u32> = vec![10, 500, 900, 1500];
        let large: Vec<u32> = (0..2000).collect();
        assert_eq!(intersect_count_below(&small, &large, 1000), 3);
        let mut out = Vec::new();
        intersect_into_below(&small, &large, 1000, &mut out);
        assert_eq!(out, vec![10, 500, 900]);
    }

    #[test]
    fn galloping_path_is_exercised() {
        let small: Vec<u32> = vec![10, 500, 900];
        let large: Vec<u32> = (0..1000).collect();
        assert_eq!(intersect(&small, &large), small);
        assert_eq!(intersect_count(&small, &large), 3);
    }

    #[test]
    fn subtraction() {
        assert_eq!(subtract(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(subtract(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(subtract_count(&[1, 2, 3], &[3, 1]), 1);
    }

    #[test]
    fn many_way_intersection() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).step_by(2).collect();
        let c: Vec<u32> = (0..100).step_by(3).collect();
        let r = intersect_many(&[&a, &b, &c]);
        let expected: Vec<u32> = (0..100).step_by(6).collect();
        assert_eq!(r, expected);
    }

    #[test]
    fn many_into_reuses_buffers_without_allocating_more_sets() {
        let a: Vec<u32> = (0..200).collect();
        let b: Vec<u32> = (0..200).step_by(2).collect();
        let c: Vec<u32> = (0..200).step_by(5).collect();
        let d: Vec<u32> = (0..200).step_by(3).collect();
        let mut out = Vec::new();
        let mut tmp = Vec::new();
        intersect_many_into(&[&a, &b, &c, &d], &mut out, &mut tmp);
        let expected: Vec<u32> = (0..200).step_by(30).collect();
        assert_eq!(out, expected);
        // Reuse the same buffers for a second call.
        intersect_many_into(&[&a, &b], &mut out, &mut tmp);
        assert_eq!(out, b);
    }

    #[test]
    #[should_panic]
    fn intersect_many_empty_panics() {
        let _ = intersect_many(&[]);
    }

    /// Serialises the tests that toggle the process-global force flag, so
    /// one test's toggles cannot interleave with another's assertions
    /// about kernel *state* (result agreement is interleaving-proof, state
    /// inspection is not).
    static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn kernel_reporting_is_consistent() {
        let _guard = TOGGLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_force_scalar(false);
        let k = active_kernel();
        assert!(!k.name().is_empty());
        // Forcing scalar must be observable and reversible.
        set_force_scalar(true);
        assert_eq!(active_kernel(), Kernel::Scalar);
        set_force_scalar(false);
        assert_eq!(active_kernel(), k);
    }

    /// Runs `f` under both the scalar and the auto-detected kernel and
    /// asserts the results agree (every kernel must agree on every input
    /// at any time). Holds [`TOGGLE_LOCK`] so the flag flips cannot race
    /// `kernel_reporting_is_consistent`'s state assertions.
    fn assert_kernels_agree<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
        let _guard = TOGGLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_force_scalar(true);
        let scalar = f();
        set_force_scalar(false);
        let auto = f();
        assert_eq!(scalar, auto);
    }

    #[test]
    fn simd_agrees_on_block_boundary_adversaries() {
        // Matches placed exactly at 4- and 8-lane block boundaries, plus
        // runs of near-misses (x+1) that defeat naive lane compares.
        let a: Vec<u32> = (0..256).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..256)
            .map(|i| if i % 8 == 7 { i * 3 } else { i * 3 + 1 })
            .collect();
        assert_kernels_agree(|| intersect(&a, &b));
        assert_kernels_agree(|| intersect_count(&a, &b));
        // Fully identical inputs: every lane matches in every block.
        assert_kernels_agree(|| intersect(&a, &a));
        assert_kernels_agree(|| intersect_count(&a, &a));
        // Skewed: galloping kernels.
        let large: Vec<u32> = (0..10_000).collect();
        let small: Vec<u32> = (0..10_000).step_by(613).collect();
        assert_kernels_agree(|| intersect(&small, &large));
        assert_kernels_agree(|| intersect_count(&small, &large));
        assert_kernels_agree(|| intersect_count_below(&small, &large, 5_000));
    }

    #[test]
    fn simd_agrees_near_u32_max() {
        // The AVX2 ordered compares must be unsigned: values above 2^31
        // would flip order under a signed interpretation.
        let a: Vec<u32> = (0..200).map(|i| u32::MAX - 3 * (200 - i)).collect();
        let b: Vec<u32> = (0..200).map(|i| u32::MAX - 2 * (300 - i)).collect();
        assert_kernels_agree(|| intersect(&a, &b));
        let small: Vec<u32> = a.iter().copied().step_by(67).collect();
        assert_kernels_agree(|| intersect_count(&small, &b));
    }

    fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..2000, 0..200)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn prop_intersection_agrees_with_btreeset(a in sorted_set(), b in sorted_set()) {
            use std::collections::BTreeSet;
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expected: Vec<u32> = sa.intersection(&sb).copied().collect();
            prop_assert_eq!(intersect(&a, &b), expected.clone());
            prop_assert_eq!(intersect_count(&a, &b), expected.len());
        }

        #[test]
        fn prop_intersection_sorted_and_subset(a in sorted_set(), b in sorted_set()) {
            let r = intersect(&a, &b);
            prop_assert!(is_sorted_set(&r));
            prop_assert!(r.iter().all(|x| a.binary_search(x).is_ok() && b.binary_search(x).is_ok()));
        }

        #[test]
        fn prop_intersection_commutative(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(intersect(&a, &b), intersect(&b, &a));
        }

        #[test]
        fn prop_subtract_removes_exactly(a in sorted_set(), ex in proptest::collection::vec(0u32..2000, 0..10)) {
            let r = subtract(&a, &ex);
            prop_assert!(is_sorted_set(&r));
            prop_assert!(r.iter().all(|x| !ex.contains(x)));
            prop_assert_eq!(r.len(), subtract_count(&a, &ex));
            prop_assert!(a.iter().filter(|x| !ex.contains(x)).count() == r.len());
        }

        #[test]
        fn prop_intersect_many_matches_pairwise(a in sorted_set(), b in sorted_set(), c in sorted_set()) {
            let pairwise = intersect(&intersect(&a, &b), &c);
            prop_assert_eq!(intersect_many(&[&a, &b, &c]), pairwise);
        }

        #[test]
        fn prop_bounded_count_matches_filter(a in sorted_set(), b in sorted_set(), bound in 0u32..2000) {
            let expected = intersect(&a, &b).into_iter().filter(|&x| x < bound).count();
            prop_assert_eq!(intersect_count_below(&a, &b, bound), expected);
            let mut out = Vec::new();
            intersect_into_below(&a, &b, bound, &mut out);
            prop_assert_eq!(out.len(), expected);
        }
    }
}
