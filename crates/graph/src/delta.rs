//! Batched edge updates over an immutable CSR base: the mutable-graph
//! overlay and its generation-based snapshots.
//!
//! The matching kernels want an immutable, sorted [`CsrGraph`] — that is
//! what makes the SIMD intersection cores and the zero-copy mmap path
//! work. This module makes the *served* graph mutable without giving that
//! up:
//!
//! * [`EdgeBatch`] — one atomic unit of change: a list of undirected edge
//!   insertions and deletions (inserts applied first, then deletes).
//! * [`DeltaOverlay`] — per-vertex **sorted** insert/delete sets layered
//!   over a base CSR. Applying a batch normalises it against the current
//!   view (inserting a present edge or deleting an absent one is a no-op;
//!   re-inserting a deleted edge reinstates it), so the overlay invariants
//!   — insert rows disjoint from the base, delete rows a subset of it —
//!   hold by construction and merged reads are a single three-way sorted
//!   merge per row. The base CSR is never touched.
//! * [`DynamicGraph`] — the generation machine. Every committed batch
//!   produces a new *generation*; [`DynamicGraph::snapshot`] pins the
//!   current one as an immutable `Arc<CsrGraph>` that stays alive (and
//!   bit-stable) for as long as any in-flight query holds it, while later
//!   batches commit underneath. When the overlay grows past the
//!   compaction threshold it is folded into a fresh base CSR, bounding
//!   merge work per materialisation.
//!
//! Commits are deterministic: replaying the same batches in the same
//! order against the same base always reproduces the same CSR bytes —
//! the property the write-ahead log ([`crate::wal`]) turns into crash
//! recovery.

use crate::csr::{CsrGraph, VertexId};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Hard cap on how far beyond the base vertex count a single overlay may
/// grow. Updates are client-supplied; without a bound, one hostile edge
/// `(0, u32::MAX)` would make materialisation allocate gigabytes of empty
/// rows.
pub const MAX_VERTEX_GROWTH: usize = 1 << 20;

/// Default overlay size (in applied edge modifications) past which
/// [`DynamicGraph`] folds the overlay into a fresh base CSR.
pub const DEFAULT_COMPACTION_THRESHOLD: u64 = 1 << 16;

/// Errors produced while applying an [`EdgeBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge endpoint exceeds the allowed vertex range (base vertices
    /// plus [`MAX_VERTEX_GROWTH`]).
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: VertexId,
        /// First id past the allowed range.
        limit: u64,
    },
    /// A replicated commit arrived out of sequence: the batch claims a
    /// generation that does not continue the graph's current one. The
    /// graph is unchanged — replication must resynchronise instead of
    /// silently skipping or double-applying batches.
    GenerationGap {
        /// The generation the graph would produce next.
        expected: u64,
        /// The generation the batch claimed.
        found: u64,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::VertexOutOfRange { vertex, limit } => {
                write!(f, "vertex {vertex} out of range (limit {limit})")
            }
            DeltaError::GenerationGap { expected, found } => {
                write!(
                    f,
                    "generation gap: expected generation {expected}, batch claims {found}"
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// One atomic unit of graph change: undirected edge insertions and
/// deletions. Within a batch all insertions are applied before all
/// deletions, so an edge both inserted and deleted by the same batch ends
/// up absent. Self loops are ignored; endpoint order does not matter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    inserts: Vec<(VertexId, VertexId)>,
    deletes: Vec<(VertexId, VertexId)>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an undirected edge insertion.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.inserts.push((u, v));
        self
    }

    /// Queues an undirected edge deletion.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.deletes.push((u, v));
        self
    }

    /// The queued insertions, as given.
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// The queued deletions, as given.
    pub fn deletes(&self) -> &[(VertexId, VertexId)] {
        &self.deletes
    }

    /// Builds a batch from raw edge lists.
    pub fn from_edges(
        inserts: Vec<(VertexId, VertexId)>,
        deletes: Vec<(VertexId, VertexId)>,
    ) -> Self {
        Self { inserts, deletes }
    }

    /// Total queued operations (before normalisation).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch queues nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// What applying a batch actually changed (no-ops excluded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Undirected edges that became present.
    pub inserted: u32,
    /// Undirected edges that became absent.
    pub deleted: u32,
}

/// Sorted per-vertex insert/delete sets over a base CSR.
///
/// Invariants maintained by [`DeltaOverlay::apply`]:
/// * every insert row is strictly sorted and disjoint from the base row
///   and the delete row of the same vertex;
/// * every delete row is strictly sorted and a subset of the base row;
/// * both directions of every undirected edge are stored.
///
/// A merged read is therefore exactly `(base \ deletes) ∪ inserts`, one
/// linear three-way merge over sorted inputs.
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    inserts: BTreeMap<VertexId, Vec<VertexId>>,
    deletes: BTreeMap<VertexId, Vec<VertexId>>,
    /// Undirected edges currently added relative to the base.
    inserted_edges: u64,
    /// Undirected edges currently removed relative to the base.
    deleted_edges: u64,
    /// One past the largest vertex id ever referenced by an insert
    /// (vertices, once referenced, exist for good — possibly isolated).
    grown_vertices: usize,
}

/// Inserts `v` into the sorted row `map[u]`; false if already present.
fn row_insert(map: &mut BTreeMap<VertexId, Vec<VertexId>>, u: VertexId, v: VertexId) -> bool {
    let row = map.entry(u).or_default();
    match row.binary_search(&v) {
        Ok(_) => false,
        Err(pos) => {
            row.insert(pos, v);
            true
        }
    }
}

/// Removes `v` from the sorted row `map[u]`; false if absent.
fn row_remove(map: &mut BTreeMap<VertexId, Vec<VertexId>>, u: VertexId, v: VertexId) -> bool {
    let Some(row) = map.get_mut(&u) else {
        return false;
    };
    match row.binary_search(&v) {
        Ok(pos) => {
            row.remove(pos);
            if row.is_empty() {
                map.remove(&u);
            }
            true
        }
        Err(_) => false,
    }
}

fn row_contains(map: &BTreeMap<VertexId, Vec<VertexId>>, u: VertexId, v: VertexId) -> bool {
    map.get(&u).is_some_and(|row| row.binary_search(&v).is_ok())
}

impl DeltaOverlay {
    /// An empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the overlay changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.grown_vertices == 0
    }

    /// Total undirected edge modifications currently held (inserted plus
    /// deleted) — the size compaction thresholds compare against.
    pub fn delta_edges(&self) -> u64 {
        self.inserted_edges + self.deleted_edges
    }

    /// Whether the undirected edge `(u, v)` exists in the merged view.
    pub fn edge_present(&self, base: &CsrGraph, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        if row_contains(&self.inserts, u, v) {
            return true;
        }
        if row_contains(&self.deletes, u, v) {
            return false;
        }
        (u as usize) < base.num_vertices()
            && (v as usize) < base.num_vertices()
            && base.has_edge(u, v)
    }

    /// Number of vertices in the merged view (base vertices plus any the
    /// overlay has grown).
    pub fn num_vertices(&self, base: &CsrGraph) -> usize {
        base.num_vertices().max(self.grown_vertices)
    }

    /// Number of undirected edges in the merged view.
    pub fn num_edges(&self, base: &CsrGraph) -> u64 {
        base.num_edges() + self.inserted_edges - self.deleted_edges
    }

    /// Applies one batch against `base`, normalising it to the overlay
    /// invariants. Insertions first, then deletions; no-ops (inserting a
    /// present edge, deleting an absent one) are skipped and do not count
    /// toward the outcome.
    pub fn apply(
        &mut self,
        batch: &EdgeBatch,
        base: &CsrGraph,
    ) -> Result<ApplyOutcome, DeltaError> {
        let limit = (base.num_vertices() + MAX_VERTEX_GROWTH) as u64;
        // Validate before mutating anything: a batch is all-or-nothing.
        for &(u, v) in batch.inserts.iter().chain(batch.deletes.iter()) {
            if u as u64 >= limit || v as u64 >= limit {
                let vertex = if u as u64 >= limit { u } else { v };
                return Err(DeltaError::VertexOutOfRange { vertex, limit });
            }
        }
        let mut outcome = ApplyOutcome::default();
        for &(u, v) in &batch.inserts {
            if u == v || self.edge_present(base, u, v) {
                continue;
            }
            let in_base = (u as usize) < base.num_vertices()
                && (v as usize) < base.num_vertices()
                && base.has_edge(u, v);
            if in_base {
                // Present in the base but masked by a delete: reinstate.
                row_remove(&mut self.deletes, u, v);
                row_remove(&mut self.deletes, v, u);
                self.deleted_edges -= 1;
            } else {
                row_insert(&mut self.inserts, u, v);
                row_insert(&mut self.inserts, v, u);
                self.inserted_edges += 1;
                let grown = (u.max(v) as usize) + 1;
                if grown > base.num_vertices() {
                    self.grown_vertices = self.grown_vertices.max(grown);
                }
            }
            outcome.inserted += 1;
        }
        for &(u, v) in &batch.deletes {
            if u == v || !self.edge_present(base, u, v) {
                continue;
            }
            if row_contains(&self.inserts, u, v) {
                // An overlay-only edge: deleting it erases the insert.
                row_remove(&mut self.inserts, u, v);
                row_remove(&mut self.inserts, v, u);
                self.inserted_edges -= 1;
            } else {
                row_insert(&mut self.deletes, u, v);
                row_insert(&mut self.deletes, v, u);
                self.deleted_edges += 1;
            }
            outcome.deleted += 1;
        }
        Ok(outcome)
    }

    /// Writes the merged (post-overlay) sorted neighborhood of `v` into
    /// `out` (cleared first): `(base_row \ deletes) ∪ inserts`, a single
    /// linear merge over three sorted inputs. The base CSR row is read
    /// as-is, so the SIMD-friendly base storage is never rewritten.
    pub fn merged_neighbors_into(&self, base: &CsrGraph, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let base_row: &[VertexId] = if (v as usize) < base.num_vertices() {
            base.neighbors(v)
        } else {
            &[]
        };
        let empty: &[VertexId] = &[];
        let ins = self.inserts.get(&v).map_or(empty, |r| r.as_slice());
        let del = self.deletes.get(&v).map_or(empty, |r| r.as_slice());
        out.reserve(base_row.len() + ins.len());
        let (mut bi, mut ii, mut di) = (0usize, 0usize, 0usize);
        while bi < base_row.len() || ii < ins.len() {
            let take_insert = match (base_row.get(bi), ins.get(ii)) {
                (Some(&b), Some(&i)) => i < b, // disjoint by invariant
                (None, Some(_)) => true,
                _ => false,
            };
            if take_insert {
                out.push(ins[ii]);
                ii += 1;
            } else {
                let b = base_row[bi];
                bi += 1;
                while di < del.len() && del[di] < b {
                    di += 1;
                }
                if di < del.len() && del[di] == b {
                    di += 1;
                    continue; // masked by a delete
                }
                out.push(b);
            }
        }
    }

    /// Folds the overlay into a fresh CSR (the compaction path). Rows
    /// without deltas are copied verbatim from the base; touched rows are
    /// merged. The result is canonical, so it is bit-identical no matter
    /// how the same net change was batched.
    pub fn materialize(&self, base: &CsrGraph) -> CsrGraph {
        let n = self.num_vertices(base);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(2 * self.num_edges(base) as usize);
        let mut scratch = Vec::new();
        for v in 0..n as VertexId {
            let untouched = !self.inserts.contains_key(&v) && !self.deletes.contains_key(&v);
            if untouched && (v as usize) < base.num_vertices() {
                neighbors.extend_from_slice(base.neighbors(v));
            } else {
                self.merged_neighbors_into(base, v, &mut scratch);
                neighbors.extend_from_slice(&scratch);
            }
            offsets.push(neighbors.len());
        }
        CsrGraph::from_raw_parts(offsets, neighbors)
    }

    /// Drops every delta (after the caller folded them into a new base).
    pub fn clear(&mut self) {
        self.inserts.clear();
        self.deletes.clear();
        self.inserted_edges = 0;
        self.deleted_edges = 0;
        self.grown_vertices = 0;
    }
}

/// A pinned, immutable view of one generation. Queries hold one of these
/// for their whole execution: the `Arc` keeps the generation's CSR alive
/// (and unchanged) however many batches commit in the meantime.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    generation: u64,
    graph: Arc<CsrGraph>,
}

impl GraphSnapshot {
    /// The generation number this snapshot pins.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The immutable CSR of the pinned generation.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }
}

/// What one [`DynamicGraph::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReport {
    /// The generation this commit produced.
    pub generation: u64,
    /// Undirected edges that became present.
    pub inserted: u32,
    /// Undirected edges that became absent.
    pub deleted: u32,
    /// Whether the commit folded the overlay into a fresh base CSR.
    pub compacted: bool,
}

struct DynState {
    base: Arc<CsrGraph>,
    overlay: DeltaOverlay,
    generation: u64,
    /// The materialised CSR of the current generation, built lazily on
    /// the first snapshot after a commit (update-heavy periods with no
    /// reads never pay for materialisation).
    current: Option<Arc<CsrGraph>>,
}

/// A mutable graph serving immutable snapshots: commit [`EdgeBatch`]es on
/// one side, pin per-generation [`GraphSnapshot`]s on the other.
///
/// ```
/// use graphpi_graph::delta::{DynamicGraph, EdgeBatch};
/// use graphpi_graph::GraphBuilder;
///
/// let graph = DynamicGraph::new(GraphBuilder::new().edges([(0, 1), (1, 2)]).build());
/// let before = graph.snapshot();
/// let mut batch = EdgeBatch::new();
/// batch.insert(0, 2);
/// let report = graph.commit(&batch).unwrap();
/// assert_eq!(report.generation, 1);
/// // The pinned snapshot still sees the pre-commit graph.
/// assert_eq!(before.graph().num_edges(), 2);
/// assert_eq!(graph.snapshot().graph().num_edges(), 3);
/// ```
pub struct DynamicGraph {
    state: Mutex<DynState>,
    compaction_threshold: u64,
}

impl std::fmt::Debug for DynamicGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("dynamic graph poisoned");
        f.debug_struct("DynamicGraph")
            .field("generation", &state.generation)
            .field("overlay_edges", &state.overlay.delta_edges())
            .finish()
    }
}

impl DynamicGraph {
    /// Wraps a base graph as generation 0.
    pub fn new(base: CsrGraph) -> Self {
        Self::with_compaction_threshold(base, DEFAULT_COMPACTION_THRESHOLD)
    }

    /// Like [`DynamicGraph::new`] with an explicit compaction threshold
    /// (in overlay edge modifications; 0 compacts on every commit).
    pub fn with_compaction_threshold(base: CsrGraph, threshold: u64) -> Self {
        let base = Arc::new(base);
        Self {
            state: Mutex::new(DynState {
                current: Some(Arc::clone(&base)),
                base,
                overlay: DeltaOverlay::new(),
                generation: 0,
            }),
            compaction_threshold: threshold,
        }
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.state
            .lock()
            .expect("dynamic graph poisoned")
            .generation
    }

    /// Current overlay size in edge modifications (0 right after a
    /// compaction).
    pub fn overlay_edges(&self) -> u64 {
        self.state
            .lock()
            .expect("dynamic graph poisoned")
            .overlay
            .delta_edges()
    }

    /// Checks a batch against the limits a commit would enforce, without
    /// changing anything — the write-ahead log uses this to reject a bad
    /// batch *before* logging it.
    pub fn validate_batch(&self, batch: &EdgeBatch) -> Result<(), DeltaError> {
        let state = self.state.lock().expect("dynamic graph poisoned");
        let limit = (state.base.num_vertices() + MAX_VERTEX_GROWTH) as u64;
        for &(u, v) in batch.inserts().iter().chain(batch.deletes().iter()) {
            if u as u64 >= limit || v as u64 >= limit {
                let vertex = if u as u64 >= limit { u } else { v };
                return Err(DeltaError::VertexOutOfRange { vertex, limit });
            }
        }
        Ok(())
    }

    /// Overrides the generation counter — recovery uses this to restore
    /// the pre-crash numbering after replaying the log.
    pub(crate) fn set_generation(&self, generation: u64) {
        self.state
            .lock()
            .expect("dynamic graph poisoned")
            .generation = generation;
    }

    /// Pins the current generation. The first snapshot after a commit
    /// materialises the merged CSR and caches it for later pins of the
    /// same generation.
    pub fn snapshot(&self) -> GraphSnapshot {
        let mut state = self.state.lock().expect("dynamic graph poisoned");
        let graph = match &state.current {
            Some(graph) => Arc::clone(graph),
            None => {
                let merged = Arc::new(state.overlay.materialize(&state.base));
                state.current = Some(Arc::clone(&merged));
                merged
            }
        };
        GraphSnapshot {
            generation: state.generation,
            graph,
        }
    }

    /// Commits one batch, producing the next generation. Existing
    /// snapshots are untouched; new snapshots see the merged view. The
    /// overlay is folded into a fresh base once it crosses the compaction
    /// threshold.
    pub fn commit(&self, batch: &EdgeBatch) -> Result<CommitReport, DeltaError> {
        let mut state = self.state.lock().expect("dynamic graph poisoned");
        Self::commit_locked(&mut state, batch, self.compaction_threshold)
    }

    /// Commits one batch that must produce exactly `generation` — the
    /// replication apply path. A batch whose claimed generation does not
    /// continue the current sequence is rejected with
    /// [`DeltaError::GenerationGap`] and nothing changes, so a replica
    /// can never silently skip or double-apply part of the stream.
    pub fn commit_at(
        &self,
        batch: &EdgeBatch,
        generation: u64,
    ) -> Result<CommitReport, DeltaError> {
        let mut state = self.state.lock().expect("dynamic graph poisoned");
        let expected = state.generation + 1;
        if generation != expected {
            return Err(DeltaError::GenerationGap {
                expected,
                found: generation,
            });
        }
        Self::commit_locked(&mut state, batch, self.compaction_threshold)
    }

    fn commit_locked(
        state: &mut DynState,
        batch: &EdgeBatch,
        compaction_threshold: u64,
    ) -> Result<CommitReport, DeltaError> {
        let base = Arc::clone(&state.base);
        let outcome = state.overlay.apply(batch, &base)?;
        state.generation += 1;
        let mut compacted = false;
        if outcome.inserted > 0 || outcome.deleted > 0 {
            state.current = None;
            if state.overlay.delta_edges() >= compaction_threshold.max(1) {
                let merged = Arc::new(state.overlay.materialize(&state.base));
                state.overlay.clear();
                state.base = Arc::clone(&merged);
                state.current = Some(merged);
                compacted = true;
            }
        }
        Ok(CommitReport {
            generation: state.generation,
            inserted: outcome.inserted,
            deleted: outcome.deleted,
            compacted,
        })
    }

    /// Folds the overlay into a fresh base CSR *off* the commit path: the
    /// expensive materialisation runs without the state lock (commits
    /// proceed concurrently), and the lock is retaken only for the final
    /// pointer swap. If a commit raced in while materialising, the stale
    /// result is discarded and the call reports `false` — the caller (a
    /// maintenance thread) simply retries on its next tick. Returns
    /// whether a compaction was installed.
    pub fn compact(&self) -> bool {
        let (base, overlay, generation) = {
            let state = self.state.lock().expect("dynamic graph poisoned");
            if state.overlay.delta_edges() == 0 {
                return false;
            }
            (
                Arc::clone(&state.base),
                state.overlay.clone(),
                state.generation,
            )
        };
        let merged = Arc::new(overlay.materialize(&base)); // slow part, unlocked
        let mut state = self.state.lock().expect("dynamic graph poisoned");
        if state.generation != generation {
            return false; // a commit raced in; the materialisation is stale
        }
        state.overlay.clear();
        state.base = Arc::clone(&merged);
        state.current = Some(merged);
        true
    }

    /// Replaces the entire graph with `base` at `generation`, dropping
    /// the overlay — the checkpoint-bootstrap path for replicas that are
    /// too far behind to catch up from the log. Existing snapshots keep
    /// their pinned view.
    pub fn reset_base(&self, base: CsrGraph, generation: u64) {
        let mut state = self.state.lock().expect("dynamic graph poisoned");
        let base = Arc::new(base);
        state.overlay.clear();
        state.current = Some(Arc::clone(&base));
        state.base = base;
        state.generation = generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, GraphBuilder};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn path4() -> CsrGraph {
        GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build()
    }

    #[test]
    fn apply_normalises_against_the_base() {
        let base = path4();
        let mut overlay = DeltaOverlay::new();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1); // already present: no-op
        batch.insert(0, 2); // new
        batch.insert(2, 0); // duplicate of the above, other direction
        batch.insert(3, 3); // self loop: ignored
        batch.delete(1, 2); // present in base: masked
        batch.delete(0, 3); // absent: no-op
        let outcome = overlay.apply(&batch, &base).unwrap();
        assert_eq!(
            outcome,
            ApplyOutcome {
                inserted: 1,
                deleted: 1
            }
        );
        assert!(overlay.edge_present(&base, 0, 2));
        assert!(!overlay.edge_present(&base, 1, 2));
        assert!(overlay.edge_present(&base, 0, 1));
        assert_eq!(overlay.num_edges(&base), 3);
        assert_eq!(overlay.delta_edges(), 2);
    }

    #[test]
    fn insert_then_delete_round_trips_to_empty() {
        let base = path4();
        let mut overlay = DeltaOverlay::new();
        let mut ins = EdgeBatch::new();
        ins.insert(0, 3);
        overlay.apply(&ins, &base).unwrap();
        let mut del = EdgeBatch::new();
        del.delete(3, 0);
        overlay.apply(&del, &base).unwrap();
        assert_eq!(overlay.delta_edges(), 0);
        assert_eq!(overlay.materialize(&base), base);
        // Deleting a base edge and re-inserting it reinstates it exactly.
        let mut del = EdgeBatch::new();
        del.delete(1, 2);
        overlay.apply(&del, &base).unwrap();
        let mut ins = EdgeBatch::new();
        ins.insert(2, 1);
        overlay.apply(&ins, &base).unwrap();
        assert_eq!(overlay.delta_edges(), 0);
        assert_eq!(overlay.materialize(&base), base);
    }

    #[test]
    fn same_batch_insert_then_delete_ends_absent() {
        let base = path4();
        let mut overlay = DeltaOverlay::new();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3);
        batch.delete(0, 3);
        let outcome = overlay.apply(&batch, &base).unwrap();
        assert_eq!(
            outcome,
            ApplyOutcome {
                inserted: 1,
                deleted: 1
            }
        );
        assert!(!overlay.edge_present(&base, 0, 3));
        assert!(overlay.is_empty());
    }

    #[test]
    fn vertex_growth_is_supported_and_bounded() {
        let base = path4();
        let mut overlay = DeltaOverlay::new();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 6);
        overlay.apply(&batch, &base).unwrap();
        assert_eq!(overlay.num_vertices(&base), 7);
        let merged = overlay.materialize(&base);
        assert_eq!(merged.num_vertices(), 7);
        assert!(merged.has_edge(0, 6));
        assert_eq!(merged.degree(5), 0);

        let mut hostile = EdgeBatch::new();
        hostile.insert(0, u32::MAX);
        let err = overlay.apply(&hostile, &base).unwrap_err();
        assert!(matches!(err, DeltaError::VertexOutOfRange { .. }));
        // The failed batch changed nothing.
        assert_eq!(overlay.num_vertices(&base), 7);
    }

    #[test]
    fn snapshots_pin_their_generation() {
        let graph = DynamicGraph::new(path4());
        let g0 = graph.snapshot();
        assert_eq!(g0.generation(), 0);
        let mut batch = EdgeBatch::new();
        batch.insert(0, 2);
        batch.delete(2, 3);
        let report = graph.commit(&batch).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.inserted, 1);
        assert_eq!(report.deleted, 1);
        let g1 = graph.snapshot();
        assert_eq!(g1.generation(), 1);
        // The old pin still sees the old graph, bit-stable.
        assert_eq!(g0.graph().num_edges(), 3);
        assert!(!g0.graph().has_edge(0, 2));
        assert!(g0.graph().has_edge(2, 3));
        assert_eq!(g1.graph().num_edges(), 3);
        assert!(g1.graph().has_edge(0, 2));
        assert!(!g1.graph().has_edge(2, 3));
        // An effect-free commit still bumps the generation but keeps the
        // cached CSR (nothing changed).
        let report = graph.commit(&EdgeBatch::new()).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(graph.snapshot().graph(), g1.graph());
    }

    #[test]
    fn compaction_is_transparent() {
        let base = generators::power_law(120, 4, 9);
        let eager = DynamicGraph::with_compaction_threshold(base.clone(), 1);
        let lazy = DynamicGraph::with_compaction_threshold(base, u64::MAX);
        let mut reports = Vec::new();
        for round in 0u32..20 {
            let mut batch = EdgeBatch::new();
            batch.insert(round, (round + 37) % 120);
            batch.delete(round, (round + 1) % 120);
            let a = eager.commit(&batch).unwrap();
            let b = lazy.commit(&batch).unwrap();
            assert_eq!(a.generation, b.generation);
            assert_eq!((a.inserted, a.deleted), (b.inserted, b.deleted));
            reports.push(a.compacted);
        }
        assert!(reports.iter().any(|&c| c), "eager path must compact");
        assert!(lazy.overlay_edges() > 0);
        assert_eq!(eager.snapshot().graph(), lazy.snapshot().graph());
    }

    /// Reference model: the merged view must equal a from-scratch rebuild
    /// of the edited edge set.
    fn model_edges(base: &CsrGraph) -> BTreeSet<(VertexId, VertexId)> {
        base.edges().collect()
    }

    proptest! {
        #[test]
        fn prop_overlay_matches_rebuild(
            seed in 0u64..500,
            ops in proptest::collection::vec((0u32..40, 0u32..40, 0u8..2), 1..60),
        ) {
            let base = generators::erdos_renyi(30, 60, seed);
            let mut model = model_edges(&base);
            let mut overlay = DeltaOverlay::new();
            for chunk in ops.chunks(7) {
                let mut batch = EdgeBatch::new();
                for &(u, v, ins_flag) in chunk {
                    if ins_flag == 1 {
                        batch.insert(u, v);
                    } else {
                        batch.delete(u, v);
                    }
                }
                overlay.apply(&batch, &base).unwrap();
                // Batch semantics: all inserts land before all deletes.
                for &(u, v) in batch.inserts() {
                    if u != v {
                        model.insert((u.min(v), u.max(v)));
                    }
                }
                for &(u, v) in batch.deletes() {
                    model.remove(&(u.min(v), u.max(v)));
                }
            }
            let expected = GraphBuilder::new()
                .num_vertices(overlay.num_vertices(&base))
                .edges(model.iter().copied())
                .build();
            let merged = overlay.materialize(&base);
            prop_assert_eq!(&merged, &expected);
            prop_assert_eq!(merged.num_edges(), overlay.num_edges(&base));
            // Row-level merge agrees with the materialised rows.
            let mut row = Vec::new();
            for v in 0..merged.num_vertices() as u32 {
                overlay.merged_neighbors_into(&base, v, &mut row);
                prop_assert_eq!(&row[..], merged.neighbors(v));
            }
        }
    }
}
