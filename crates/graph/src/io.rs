//! Loading and saving data graphs.
//!
//! The paper's system takes the data graph "in the form of adjacency lists";
//! in practice graph datasets are distributed as whitespace-separated edge
//! lists (the SNAP format), so this module supports:
//!
//! * [`load_edge_list`] / [`save_edge_list`] — plain text, one `u v` pair per
//!   line, `#`-prefixed comment lines ignored, arbitrary vertex labels
//!   remapped to a dense `0..n` range.
//! * [`save_binary`] / [`load_binary`] / [`load_binary_mmap`] — the **v2
//!   binary format**: a versioned, checksummed 64-byte header followed by
//!   the raw CSR arrays, so loading is validation rather than
//!   reconstruction. [`load_binary_mmap`] maps the arrays zero-copy
//!   (64-bit Unix; elsewhere it transparently falls back to a copying
//!   read) — the path that opens the door to Patents/LiveJournal/Orkut
//!   scale ingest. The legacy v1 edge-pair format is still read.
//!
//! # v2 binary layout (little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "GRPHPI02"
//!      8     4  version (2)
//!     12     4  flags (0, reserved)
//!     16     8  num_vertices
//!     24     8  num_edges
//!     32     8  neighbors_len (= 2 * num_edges)
//!     40     8  payload checksum (FNV-1a over LE u64 words, zero-padded)
//!     48     8  header checksum (FNV-1a over bytes 0..48)
//!     56     8  reserved (0)
//!     64     -  offsets: u64 x (num_vertices + 1)
//!      -     -  neighbors: u32 x neighbors_len
//! ```
//!
//! Every open — mmap or copying — validates the magic, version, both
//! checksums, the exact file size, offset monotonicity/bounds and per-row
//! strict sortedness before a [`CsrGraph`] is produced, so truncated or
//! corrupt files fail with a typed [`LoadError`] instead of reading
//! garbage (the truncation test sweeps every prefix length).

use crate::builder::{build_from_edge_slice, GraphBuilder};
use crate::csr::{CsrGraph, VertexId};
use crate::mmap::{MappedSlice, Region, SharedSlice};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes of the current (v2, raw-CSR) binary format.
const BINARY_MAGIC_V2: &[u8; 8] = b"GRPHPI02";

/// Magic bytes of the legacy v1 (edge-pair) binary format.
const BINARY_MAGIC_V1: &[u8; 8] = b"GRPHPI01";

/// Version field written into v2 headers.
pub const BINARY_VERSION: u32 = 2;

/// Size of the v2 header in bytes.
pub const BINARY_HEADER_LEN: usize = 64;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Errors produced while loading a graph.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line could not be parsed as an edge.
    Parse {
        /// 1-based line number of the offending line.
        line_number: usize,
        /// The offending line's text.
        line: String,
    },
    /// The binary header or payload is missing, truncated or corrupt.
    BadFormat(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line_number, line } => {
                write!(f, "cannot parse line {line_number}: {line:?}")
            }
            LoadError::BadFormat(msg) => write!(f, "bad binary format: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a whitespace-separated edge list from a reader.
///
/// Vertex labels may be arbitrary `u64`s; they are remapped to dense ids in
/// first-appearance order. Lines starting with `#` or `%` and empty lines
/// are skipped.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, LoadError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut builder = GraphBuilder::new();
    let intern = |label: u64, remap: &mut HashMap<u64, VertexId>| -> VertexId {
        let next = remap.len() as VertexId;
        *remap.entry(label).or_insert(next)
    };
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(LoadError::Parse {
                line_number: idx + 1,
                line,
            });
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(LoadError::Parse {
                line_number: idx + 1,
                line,
            });
        };
        let u = intern(a, &mut remap);
        let v = intern(b, &mut remap);
        builder.push_edge(u, v);
    }
    Ok(builder.build())
}

/// Loads an edge-list file from disk. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, LoadError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as a plain-text edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# graphpi edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Saves a graph as a plain-text edge list file.
pub fn save_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

/// FNV-1a over the little-endian `u64` words of `bytes` (the final partial
/// word, if any, zero-padded). Matches [`payload_checksum`] on the byte
/// image the writer produces.
fn fnv1a_words(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash ^= word;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(buf);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The payload checksum computed from the in-memory arrays (no byte
/// materialisation): the offsets section is exactly one LE word per entry,
/// and neighbor pairs pack into one word (odd tail zero-extended), so this
/// equals [`fnv1a_words`] over the serialised payload.
fn payload_checksum(offsets: &[usize], neighbors: &[VertexId]) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut mix = |word: u64| {
        hash ^= word;
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    for &o in offsets {
        mix(o as u64);
    }
    let mut pairs = neighbors.chunks_exact(2);
    for pair in &mut pairs {
        mix(pair[0] as u64 | (pair[1] as u64) << 32);
    }
    if let [last] = pairs.remainder() {
        mix(*last as u64);
    }
    hash
}

/// Serialises a slice in bulk through a reusable chunk buffer (one
/// `write_all` per ~64 KiB instead of one per element — the difference is
/// seconds on dataset-scale graphs).
fn write_le_chunked<W: Write, T: Copy>(
    w: &mut W,
    values: &[T],
    to_le: impl Fn(T, &mut Vec<u8>),
) -> io::Result<()> {
    const CHUNK_BYTES: usize = 64 * 1024;
    let mut buf: Vec<u8> = Vec::with_capacity(CHUNK_BYTES + 8);
    for &v in values {
        to_le(v, &mut buf);
        if buf.len() >= CHUNK_BYTES {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)
}

/// Saves a graph in the v2 binary format (see the module docs for the
/// layout).
///
/// The file is written to a temporary sibling and atomically renamed into
/// place, so a concurrent reader holding the old file memory-mapped keeps
/// its (old) pages — truncating in place would SIGBUS it — and a crashed
/// writer never leaves a half-written file under the target name.
pub fn save_binary<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> io::Result<()> {
    let offsets = graph.offsets_slice();
    let neighbors = graph.neighbors_slice();

    let mut header = [0u8; BINARY_HEADER_LEN];
    header[0..8].copy_from_slice(BINARY_MAGIC_V2);
    header[8..12].copy_from_slice(&BINARY_VERSION.to_le_bytes());
    // flags at 12..16 stay 0.
    header[16..24].copy_from_slice(&(graph.num_vertices() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&graph.num_edges().to_le_bytes());
    header[32..40].copy_from_slice(&(neighbors.len() as u64).to_le_bytes());
    header[40..48].copy_from_slice(&payload_checksum(offsets, neighbors).to_le_bytes());
    let header_checksum = fnv1a_words(&header[0..48]);
    header[48..56].copy_from_slice(&header_checksum.to_le_bytes());
    // reserved at 56..64 stays 0.

    let path = path.as_ref();
    // Unique per target name, process AND call: `with_extension` would
    // collide for targets sharing a stem, and a bare PID would collide
    // for concurrent saves within one process.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "graph".to_string());
    let tmp_path = path.with_file_name(format!("{file_name}.tmp.{}.{seq}", std::process::id()));
    let result = (|| {
        let file = std::fs::File::create(&tmp_path)?;
        let mut w = BufWriter::new(file);
        w.write_all(&header)?;
        write_le_chunked(&mut w, offsets, |o, buf| {
            buf.extend_from_slice(&(o as u64).to_le_bytes())
        })?;
        write_le_chunked(&mut w, neighbors, |v, buf| {
            buf.extend_from_slice(&v.to_le_bytes())
        })?;
        w.flush()?;
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp_path).ok();
    }
    result
}

/// Whether `path` starts with a binary graph magic (either format
/// version). This is the sniff `--format auto` front ends should use —
/// it keeps the magic knowledge next to the formats themselves.
pub fn sniff_is_binary<P: AsRef<Path>>(path: P) -> bool {
    let mut magic = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|()| &magic == BINARY_MAGIC_V1 || &magic == BINARY_MAGIC_V2)
        .unwrap_or(false)
}

/// The validated fields of a v2 header.
struct HeaderV2 {
    num_vertices: usize,
    neighbors_len: usize,
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Validates magic, version, both checksums and the exact file size.
fn validate_header_v2(bytes: &[u8]) -> Result<HeaderV2, LoadError> {
    let fail = |msg: String| Err(LoadError::BadFormat(msg));
    if bytes.len() < BINARY_HEADER_LEN {
        return fail(format!(
            "truncated header: {} bytes, need {BINARY_HEADER_LEN}",
            bytes.len()
        ));
    }
    if &bytes[0..8] != BINARY_MAGIC_V2 {
        return fail("magic mismatch".into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != BINARY_VERSION {
        return fail(format!("unsupported version {version}"));
    }
    let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if flags != 0 {
        return fail(format!("unsupported flags {flags:#x}"));
    }
    let stored_header_checksum = read_u64(bytes, 48);
    if fnv1a_words(&bytes[0..48]) != stored_header_checksum {
        return fail("header checksum mismatch".into());
    }
    let num_vertices = read_u64(bytes, 16);
    let num_edges = read_u64(bytes, 24);
    let neighbors_len = read_u64(bytes, 32);
    if neighbors_len != num_edges.saturating_mul(2) {
        return fail(format!(
            "neighbors_len {neighbors_len} != 2 * num_edges {num_edges}"
        ));
    }
    let expected = (num_vertices.checked_add(1))
        .and_then(|n1| n1.checked_mul(8))
        .and_then(|ob| {
            neighbors_len
                .checked_mul(4)
                .and_then(|nb| ob.checked_add(nb))
        })
        .and_then(|pb| pb.checked_add(BINARY_HEADER_LEN as u64));
    match expected {
        Some(expected) if expected == bytes.len() as u64 => {}
        Some(expected) => {
            return fail(format!(
                "file is {} bytes, header implies {expected} (truncated or trailing data)",
                bytes.len()
            ))
        }
        None => return fail("header sizes overflow".into()),
    }
    let stored_payload_checksum = read_u64(bytes, 40);
    if fnv1a_words(&bytes[BINARY_HEADER_LEN..]) != stored_payload_checksum {
        return fail("payload checksum mismatch".into());
    }
    let _ = num_edges; // consistency with neighbors_len checked above
    let num_vertices = usize::try_from(num_vertices)
        .map_err(|_| LoadError::BadFormat("num_vertices exceeds address space".into()))?;
    let neighbors_len = usize::try_from(neighbors_len)
        .map_err(|_| LoadError::BadFormat("neighbors_len exceeds address space".into()))?;
    Ok(HeaderV2 {
        num_vertices,
        neighbors_len,
    })
}

/// Release-mode validation of the CSR invariants every loaded graph must
/// satisfy: offset monotonicity and bounds, per-row strict sortedness,
/// neighbor range and no self loops.
fn validate_csr(offsets: &[usize], neighbors: &[VertexId]) -> Result<(), LoadError> {
    let fail = |msg: String| Err(LoadError::BadFormat(msg));
    let n = offsets.len() - 1;
    if offsets[0] != 0 {
        return fail(format!("offsets[0] = {} (must be 0)", offsets[0]));
    }
    if offsets[n] != neighbors.len() {
        return fail(format!(
            "offsets end at {} but there are {} neighbor entries",
            offsets[n],
            neighbors.len()
        ));
    }
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        if start > end || end > neighbors.len() {
            return fail(format!("offsets not monotonic at vertex {v}"));
        }
        let row = &neighbors[start..end];
        for w in row.windows(2) {
            if w[0] >= w[1] {
                return fail(format!("adjacency of vertex {v} not strictly sorted"));
            }
        }
        for &u in row {
            if u as usize >= n {
                return fail(format!("neighbor {u} of vertex {v} out of range"));
            }
            if u as usize == v {
                return fail(format!("self loop at vertex {v}"));
            }
        }
    }
    Ok(())
}

/// Parses the legacy v1 (edge-pair) image and rebuilds the CSR with the
/// parallel builder.
fn parse_binary_v1(bytes: &[u8]) -> Result<CsrGraph, LoadError> {
    let fail = |msg: String| Err(LoadError::BadFormat(msg));
    if bytes.len() < 24 {
        return fail(format!("truncated v1 header: {} bytes", bytes.len()));
    }
    let num_vertices = usize::try_from(read_u64(bytes, 8))
        .map_err(|_| LoadError::BadFormat("num_vertices exceeds address space".into()))?;
    let num_edges = read_u64(bytes, 16);
    let expected = num_edges
        .checked_mul(8)
        .and_then(|b| b.checked_add(24))
        .ok_or_else(|| LoadError::BadFormat("v1 header sizes overflow".into()))?;
    if expected != bytes.len() as u64 {
        return fail(format!(
            "v1 file is {} bytes, header implies {expected}",
            bytes.len()
        ));
    }
    let mut edges = Vec::with_capacity(num_edges as usize);
    for pair in bytes[24..].chunks_exact(8) {
        let u = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
        edges.push((u, v));
    }
    let graph = build_from_edge_slice(&edges, num_vertices, 0);
    if graph.num_edges() != num_edges {
        return fail(format!(
            "expected {num_edges} edges, reconstructed {}",
            graph.num_edges()
        ));
    }
    Ok(graph)
}

/// Copying parse of a v2 image.
fn parse_binary_v2(bytes: &[u8]) -> Result<CsrGraph, LoadError> {
    let header = validate_header_v2(bytes)?;
    let n = header.num_vertices;
    let mut offsets = Vec::with_capacity(n + 1);
    let offsets_bytes = &bytes[BINARY_HEADER_LEN..BINARY_HEADER_LEN + 8 * (n + 1)];
    for word in offsets_bytes.chunks_exact(8) {
        let o = u64::from_le_bytes(word.try_into().expect("8 bytes"));
        offsets.push(
            usize::try_from(o)
                .map_err(|_| LoadError::BadFormat(format!("offset {o} exceeds address space")))?,
        );
    }
    let mut neighbors = Vec::with_capacity(header.neighbors_len);
    for word in bytes[BINARY_HEADER_LEN + 8 * (n + 1)..].chunks_exact(4) {
        neighbors.push(u32::from_le_bytes(word.try_into().expect("4 bytes")));
    }
    validate_csr(&offsets, &neighbors)?;
    Ok(CsrGraph::from_shared_parts(
        offsets.into(),
        neighbors.into(),
    ))
}

/// Loads a binary graph file (v2 or legacy v1) by reading it into memory.
///
/// For large files prefer [`load_binary_mmap`], which maps the arrays
/// zero-copy where the platform supports it.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<CsrGraph, LoadError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() >= 8 && &bytes[0..8] == BINARY_MAGIC_V1 {
        parse_binary_v1(&bytes)
    } else {
        parse_binary_v2(&bytes)
    }
}

/// Opens a v2 binary graph file **zero-copy**: the offsets and neighbors
/// arrays become views over a private read-only memory mapping, validated
/// in full (checksums, monotonicity, bounds, sortedness) before the graph
/// is returned.
///
/// On targets without the mapping fast path (non-Unix or 32-bit) the file
/// is read into an aligned heap region instead — same validation, same
/// result, one copy. Legacy v1 files are rebuilt via the parallel builder.
pub fn load_binary_mmap<P: AsRef<Path>>(path: P) -> Result<CsrGraph, LoadError> {
    let region = Arc::new(Region::map(path)?);
    let bytes = region.bytes();
    if bytes.len() >= 8 && &bytes[0..8] == BINARY_MAGIC_V1 {
        return parse_binary_v1(bytes);
    }
    let header = validate_header_v2(bytes)?;
    #[cfg(all(target_pointer_width = "64", target_endian = "little"))]
    {
        // usize == u64 with matching (little-endian) byte order here, so
        // the offsets array is viewable in place.
        let n = header.num_vertices;
        let offsets = MappedSlice::<usize>::new(Arc::clone(&region), BINARY_HEADER_LEN, n + 1)
            .map_err(LoadError::BadFormat)?;
        let neighbors = MappedSlice::<VertexId>::new(
            Arc::clone(&region),
            BINARY_HEADER_LEN + 8 * (n + 1),
            header.neighbors_len,
        )
        .map_err(LoadError::BadFormat)?;
        validate_csr(offsets.as_slice(), neighbors.as_slice())?;
        Ok(CsrGraph::from_shared_parts(
            SharedSlice::Mapped(offsets),
            SharedSlice::Mapped(neighbors),
        ))
    }
    #[cfg(not(all(target_pointer_width = "64", target_endian = "little")))]
    {
        // 32-bit or big-endian: the on-disk LE u64 offsets cannot alias
        // native usizes — fall back to the copying parse.
        let _ = header;
        parse_binary_v2(bytes)
    }
}

/// What one worker produced from its chunk of the text.
struct ParsedChunk {
    /// Label pairs, in chunk order.
    pairs: Vec<(u64, u64)>,
    /// Total lines in the chunk (counted even past an error, so later
    /// chunks can compute global line numbers).
    lines: usize,
    /// First unparsable line: (0-based line offset within the chunk,
    /// line text).
    error: Option<(usize, String)>,
}

/// Parses one newline-delimited chunk. Mirrors [`read_edge_list`]'s line
/// handling exactly: trailing `\r` stripped, `#`/`%`/blank lines skipped,
/// two whitespace-separated `u64` labels per edge line.
fn parse_text_chunk(chunk: &[u8]) -> Result<ParsedChunk, LoadError> {
    let mut out = ParsedChunk {
        pairs: Vec::new(),
        lines: 0,
        error: None,
    };
    let mut segments = chunk.split(|&b| b == b'\n').peekable();
    while let Some(raw) = segments.next() {
        // `split` yields one empty artifact after a trailing newline —
        // not a line (matches `BufRead::lines`).
        if segments.peek().is_none() && raw.is_empty() && chunk.last() == Some(&b'\n') {
            break;
        }
        let line_index = out.lines;
        out.lines += 1;
        if out.error.is_some() {
            continue; // keep counting lines, stop parsing
        }
        let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
        let Ok(line) = std::str::from_utf8(raw) else {
            return Err(LoadError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream did not contain valid UTF-8",
            )));
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let labels = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => match (a.parse::<u64>(), b.parse::<u64>()) {
                (Ok(a), Ok(b)) => Some((a, b)),
                _ => None,
            },
            _ => None,
        };
        match labels {
            Some(pair) => out.pairs.push(pair),
            None => out.error = Some((line_index, line.to_string())),
        }
    }
    Ok(out)
}

/// Splits `bytes` into at most `chunks` pieces on newline boundaries.
fn chunk_at_line_boundaries(bytes: &[u8], chunks: usize) -> Vec<&[u8]> {
    let mut boundaries = vec![0usize];
    for i in 1..chunks {
        let mut pos = i * bytes.len() / chunks;
        while pos < bytes.len() && bytes[pos] != b'\n' {
            pos += 1;
        }
        pos = (pos + 1).min(bytes.len());
        if pos > *boundaries.last().unwrap() {
            boundaries.push(pos);
        }
    }
    boundaries.push(bytes.len());
    boundaries.windows(2).map(|w| &bytes[w[0]..w[1]]).collect()
}

/// Parses a whitespace-separated edge-list *text* in parallel,
/// bit-identical to [`read_edge_list`] — same graph, same first-error
/// line number.
///
/// The input is split into chunks at line boundaries; workers parse the
/// label pairs concurrently; a single sequential pass then interns labels
/// in first-appearance file order (exactly the serial remapping) and the
/// existing parallel CSR builder assembles the graph. `threads` = 0 picks
/// a thread count from the input size and available cores; 1 is the
/// serial path.
pub fn read_edge_list_parallel(bytes: &[u8], threads: usize) -> Result<CsrGraph, LoadError> {
    let threads = if threads > 0 {
        threads.min(16)
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
            .min(bytes.len() >> 18)
            .max(1)
    };
    if threads <= 1 {
        return read_edge_list(bytes);
    }
    let chunks = chunk_at_line_boundaries(bytes, threads);
    let parsed = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(move || parse_text_chunk(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk parser panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;

    // The globally-first bad line wins, exactly as the serial scan would
    // have reported it.
    let mut lines_before = 0usize;
    for chunk in &parsed {
        if let Some((offset, line)) = &chunk.error {
            return Err(LoadError::Parse {
                line_number: lines_before + offset + 1,
                line: line.clone(),
            });
        }
        lines_before += chunk.lines;
    }

    // Sequential intern pass in file order: identical dense remapping to
    // the serial loader.
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let total: usize = parsed.iter().map(|c| c.pairs.len()).sum();
    let mut edges = Vec::with_capacity(total);
    for chunk in &parsed {
        for &(a, b) in &chunk.pairs {
            let next = remap.len() as VertexId;
            let u = *remap.entry(a).or_insert(next);
            let next = remap.len() as VertexId;
            let v = *remap.entry(b).or_insert(next);
            edges.push((u, v));
        }
    }
    Ok(build_from_edge_slice(&edges, 0, threads))
}

/// Loads an edge-list text file with [`read_edge_list_parallel`].
pub fn load_edge_list_parallel<P: AsRef<Path>>(
    path: P,
    threads: usize,
) -> Result<CsrGraph, LoadError> {
    let bytes = std::fs::read(path)?;
    read_edge_list_parallel(&bytes, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("graphpi_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_text_with_comments_and_labels() {
        let text = "# a comment\n% another\n\n10 20\n20 30\n10 30\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(crate::triangles::count_triangles(&g), 1);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "1 2\noops\n";
        match read_edge_list(text.as_bytes()) {
            Err(LoadError::Parse { line_number, .. }) => assert_eq!(line_number, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_round_trip() {
        let g = generators::power_law(100, 3, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        // Vertex relabeling may permute ids, but the counts are invariant.
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(
            crate::triangles::count_triangles(&g),
            crate::triangles::count_triangles(&g2)
        );
    }

    #[test]
    fn binary_round_trip_copy_and_mmap() {
        let g = generators::erdos_renyi(50, 200, 4);
        let path = temp_dir().join("graph.bin");
        save_binary(&g, &path).unwrap();
        let copied = load_binary(&path).unwrap();
        assert_eq!(g, copied);
        assert!(!copied.is_memory_mapped());
        let mapped = load_binary_mmap(&path).unwrap();
        assert_eq!(g, mapped);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(mapped.is_memory_mapped());
        // The mapped view must be fully usable after the file handle is
        // gone (the mapping owns the region).
        assert_eq!(
            crate::triangles::count_triangles(&mapped),
            crate::triangles::count_triangles(&g)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_isolated_graphs_round_trip() {
        for g in [
            GraphBuilder::new().build(),
            GraphBuilder::new().num_vertices(7).build(),
        ] {
            let path = temp_dir().join("degenerate.bin");
            save_binary(&g, &path).unwrap();
            assert_eq!(load_binary(&path).unwrap(), g);
            assert_eq!(load_binary_mmap(&path).unwrap(), g);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn edge_list_file_round_trip() {
        let g = generators::cycle(10);
        let path = temp_dir().join("graph.txt");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
        std::fs::remove_file(&path).ok();
    }

    /// Zero-length and sub-magic-size files must sniff as text and produce
    /// a typed error from the binary loaders — never a panic or an
    /// out-of-bounds read. Regression suite for the `--format auto` front
    /// end path, which feeds whatever the user points it at straight into
    /// [`sniff_is_binary`] and then one of the loaders.
    #[test]
    fn zero_length_and_sub_magic_files_are_handled_cleanly() {
        // Every prefix of both magics, from the empty file up to one byte
        // short of a full magic, plus arbitrary short junk.
        let mut contents: Vec<Vec<u8>> = Vec::new();
        for len in 0..8 {
            contents.push(BINARY_MAGIC_V2[..len].to_vec());
            contents.push(BINARY_MAGIC_V1[..len].to_vec());
        }
        contents.push(b"x".to_vec());
        contents.push(b"1234567".to_vec());
        for (i, bytes) in contents.iter().enumerate() {
            let path = temp_dir().join(format!("short_{i}.bin"));
            std::fs::write(&path, bytes).unwrap();
            assert!(
                !sniff_is_binary(&path),
                "{} bytes of {:?} must sniff as text",
                bytes.len(),
                bytes
            );
            for result in [load_binary(&path), load_binary_mmap(&path)] {
                assert!(
                    matches!(result, Err(LoadError::BadFormat(_))),
                    "short file {i} ({} bytes) must be a typed error, got {result:?}",
                    bytes.len()
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    /// A file holding exactly the 8 magic bytes and nothing else sniffs as
    /// binary (the magic is all the sniff reads) but then fails header
    /// validation with a typed truncation error on both loaders.
    #[test]
    fn magic_only_files_sniff_binary_but_fail_validation() {
        for (name, magic) in [("v2", BINARY_MAGIC_V2), ("v1", BINARY_MAGIC_V1)] {
            let path = temp_dir().join(format!("magic_only_{name}.bin"));
            std::fs::write(&path, magic).unwrap();
            assert!(sniff_is_binary(&path), "{name} magic must sniff binary");
            for result in [load_binary(&path), load_binary_mmap(&path)] {
                assert!(
                    matches!(result, Err(LoadError::BadFormat(_))),
                    "magic-only {name} file must be a typed error, got {result:?}"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    /// Sniffing a missing file reports text (the subsequent load produces
    /// the real IO error), and an empty edge list parses as the empty
    /// graph rather than failing.
    #[test]
    fn sniff_missing_file_and_empty_edge_list() {
        assert!(!sniff_is_binary("/nonexistent/graphpi/sniff.bin"));
        let g = read_edge_list(&b""[..]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        let g = read_edge_list(&b"# only a comment\n\n"[..]).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_dir().join("bad.bin");
        std::fs::write(&path, b"NOTAGRPH________".repeat(8)).unwrap();
        assert!(matches!(load_binary(&path), Err(LoadError::BadFormat(_))));
        assert!(matches!(
            load_binary_mmap(&path),
            Err(LoadError::BadFormat(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn systematically_truncated_files_error_cleanly() {
        let g = generators::erdos_renyi(30, 120, 11);
        let path = temp_dir().join("trunc_src.bin");
        save_binary(&g, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Every header byte boundary, plus cuts through the offsets array,
        // the neighbors array and just short of the end.
        let mut cuts: Vec<usize> = (0..=BINARY_HEADER_LEN).collect();
        let arrays = full.len() - BINARY_HEADER_LEN;
        for k in 1..8 {
            cuts.push(BINARY_HEADER_LEN + arrays * k / 8);
        }
        cuts.push(full.len() - 1);
        for cut in cuts {
            let path = temp_dir().join(format!("trunc_{cut}.bin"));
            std::fs::write(&path, &full[..cut]).unwrap();
            for result in [load_binary(&path), load_binary_mmap(&path)] {
                match result {
                    Err(LoadError::BadFormat(_)) | Err(LoadError::Io(_)) => {}
                    other => panic!("cut at {cut}: expected error, got {other:?}"),
                }
            }
            std::fs::remove_file(&path).ok();
        }

        // Trailing garbage is also rejected.
        let mut extended = full.clone();
        extended.extend_from_slice(&[0u8; 4]);
        let path = temp_dir().join("trailing.bin");
        std::fs::write(&path, &extended).unwrap();
        assert!(matches!(load_binary(&path), Err(LoadError::BadFormat(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_and_header_are_rejected() {
        let g = generators::power_law(60, 4, 5);
        let path = temp_dir().join("corrupt_src.bin");
        save_binary(&g, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Flip one byte in the header counts, the offsets array and the
        // neighbors array; a checksum must catch each.
        for flip_at in [17usize, BINARY_HEADER_LEN + 3, full.len() - 2] {
            let mut corrupt = full.clone();
            corrupt[flip_at] ^= 0xA5;
            let path = temp_dir().join(format!("corrupt_{flip_at}.bin"));
            std::fs::write(&path, &corrupt).unwrap();
            for result in [load_binary(&path), load_binary_mmap(&path)] {
                assert!(
                    matches!(result, Err(LoadError::BadFormat(_))),
                    "flip at {flip_at} must be detected"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let g = generators::erdos_renyi(40, 150, 8);
        // Hand-write the v1 edge-pair format.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(BINARY_MAGIC_V1);
        bytes.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
        bytes.extend_from_slice(&g.num_edges().to_le_bytes());
        for (u, v) in g.edges() {
            bytes.extend_from_slice(&u.to_le_bytes());
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_dir().join("legacy_v1.bin");
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        assert_eq!(load_binary_mmap(&path).unwrap(), g);
        // Truncated v1 is rejected, not misread.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(load_binary(&path), Err(LoadError::BadFormat(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_word_and_byte_formulations_agree() {
        let offsets = vec![0usize, 2, 5, 5, 9];
        let neighbors: Vec<u32> = vec![1, 3, 0, 2, 4, 1, 3, 0, 2];
        let mut bytes = Vec::new();
        for &o in &offsets {
            bytes.extend_from_slice(&(o as u64).to_le_bytes());
        }
        for &v in &neighbors {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(payload_checksum(&offsets, &neighbors), fnv1a_words(&bytes));
        // Even-length neighbor arrays too.
        let even = &neighbors[..8];
        let mut bytes = Vec::new();
        for &o in &offsets {
            bytes.extend_from_slice(&(o as u64).to_le_bytes());
        }
        for &v in even {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(payload_checksum(&offsets, even), fnv1a_words(&bytes));
    }

    #[test]
    fn parallel_text_parse_matches_serial_on_messy_input() {
        let text = "# comment header\n\
                    7 3\n\
                    \t 3   9 \r\n\
                    % another comment\n\
                    \n\
                    1000000007 7\n\
                    9 9\n\
                    3 1000000007 trailing tokens ignored\n";
        let serial = read_edge_list(text.as_bytes()).unwrap();
        for threads in [1, 2, 3, 4, 16] {
            let parallel = read_edge_list_parallel(text.as_bytes(), threads).unwrap();
            assert_eq!(parallel, serial, "threads = {threads}");
        }
        // No trailing newline on the last line.
        let no_newline = text.trim_end();
        assert_eq!(
            read_edge_list_parallel(no_newline.as_bytes(), 4).unwrap(),
            read_edge_list(no_newline.as_bytes()).unwrap()
        );
        // Empty input.
        assert_eq!(read_edge_list_parallel(b"", 4).unwrap().num_vertices(), 0);
    }

    #[test]
    fn parallel_text_parse_reports_the_same_first_error() {
        // The bad line sits in a late chunk; an even later line is also
        // bad — the first must win, with the serial line number.
        let mut text = String::from("# header\n");
        for i in 0..200 {
            text.push_str(&format!("{i} {}\n", i + 1));
        }
        text.push_str("not an edge\n");
        for i in 0..50 {
            text.push_str(&format!("{i} {}\n", i + 3));
        }
        text.push_str("also bad\n");
        let serial = read_edge_list(text.as_bytes()).unwrap_err();
        let LoadError::Parse { line_number, line } = serial else {
            panic!("expected a parse error");
        };
        assert_eq!(line_number, 202);
        for threads in [2, 3, 4, 16] {
            match read_edge_list_parallel(text.as_bytes(), threads) {
                Err(LoadError::Parse {
                    line_number: got_number,
                    line: got_line,
                }) => {
                    assert_eq!(got_number, line_number, "threads = {threads}");
                    assert_eq!(got_line, line, "threads = {threads}");
                }
                other => panic!("threads = {threads}: expected parse error, got {other:?}"),
            }
        }
    }

    proptest::proptest! {
        /// Random edge lists (arbitrary u64 labels, duplicate edges, self
        /// loops, comments and blank lines mixed in) parse bit-identical
        /// to the serial loader at every thread count.
        #[test]
        fn prop_parallel_text_parse_is_bit_identical(
            edges in proptest::collection::vec((0u64..50, 0u64..50), 0..120),
            noise in proptest::collection::vec(0u8..4, 0..40),
            threads in 2usize..6,
        ) {
            let mut text = String::new();
            let mut noise_iter = noise.iter();
            for &(a, b) in &edges {
                if let Some(&kind) = noise_iter.next() {
                    match kind {
                        0 => text.push_str("# interleaved comment\n"),
                        1 => text.push('\n'),
                        2 => text.push_str("% other comment style\n"),
                        _ => {}
                    }
                }
                text.push_str(&format!("{a} {b}\n"));
            }
            let serial = read_edge_list(text.as_bytes()).unwrap();
            let parallel = read_edge_list_parallel(text.as_bytes(), threads).unwrap();
            proptest::prop_assert_eq!(&parallel, &serial);
        }
    }
}
