//! Loading and saving data graphs.
//!
//! The paper's system takes the data graph "in the form of adjacency lists";
//! in practice graph datasets are distributed as whitespace-separated edge
//! lists (the SNAP format), so this module supports:
//!
//! * [`load_edge_list`] / [`save_edge_list`] — plain text, one `u v` pair per
//!   line, `#`-prefixed comment lines ignored, arbitrary vertex labels
//!   remapped to a dense `0..n` range.
//! * [`save_binary`] / [`load_binary`] — a compact little-endian binary
//!   format (magic, vertex count, edge count, u32 pairs) for faster reloads.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"GRPHPI01";

/// Errors produced while loading a graph.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line could not be parsed as an edge.
    Parse {
        /// 1-based line number of the offending line.
        line_number: usize,
        /// The offending line's text.
        line: String,
    },
    /// The binary header is missing or corrupt.
    BadFormat(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line_number, line } => {
                write!(f, "cannot parse line {line_number}: {line:?}")
            }
            LoadError::BadFormat(msg) => write!(f, "bad binary format: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a whitespace-separated edge list from a reader.
///
/// Vertex labels may be arbitrary `u64`s; they are remapped to dense ids in
/// first-appearance order. Lines starting with `#` or `%` and empty lines
/// are skipped.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, LoadError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut builder = GraphBuilder::new();
    let intern = |label: u64, remap: &mut HashMap<u64, VertexId>| -> VertexId {
        let next = remap.len() as VertexId;
        *remap.entry(label).or_insert(next)
    };
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(LoadError::Parse {
                line_number: idx + 1,
                line,
            });
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(LoadError::Parse {
                line_number: idx + 1,
                line,
            });
        };
        let u = intern(a, &mut remap);
        let v = intern(b, &mut remap);
        builder.push_edge(u, v);
    }
    Ok(builder.build())
}

/// Loads an edge-list file from disk. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, LoadError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as a plain-text edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# graphpi edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Saves a graph as a plain-text edge list file.
pub fn save_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

/// Saves a graph in the compact binary format.
pub fn save_binary<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&graph.num_edges().to_le_bytes())?;
    for (u, v) in graph.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Loads a graph previously written by [`save_binary`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<CsrGraph, LoadError> {
    let mut file = std::fs::File::open(path)?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(LoadError::BadFormat("magic mismatch".into()));
    }
    let mut buf8 = [0u8; 8];
    file.read_exact(&mut buf8)?;
    let num_vertices = u64::from_le_bytes(buf8) as usize;
    file.read_exact(&mut buf8)?;
    let num_edges = u64::from_le_bytes(buf8);
    let mut builder = GraphBuilder::new().num_vertices(num_vertices);
    let mut buf4 = [0u8; 4];
    for _ in 0..num_edges {
        file.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        file.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        builder.push_edge(u, v);
    }
    let graph = builder.build();
    if graph.num_edges() != num_edges {
        return Err(LoadError::BadFormat(format!(
            "expected {num_edges} edges, reconstructed {}",
            graph.num_edges()
        )));
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parse_text_with_comments_and_labels() {
        let text = "# a comment\n% another\n\n10 20\n20 30\n10 30\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(crate::triangles::count_triangles(&g), 1);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "1 2\noops\n";
        match read_edge_list(text.as_bytes()) {
            Err(LoadError::Parse { line_number, .. }) => assert_eq!(line_number, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_round_trip() {
        let g = generators::power_law(100, 3, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        // Vertex relabeling may permute ids, but the counts are invariant.
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(
            crate::triangles::count_triangles(&g),
            crate::triangles::count_triangles(&g2)
        );
    }

    #[test]
    fn binary_round_trip() {
        let g = generators::erdos_renyi(50, 200, 4);
        let dir = std::env::temp_dir().join("graphpi_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.bin");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_file_round_trip() {
        let g = generators::cycle(10);
        let dir = std::env::temp_dir().join("graphpi_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("graphpi_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"NOTAGRPH________").unwrap();
        assert!(matches!(load_binary(&path), Err(LoadError::BadFormat(_))));
        std::fs::remove_file(&path).ok();
    }
}
