//! Structural statistics of a data graph.
//!
//! GraphPi's performance model only needs three numbers from the data graph:
//! `|V|`, `|E|` and the triangle count. From them it derives
//!
//! * `p1 = 2|E| / |V|^2` — the probability that a random vertex pair is
//!   adjacent, and
//! * `p2 = tri_cnt * |V| / (2|E|)^2` — the probability that two vertices in a
//!   common neighborhood are adjacent.
//!
//! [`GraphStats`] computes and caches these once per graph (the paper notes
//! this is part of preprocessing because the graph is immutable).

use crate::csr::CsrGraph;
use crate::triangles;

/// Cached structural statistics used by the performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_vertices: usize,
    /// `|E|` (undirected edges).
    pub num_edges: u64,
    /// Number of triangles in the graph.
    pub triangle_count: u64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// `p1 = 2|E| / |V|^2`.
    pub p1: f64,
    /// `p2 = tri_cnt * |V| / (2|E|)^2`.
    pub p2: f64,
}

impl GraphStats {
    /// Computes the statistics for a graph (this counts triangles and is the
    /// expensive part of GraphPi preprocessing that depends on the graph).
    pub fn compute(graph: &CsrGraph) -> Self {
        let num_vertices = graph.num_vertices();
        let num_edges = graph.num_edges();
        let triangle_count = triangles::count_triangles(graph);
        Self::from_counts(num_vertices, num_edges, triangle_count, graph.max_degree())
    }

    /// Builds the statistics from pre-computed counts (useful in tests and
    /// when loading persisted statistics).
    pub fn from_counts(
        num_vertices: usize,
        num_edges: u64,
        triangle_count: u64,
        max_degree: usize,
    ) -> Self {
        let nv = num_vertices as f64;
        let ne = num_edges as f64;
        let p1 = if num_vertices == 0 {
            0.0
        } else {
            2.0 * ne / (nv * nv)
        };
        let p2 = if num_edges == 0 {
            0.0
        } else {
            triangle_count as f64 * nv / (2.0 * ne * 2.0 * ne)
        };
        let avg_degree = if num_vertices == 0 {
            0.0
        } else {
            2.0 * ne / nv
        };
        Self {
            num_vertices,
            num_edges,
            triangle_count,
            max_degree,
            avg_degree,
            p1,
            p2,
        }
    }

    /// A stable 64-bit fingerprint of the integer statistics (`|V|`, `|E|`,
    /// triangle count, max degree), FNV-1a over their little-endian bytes.
    /// Two graphs with the same fingerprint are planned identically by the
    /// cost model (which only reads these numbers), so the fingerprint is
    /// the graph component of compiled-plan cache keys.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut hash = FNV_OFFSET;
        let words = [
            self.num_vertices as u64,
            self.num_edges,
            self.triangle_count,
            self.max_degree as u64,
        ];
        for word in words {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }

    /// Expected cardinality of the neighborhood of a random vertex,
    /// `2|E| / |V|` (Section IV-C, "Estimation of Cardinalities").
    pub fn expected_neighborhood_size(&self) -> f64 {
        self.avg_degree
    }

    /// Expected cardinality of the intersection of the neighborhoods of `m`
    /// pattern vertices: `|V| * p1 * p2^(m-1)`. For `m == 1` this degrades
    /// to the expected neighborhood size estimate `|V| * p1 = 2|E|/|V|`.
    pub fn expected_intersection_size(&self, m: usize) -> f64 {
        assert!(m >= 1, "intersection of zero neighborhoods is undefined");
        self.num_vertices as f64 * self.p1 * self.p2.powi(m as i32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn complete_graph_probabilities() {
        let g = generators::complete(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 45);
        assert_eq!(s.triangle_count, 120);
        // p1 = 2*45/100 = 0.9 (approaches 1 as n grows).
        assert!((s.p1 - 0.9).abs() < 1e-12);
        // p2 = 120*10 / 90^2 = 0.1481...
        assert!((s.p2 - 1200.0 / 8100.0).abs() < 1e-12);
        assert!((s.expected_neighborhood_size() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = crate::GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.p1, 0.0);
        assert_eq!(s.p2, 0.0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn intersection_estimate_decreases_with_m() {
        let g = generators::power_law(1000, 5, 11);
        let s = GraphStats::compute(&g);
        let e1 = s.expected_intersection_size(1);
        let e2 = s.expected_intersection_size(2);
        let e3 = s.expected_intersection_size(3);
        assert!(e1 > e2 && e2 > e3, "{e1} {e2} {e3}");
        assert!((e1 - s.expected_neighborhood_size()).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_distinguishes_graphs_and_is_stable() {
        let a = GraphStats::compute(&generators::power_law(200, 5, 1));
        let b = GraphStats::compute(&generators::power_law(200, 5, 2));
        let a_again = GraphStats::compute(&generators::power_law(200, 5, 1));
        assert_eq!(a.fingerprint(), a_again.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Sensitive to each component.
        let base = GraphStats::from_counts(100, 500, 40, 12);
        assert_ne!(
            base.fingerprint(),
            GraphStats::from_counts(101, 500, 40, 12).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            GraphStats::from_counts(100, 500, 41, 12).fingerprint()
        );
    }

    #[test]
    fn from_counts_matches_compute() {
        let g = generators::erdos_renyi(200, 800, 2);
        let s1 = GraphStats::compute(&g);
        let s2 = GraphStats::from_counts(
            g.num_vertices(),
            g.num_edges(),
            crate::triangles::count_triangles(&g),
            g.max_degree(),
        );
        assert_eq!(s1, s2);
    }
}
