//! Registry of stand-in datasets mirroring Table I of the paper.
//!
//! The paper evaluates on six real-world graphs (Wiki-Vote, MiCo, Patents,
//! LiveJournal, Orkut, Twitter). Those datasets cannot be shipped with this
//! reproduction, so each entry here is a *seeded synthetic stand-in* whose
//! relative size, degree skew and density follow the original at a scale
//! that runs on a laptop. The original |V|/|E| are kept in the metadata so
//! benchmark output can print both.
//!
//! The stand-ins preserve the properties the paper's claims depend on:
//! power-law degree distributions (Wiki-Vote, LiveJournal, Orkut, Twitter),
//! a sparser and less clustered citation-like graph (Patents), and a denser
//! co-authorship-like graph (MiCo). Absolute runtimes are not comparable to
//! the paper; the *relative* behaviour of configurations is.

use crate::csr::CsrGraph;
use crate::generators;

/// Which generator family a stand-in uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Power-law preferential-attachment graph (skewed degrees, clustered).
    PowerLaw,
    /// Erdős–Rényi graph (flat degrees, few triangles).
    Uniform,
}

/// A named stand-in dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Name of the original graph in the paper (e.g. "Wiki-Vote").
    pub name: &'static str,
    /// Short description from Table I.
    pub description: &'static str,
    /// |V| of the original dataset.
    pub original_vertices: u64,
    /// |E| of the original dataset.
    pub original_edges: u64,
    /// Generator family of the stand-in.
    pub kind: DatasetKind,
    /// The generated stand-in graph.
    pub graph: CsrGraph,
}

impl Dataset {
    fn power_law(
        name: &'static str,
        description: &'static str,
        original_vertices: u64,
        original_edges: u64,
        n: usize,
        m_per_vertex: usize,
        seed: u64,
    ) -> Self {
        Self {
            name,
            description,
            original_vertices,
            original_edges,
            kind: DatasetKind::PowerLaw,
            graph: generators::power_law(n, m_per_vertex, seed),
        }
    }

    fn uniform(
        name: &'static str,
        description: &'static str,
        original_vertices: u64,
        original_edges: u64,
        n: usize,
        m: usize,
        seed: u64,
    ) -> Self {
        Self {
            name,
            description,
            original_vertices,
            original_edges,
            kind: DatasetKind::Uniform,
            graph: generators::erdos_renyi(n, m, seed),
        }
    }
}

/// Wiki-Vote stand-in (original: 7.1K vertices, 100.8K edges).
///
/// Small but dense and highly clustered; the paper uses it for every
/// breakdown experiment, so the stand-in keeps a comparable scale.
pub fn wiki_vote() -> Dataset {
    Dataset::power_law(
        "Wiki-Vote",
        "Wiki editor voting",
        7_100,
        100_800,
        3_000,
        14,
        0x1,
    )
}

/// MiCo stand-in (original: 96.6K vertices, 1.1M edges, co-authorship).
pub fn mico() -> Dataset {
    Dataset::power_law("MiCo", "Co-authorship", 96_600, 1_100_000, 8_000, 11, 0x2)
}

/// Patents stand-in (original: 3.8M vertices, 16.5M edges, citation graph).
///
/// The original is sparse (average degree ≈ 8.7) with low clustering, which
/// an Erdős–Rényi stand-in reproduces well.
pub fn patents() -> Dataset {
    Dataset::uniform(
        "Patents",
        "US Patents",
        3_800_000,
        16_500_000,
        20_000,
        90_000,
        0x3,
    )
}

/// LiveJournal stand-in (original: 4.0M vertices, 34.7M edges).
pub fn livejournal() -> Dataset {
    Dataset::power_law(
        "LiveJournal",
        "Social network",
        4_000_000,
        34_700_000,
        15_000,
        9,
        0x4,
    )
}

/// Orkut stand-in (original: 3.1M vertices, 117.2M edges, dense social
/// network with average degree ≈ 76).
pub fn orkut() -> Dataset {
    Dataset::power_law(
        "Orkut",
        "Social network",
        3_100_000,
        117_200_000,
        6_000,
        20,
        0x5,
    )
}

/// Twitter stand-in (original: 41.7M vertices, 1.2B edges). Only used by the
/// scalability experiment, mirroring the paper.
pub fn twitter() -> Dataset {
    Dataset::power_law(
        "Twitter",
        "Social network",
        41_700_000,
        1_200_000_000,
        25_000,
        16,
        0x6,
    )
}

/// The five datasets used in the single-node comparison figures
/// (Figure 8, Figure 10), in paper order.
pub fn comparison_datasets() -> Vec<Dataset> {
    vec![wiki_vote(), mico(), patents(), livejournal(), orkut()]
}

/// All six datasets of Table I, in paper order.
pub fn all_datasets() -> Vec<Dataset> {
    vec![
        wiki_vote(),
        mico(),
        patents(),
        livejournal(),
        orkut(),
        twitter(),
    ]
}

/// Tiny variants (hundreds of edges) of the datasets for fast unit and
/// integration tests that still exercise both generator families.
pub fn tiny_datasets() -> Vec<Dataset> {
    vec![
        Dataset::power_law("Tiny-PowerLaw", "test graph", 0, 0, 200, 4, 0x10),
        Dataset::uniform("Tiny-Uniform", "test graph", 0, 0, 200, 600, 0x11),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let names: Vec<_> = all_datasets().iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "Wiki-Vote",
                "MiCo",
                "Patents",
                "LiveJournal",
                "Orkut",
                "Twitter"
            ]
        );
        assert_eq!(comparison_datasets().len(), 5);
    }

    #[test]
    fn standins_are_nontrivial_and_deterministic() {
        let d1 = wiki_vote();
        let d2 = wiki_vote();
        assert_eq!(d1.graph, d2.graph);
        assert!(d1.graph.num_edges() > 10_000);
        assert!(d1.graph.num_vertices() > 1_000);
    }

    #[test]
    fn orkut_is_denser_than_patents() {
        let o = orkut();
        let p = patents();
        assert!(o.graph.avg_degree() > p.graph.avg_degree());
    }

    #[test]
    fn power_law_standins_are_skewed() {
        for d in [wiki_vote(), livejournal(), orkut()] {
            assert_eq!(d.kind, DatasetKind::PowerLaw);
            assert!(
                d.graph.max_degree() as f64 > 4.0 * d.graph.avg_degree(),
                "{} should have a heavy-tailed degree distribution",
                d.name
            );
        }
    }

    #[test]
    fn tiny_datasets_are_small() {
        for d in tiny_datasets() {
            assert!(d.graph.num_vertices() <= 500);
        }
    }
}
