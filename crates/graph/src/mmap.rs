//! Memory-mapped and shared read-only storage for graph arrays.
//!
//! This module is the **only** place in the crate that owns storage
//! `unsafe`: the raw `mmap`/`munmap` FFI, the lifetime of mapped regions,
//! and the reinterpretation of raw bytes as typed slices. Everything above
//! it ([`crate::csr::CsrGraph`], [`crate::io`]) works with two safe
//! abstractions:
//!
//! * [`Region`] — an immutable byte region backed either by a memory-mapped
//!   file (zero-copy, on 64-bit Unix) or by an 8-byte-aligned heap buffer
//!   (the portable fallback, used on other targets and for whole-file
//!   reads). Mapped regions are unmapped when the last reference drops.
//! * [`MappedSlice<T>`] / [`SharedSlice<T>`] — a typed view into a
//!   [`Region`] (alignment- and bounds-checked at construction) and the
//!   owned-or-mapped storage enum the CSR arrays use, so a graph loaded
//!   with [`crate::io::load_binary_mmap`] is a *view* over the file while a
//!   built graph owns plain `Vec`s — behind one `&[T]` interface.
//!
//! Safety argument for the byte→typed reinterpretation: views are limited
//! to [`Pod`] element types (every bit pattern valid, no padding, no drop),
//! the constructor verifies alignment and bounds, regions are immutable and
//! private (`MAP_PRIVATE`) for their whole lifetime, and each view keeps
//! its region alive through an [`Arc`].

use std::fmt;
use std::fs::File;
use std::io;
use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Marker for element types that any byte pattern validly inhabits.
///
/// Sealed: implemented exactly for the primitive array element types the
/// binary graph format uses.
pub trait Pod: Copy + Send + Sync + 'static + private::Sealed {}

mod private {
    /// Seals [`super::Pod`].
    pub trait Sealed {}
}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(impl private::Sealed for $t {})*
        $(impl Pod for $t {})*
    };
}
impl_pod!(u8, u32, u64, usize);

#[cfg(all(unix, target_pointer_width = "64"))]
mod ffi {
    //! Minimal `mmap`/`munmap` declarations (the container has no `libc`
    //! crate; these link against the platform libc that `std` already
    //! pulls in).
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// Backing storage of a [`Region`].
enum RegionStorage {
    /// A read-only file mapping; unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
    /// A heap buffer. `u64` elements guarantee 8-byte alignment so every
    /// [`Pod`] view type is alignable; `len` is the real byte length (the
    /// last word may be padding).
    Heap { words: Vec<u64>, len: usize },
}

// SAFETY: the mapped pointer references immutable, private memory for the
// lifetime of the region; the heap variant is an ordinary Vec.
unsafe impl Send for RegionStorage {}
// SAFETY: the region is never mutated after construction.
unsafe impl Sync for RegionStorage {}

/// An immutable byte region: a zero-copy file mapping where supported, or
/// an aligned heap buffer elsewhere.
pub struct Region {
    storage: RegionStorage,
}

impl Region {
    /// Memory-maps `path` read-only (zero-copy). On targets without the
    /// mapping fast path (non-Unix, or 32-bit, where `u64` offsets cannot
    /// be reinterpreted as `usize`), falls back to [`Region::read`].
    pub fn map<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            Self::map_unix(path.as_ref())
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            Self::read(path)
        }
    }

    /// Reads `path` entirely into an aligned heap region.
    pub fn read<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        use std::io::Read;
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large"))?;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: a u64 buffer is validly viewable as initialised bytes of
        // the same allocation; the slice stays within the Vec.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(bytes)?;
        Ok(Self {
            storage: RegionStorage::Heap { words, len },
        })
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn map_unix(path: &Path) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large"))?;
        if len == 0 {
            // mmap rejects zero-length mappings; an empty heap region is
            // equivalent (no bytes to view).
            return Ok(Self {
                storage: RegionStorage::Heap {
                    words: Vec::new(),
                    len: 0,
                },
            });
        }
        // SAFETY: len > 0, the fd is open for reading, and we request a
        // private read-only mapping the kernel fully owns; failure is
        // reported through MAP_FAILED which we turn into an io::Error.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::map_failed() {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            storage: RegionStorage::Mapped {
                ptr: ptr.cast_const().cast(),
                len,
            },
        })
    }

    /// Whether this region is a zero-copy file mapping.
    pub fn is_mapped(&self) -> bool {
        match &self.storage {
            #[cfg(all(unix, target_pointer_width = "64"))]
            RegionStorage::Mapped { .. } => true,
            RegionStorage::Heap { .. } => false,
        }
    }

    /// The region's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.storage {
            #[cfg(all(unix, target_pointer_width = "64"))]
            RegionStorage::Mapped { ptr, len } => {
                // SAFETY: the mapping is live for &self, readable and never
                // written (PROT_READ + MAP_PRIVATE).
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            RegionStorage::Heap { words, len } => {
                // SAFETY: in-bounds view of initialised Vec memory.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
        }
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let RegionStorage::Mapped { ptr, len } = &self.storage {
            // SAFETY: the pointer/length pair came from a successful mmap
            // and is unmapped exactly once.
            unsafe {
                ffi::munmap((*ptr).cast_mut().cast(), *len);
            }
        }
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Region")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A typed, alignment-checked view into a shared [`Region`].
pub struct MappedSlice<T: Pod> {
    region: Arc<Region>,
    byte_offset: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Pod> MappedSlice<T> {
    /// Creates a view of `len` elements of `T` starting `byte_offset` bytes
    /// into `region`. Fails when the range is out of bounds or the start is
    /// not aligned for `T`.
    pub fn new(region: Arc<Region>, byte_offset: usize, len: usize) -> Result<Self, String> {
        let bytes = region.bytes();
        let elem = std::mem::size_of::<T>();
        let end = len
            .checked_mul(elem)
            .and_then(|b| b.checked_add(byte_offset));
        match end {
            Some(end) if end <= bytes.len() => {}
            _ => {
                return Err(format!(
                    "slice of {len} x {elem}B at offset {byte_offset} exceeds region of {}B",
                    bytes.len()
                ))
            }
        }
        let addr = bytes.as_ptr() as usize + byte_offset;
        if addr % std::mem::align_of::<T>() != 0 {
            return Err(format!(
                "slice at offset {byte_offset} is not {}-byte aligned",
                std::mem::align_of::<T>()
            ));
        }
        Ok(Self {
            region,
            byte_offset,
            len,
            _marker: PhantomData,
        })
    }

    /// The viewed elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: bounds and alignment were verified in `new`, the region
        // is immutable and outlives `self` via the Arc, and T is Pod so any
        // byte content is a valid value.
        unsafe {
            std::slice::from_raw_parts(
                self.region.bytes().as_ptr().add(self.byte_offset).cast(),
                self.len,
            )
        }
    }
}

impl<T: Pod> Clone for MappedSlice<T> {
    fn clone(&self) -> Self {
        Self {
            region: Arc::clone(&self.region),
            byte_offset: self.byte_offset,
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for MappedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Owned-or-mapped read-only storage: `Vec<T>` for built graphs, a region
/// view for memory-mapped ones, behind one `&[T]` interface.
#[derive(Clone)]
pub enum SharedSlice<T: Pod> {
    /// Heap-owned storage.
    Owned(Vec<T>),
    /// A view into a shared (usually memory-mapped) region.
    Mapped(MappedSlice<T>),
}

impl<T: Pod> SharedSlice<T> {
    /// Whether the storage is a region view (vs an owned `Vec`).
    pub fn is_mapped(&self) -> bool {
        matches!(self, SharedSlice::Mapped(_))
    }
}

impl<T: Pod> Deref for SharedSlice<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            SharedSlice::Owned(v) => v,
            SharedSlice::Mapped(m) => m.as_slice(),
        }
    }
}

impl<T: Pod> From<Vec<T>> for SharedSlice<T> {
    fn from(v: Vec<T>) -> Self {
        SharedSlice::Owned(v)
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Lets several threads write **disjoint** index sets of one slice without
/// locking — the primitive behind the parallel CSR builder's scattered
/// neighbor-placement pass (each thread owns a disjoint set of cursor
/// ranges computed by the prefix-sum phase, so no index is ever written
/// twice).
///
/// The unsafety is confined to [`DisjointWriter::write`]; the contiguous
/// passes of the builder use safe `split_at_mut` partitioning instead.
pub(crate) struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the writer only allows writes, callers guarantee index
// disjointness across threads, and T: Send means values may be produced on
// any thread.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a slice for disjoint multi-threaded writes; the exclusive
    /// borrow guarantees no concurrent readers exist for the writer's
    /// lifetime.
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Writes `value` at `idx`.
    ///
    /// # Safety
    /// `idx` must be in bounds and no other thread may read or write `idx`
    /// during the writer's lifetime.
    #[inline]
    pub(crate) unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("graphpi_mmap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn mapped_region_round_trips_bytes() {
        let data: Vec<u8> = (0..=255).collect();
        let path = temp_file("roundtrip.bin", &data);
        let region = Region::map(&path).unwrap();
        assert_eq!(region.bytes(), &data[..]);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(region.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_region_matches_mapped() {
        let data = b"graphpi heap region test".to_vec();
        let path = temp_file("heap.bin", &data);
        let heap = Region::read(&path).unwrap();
        assert!(!heap.is_mapped());
        assert_eq!(heap.bytes(), Region::map(&path).unwrap().bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_views_check_alignment_and_bounds() {
        let words: Vec<u64> = vec![0x0101010101010101, 0x0202020202020202];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let path = temp_file("typed.bin", &bytes);
        let region = Arc::new(Region::map(&path).unwrap());

        let v64 = MappedSlice::<u64>::new(Arc::clone(&region), 0, 2).unwrap();
        assert_eq!(v64.as_slice(), &words[..]);
        let v32 = MappedSlice::<u32>::new(Arc::clone(&region), 8, 2).unwrap();
        assert_eq!(v32.as_slice(), &[0x02020202, 0x02020202]);

        // Out of bounds and misaligned views are rejected.
        assert!(MappedSlice::<u64>::new(Arc::clone(&region), 0, 3).is_err());
        assert!(MappedSlice::<u64>::new(Arc::clone(&region), 12, 1).is_err());
        assert!(MappedSlice::<u32>::new(Arc::clone(&region), 2, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_slice_owned_and_mapped_agree() {
        let values: Vec<u32> = (0..64).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let path = temp_file("shared.bin", &bytes);
        let region = Arc::new(Region::map(&path).unwrap());
        let mapped = SharedSlice::Mapped(MappedSlice::<u32>::new(region, 0, 64).unwrap());
        let owned: SharedSlice<u32> = values.clone().into();
        assert_eq!(&*mapped, &*owned);
        assert!(mapped.is_mapped());
        assert!(!owned.is_mapped());
        // Clones share the region and stay valid after the original drops.
        let clone = mapped.clone();
        drop(mapped);
        assert_eq!(&*clone, &values[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_region() {
        let path = temp_file("empty.bin", &[]);
        let region = Region::map(&path).unwrap();
        assert!(region.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
