//! Incremental construction of [`CsrGraph`]s from arbitrary edge lists.
//!
//! Two construction paths produce **bit-identical** graphs:
//!
//! * a serial path (normalise → sort → dedup → counting sort), used for
//!   small inputs, and
//! * a parallel path ([`build_from_edge_slice`]) that scales ingest to the
//!   paper's dataset sizes: per-thread degree counting over contiguous
//!   edge chunks, a prefix-sum phase that turns the per-thread counts into
//!   disjoint placement cursors, scattered neighbor placement through
//!   `mmap::DisjointWriter`, and per-vertex-range parallel
//!   sort/dedup (+ compaction when duplicates were dropped).
//!
//! Both accept edges in any order, with either endpoint first, with
//! duplicates and with self loops; the result is a *simple* undirected
//! graph with sorted adjacency lists. Because the final CSR is canonical
//! (sorted, deduplicated), the output does not depend on the thread count
//! — the equality tests below and the loader round-trip tests rely on
//! this.
//!
//! Construction is a one-shot batch job that happens before any engine
//! exists, so the parallel path uses `std::thread::scope` directly rather
//! than the engine's persistent worker pool (which lives in a higher-level
//! crate).

use crate::csr::{CsrGraph, VertexId};
use crate::mmap::DisjointWriter;
use std::ops::Range;

/// Raw-edge count below which [`GraphBuilder::build`] stays serial (thread
/// orchestration would cost more than it saves).
const PARALLEL_BUILD_THRESHOLD: usize = 1 << 15;

/// Cap on builder threads: bounds the `threads × |V|` scratch (per-thread
/// degree and cursor arrays) while covering the core counts the paper's
/// evaluation uses.
const MAX_BUILD_THREADS: usize = 16;

/// Builds a [`CsrGraph`] from an edge list.
///
/// The builder accepts edges in any order, with either endpoint first, with
/// duplicates and with self loops; the resulting graph is a *simple*
/// undirected graph (self loops dropped, parallel edges collapsed) whose
/// adjacency lists are sorted — the invariants the matching engine relies
/// on for merge intersections. Large edge lists are built in parallel (see
/// [`build_from_edge_slice`]); the result is identical either way.
///
/// ```
/// use graphpi_graph::GraphBuilder;
/// let g = GraphBuilder::new()
///     .edges([(0, 1), (1, 0), (1, 1), (2, 1)])
///     .build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2); // (0,1) deduplicated, (1,1) dropped
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the graph has at least `n` vertices even if some of them end
    /// up isolated.
    pub fn num_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds a single undirected edge.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many undirected edges.
    pub fn edges<I>(mut self, iter: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        self.edges.extend(iter);
        self
    }

    /// Adds a single edge in place (non-consuming variant used by loaders
    /// and generators).
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of raw (possibly duplicate) edges currently buffered.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into a [`CsrGraph`], building in parallel when
    /// the edge list is large enough to amortise thread orchestration.
    pub fn build(self) -> CsrGraph {
        let threads = if self.edges.len() >= PARALLEL_BUILD_THRESHOLD {
            0 // auto
        } else {
            1
        };
        build_from_edge_slice(&self.edges, self.min_vertices, threads)
    }

    /// Finalizes with an explicit thread count (0 = all cores, 1 = serial).
    pub fn build_with_threads(self, threads: usize) -> CsrGraph {
        build_from_edge_slice(&self.edges, self.min_vertices, threads)
    }
}

/// Builds a CSR graph from a raw edge slice with `threads` workers
/// (0 = all available cores, 1 = serial). Output is identical for every
/// thread count.
pub fn build_from_edge_slice(
    edges: &[(VertexId, VertexId)],
    min_vertices: usize,
    threads: usize,
) -> CsrGraph {
    let threads = resolve_threads(threads, edges.len());
    if threads <= 1 {
        build_csr_serial(edges, min_vertices)
    } else {
        build_csr_parallel(edges, min_vertices, threads)
    }
}

fn resolve_threads(requested: usize, num_edges: usize) -> usize {
    if requested > 0 {
        // An explicit request is honored (capped): callers like the
        // loading bench and the equality tests rely on `threads >= 2`
        // actually taking the parallel code path.
        return requested.min(MAX_BUILD_THREADS);
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Auto mode: below ~16k edges per extra thread the fork/join overhead
    // dominates, so small inputs stay serial.
    hw.min(MAX_BUILD_THREADS).min(num_edges / (1 << 14)).max(1)
}

/// Serial reference construction: normalise, sort, dedup, counting sort.
fn build_csr_serial(raw: &[(VertexId, VertexId)], min_vertices: usize) -> CsrGraph {
    // Determine vertex count.
    let mut n = min_vertices;
    for &(u, v) in raw {
        n = n.max(u as usize + 1).max(v as usize + 1);
    }

    // Normalise: drop self loops, order endpoints, dedup.
    let mut edges: Vec<(VertexId, VertexId)> = raw
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
        .collect();
    edges.sort_unstable();
    edges.dedup();

    // Counting sort into CSR.
    let mut degree = vec![0usize; n];
    for &(u, v) in &edges {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let mut offsets = vec![0usize; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0 as VertexId; offsets[n]];
    for &(u, v) in &edges {
        neighbors[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        neighbors[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    // Each adjacency list must be sorted; since edges were processed in
    // lexicographic order, the `u`-side entries are already sorted, but the
    // `v`-side entries may not be, so sort every slice.
    for v in 0..n {
        neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
    }
    CsrGraph::from_raw_parts(offsets, neighbors)
}

/// Splits `0..len` into `parts` near-equal contiguous ranges.
fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    (0..parts)
        .map(|k| (len * k / parts)..(len * (k + 1) / parts))
        .collect()
}

/// Splits the vertex space into `parts` contiguous ranges of roughly equal
/// total degree (so the sort/dedup pass is load-balanced on skewed graphs).
fn balanced_vertex_ranges(offsets: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 1..=parts {
        let end = if k == parts {
            n
        } else {
            let target = total * k / parts;
            offsets.partition_point(|&o| o < target).min(n).max(start)
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Removes consecutive duplicates from a sorted row in place, returning the
/// deduplicated length.
fn dedup_sorted_row(row: &mut [VertexId]) -> usize {
    if row.is_empty() {
        return 0;
    }
    let mut write = 1usize;
    for read in 1..row.len() {
        if row[read] != row[write - 1] {
            row[write] = row[read];
            write += 1;
        }
    }
    write
}

/// Parallel CSR construction (see the module docs for the phase diagram).
fn build_csr_parallel(
    raw: &[(VertexId, VertexId)],
    min_vertices: usize,
    threads: usize,
) -> CsrGraph {
    let chunks = chunk_ranges(raw.len(), threads);

    // Phase 1 — vertex count: parallel max over edge chunks.
    let n = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|r| {
                let chunk = &raw[r.clone()];
                s.spawn(move || {
                    chunk.iter().fold(0usize, |m, &(u, v)| {
                        m.max(u as usize + 1).max(v as usize + 1)
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("builder worker panicked"))
            .fold(min_vertices, usize::max)
    });

    // Phase 2 — per-thread degree counting (self loops dropped here and in
    // placement; duplicate edges counted now, collapsed by dedup below).
    let degs: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|r| {
                let chunk = &raw[r.clone()];
                s.spawn(move || {
                    let mut deg = vec![0u32; n];
                    for &(u, v) in chunk {
                        if u != v {
                            deg[u as usize] += 1;
                            deg[v as usize] += 1;
                        }
                    }
                    deg
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("builder worker panicked"))
            .collect()
    });

    // Phase 3 — prefix-sum offsets plus per-thread placement cursors:
    // thread t's cursor for vertex v starts after the entries of threads
    // 0..t, making every (thread, vertex) write range disjoint.
    let mut offsets = vec![0usize; n + 1];
    let mut cursors: Vec<Vec<usize>> = (0..threads).map(|_| vec![0usize; n]).collect();
    for v in 0..n {
        let mut run = offsets[v];
        for (t, deg) in degs.iter().enumerate() {
            cursors[t][v] = run;
            run += deg[v] as usize;
        }
        offsets[v + 1] = run;
    }
    drop(degs);

    // Phase 4 — scattered placement into the shared neighbor array.
    let mut neighbors = vec![0 as VertexId; offsets[n]];
    {
        let writer = DisjointWriter::new(&mut neighbors);
        let writer = &writer;
        std::thread::scope(|s| {
            for (r, mut cursor) in chunks.iter().zip(std::mem::take(&mut cursors)) {
                let chunk = &raw[r.clone()];
                s.spawn(move || {
                    for &(u, v) in chunk {
                        if u != v {
                            // SAFETY: every (thread, vertex) cursor range is
                            // disjoint by the phase-3 prefix sums, so no two
                            // threads ever touch the same index, and nothing
                            // reads `neighbors` until the scope joins.
                            unsafe {
                                writer.write(cursor[u as usize], v);
                                writer.write(cursor[v as usize], u);
                            }
                            cursor[u as usize] += 1;
                            cursor[v as usize] += 1;
                        }
                    }
                });
            }
        });
    }

    // Phase 5 — per-range sort + dedup. Vertex ranges are contiguous, so
    // the rows they own partition `neighbors` into contiguous mut slices.
    let ranges = balanced_vertex_ranges(&offsets, threads);
    let mut lens = vec![0usize; n];
    std::thread::scope(|s| {
        let mut rest_rows: &mut [VertexId] = &mut neighbors;
        let mut rest_lens: &mut [usize] = &mut lens;
        let mut consumed = 0usize;
        for range in &ranges {
            let row_bytes = offsets[range.end] - consumed;
            let (rows, tail) = rest_rows.split_at_mut(row_bytes);
            rest_rows = tail;
            let (lens_part, tail) = rest_lens.split_at_mut(range.len());
            rest_lens = tail;
            consumed = offsets[range.end];
            let offsets = &offsets;
            let base = offsets[range.start];
            let range = range.clone();
            s.spawn(move || {
                for (i, v) in range.clone().enumerate() {
                    let row = &mut rows[offsets[v] - base..offsets[v + 1] - base];
                    row.sort_unstable();
                    lens_part[i] = dedup_sorted_row(row);
                }
            });
        }
    });

    // Phase 6 — compaction: only needed when dedup dropped entries.
    let mut final_offsets = vec![0usize; n + 1];
    for v in 0..n {
        final_offsets[v + 1] = final_offsets[v] + lens[v];
    }
    if final_offsets[n] == offsets[n] {
        return CsrGraph::from_raw_parts(final_offsets, neighbors);
    }
    let mut compacted = vec![0 as VertexId; final_offsets[n]];
    std::thread::scope(|s| {
        let mut rest: &mut [VertexId] = &mut compacted;
        let mut consumed = 0usize;
        for range in &ranges {
            let part_len = final_offsets[range.end] - consumed;
            let (part, tail) = rest.split_at_mut(part_len);
            rest = tail;
            consumed = final_offsets[range.end];
            let neighbors = &neighbors;
            let offsets = &offsets;
            let final_offsets = &final_offsets;
            let lens = &lens;
            let base = final_offsets[range.start];
            let range = range.clone();
            s.spawn(move || {
                for v in range {
                    let src = &neighbors[offsets[v]..offsets[v] + lens[v]];
                    part[final_offsets[v] - base..final_offsets[v + 1] - base].copy_from_slice(src);
                }
            });
        }
    });
    CsrGraph::from_raw_parts(final_offsets, compacted)
}

/// Convenience helper: builds a graph straight from an edge slice.
pub fn from_edges(edges: &[(VertexId, VertexId)]) -> CsrGraph {
    GraphBuilder::new().edges(edges.iter().copied()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)])
            .build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn isolated_vertices_preserved() {
        let g = GraphBuilder::new().num_vertices(5).edge(0, 1).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_sorted() {
        let g = from_edges(&[(3, 0), (3, 2), (3, 1), (0, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2]);
        assert_eq!(g.neighbors(0), &[2, 3]);
    }

    #[test]
    fn push_edge_in_place() {
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.push_edge(i, (i + 1) % 10);
        }
        assert_eq!(b.raw_edge_count(), 10);
        let g = b.build();
        assert_eq!(g.num_edges(), 10);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    /// Deterministic pseudo-random edge list with duplicates, reversed
    /// duplicates and self loops mixed in.
    fn messy_edges(count: usize, n: u32, seed: u64) -> Vec<(VertexId, VertexId)> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let u = (next() % n as u64) as VertexId;
            let v = (next() % n as u64) as VertexId;
            edges.push((u, v));
            if next() % 4 == 0 {
                edges.push((v, u)); // reversed duplicate
            }
            if next() % 7 == 0 {
                edges.push((u, u)); // self loop
            }
        }
        edges
    }

    #[test]
    fn parallel_build_matches_serial_exactly() {
        for (count, n, seed) in [(500usize, 40u32, 1u64), (5_000, 300, 2), (20_000, 1_000, 3)] {
            let edges = messy_edges(count, n, seed);
            let serial = build_from_edge_slice(&edges, 0, 1);
            for threads in [2, 3, 4, 8] {
                let parallel = build_csr_parallel(&edges, 0, threads);
                assert_eq!(serial, parallel, "count={count} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_build_respects_min_vertices() {
        let edges = messy_edges(2_000, 50, 9);
        let serial = build_from_edge_slice(&edges, 200, 1);
        let parallel = build_csr_parallel(&edges, 200, 4);
        assert_eq!(serial.num_vertices(), 200);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_build_handles_duplicate_heavy_input() {
        // Every edge appears many times: the dedup/compaction path must run.
        let mut edges = Vec::new();
        for _ in 0..50 {
            for u in 0..40u32 {
                for v in (u + 1)..40 {
                    edges.push((u, v));
                }
            }
        }
        let serial = build_from_edge_slice(&edges, 0, 1);
        let parallel = build_csr_parallel(&edges, 0, 4);
        assert_eq!(serial, parallel);
        assert_eq!(parallel.num_edges(), (40 * 39) / 2);
    }

    #[test]
    fn thread_resolution_is_bounded() {
        assert_eq!(resolve_threads(1, 1 << 20), 1);
        assert!(resolve_threads(0, 1 << 20) >= 1);
        assert!(resolve_threads(64, 1 << 30) <= MAX_BUILD_THREADS);
        // Explicit requests take the parallel path even on small inputs
        // (benches and agreement tests depend on this)…
        assert_eq!(resolve_threads(8, 100), 8);
        // …while auto mode keeps small inputs serial.
        assert_eq!(resolve_threads(0, 100), 1);
    }

    #[test]
    fn balanced_ranges_cover_and_balance() {
        let offsets = vec![0usize, 100, 100, 110, 400, 420, 500];
        let ranges = balanced_vertex_ranges(&offsets, 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 6);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
