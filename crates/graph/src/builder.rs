//! Incremental construction of [`CsrGraph`]s from arbitrary edge lists.

use crate::csr::{CsrGraph, VertexId};

/// Builds a [`CsrGraph`] from an edge list.
///
/// The builder accepts edges in any order, with either endpoint first, with
/// duplicates and with self loops; the resulting graph is a *simple*
/// undirected graph (self loops dropped, parallel edges collapsed) whose
/// adjacency lists are sorted — the invariants the matching engine relies
/// on for merge intersections.
///
/// ```
/// use graphpi_graph::GraphBuilder;
/// let g = GraphBuilder::new()
///     .edges([(0, 1), (1, 0), (1, 1), (2, 1)])
///     .build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2); // (0,1) deduplicated, (1,1) dropped
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the graph has at least `n` vertices even if some of them end
    /// up isolated.
    pub fn num_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds a single undirected edge.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many undirected edges.
    pub fn edges<I>(mut self, iter: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        self.edges.extend(iter);
        self
    }

    /// Adds a single edge in place (non-consuming variant used by loaders
    /// and generators).
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of raw (possibly duplicate) edges currently buffered.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into a [`CsrGraph`].
    pub fn build(self) -> CsrGraph {
        build_csr(self.edges, self.min_vertices)
    }
}

/// Builds a CSR graph from a raw edge list; shared by the builder and tests.
fn build_csr(raw: Vec<(VertexId, VertexId)>, min_vertices: usize) -> CsrGraph {
    // Determine vertex count.
    let mut n = min_vertices;
    for &(u, v) in &raw {
        n = n.max(u as usize + 1).max(v as usize + 1);
    }

    // Normalise: drop self loops, order endpoints, dedup.
    let mut edges: Vec<(VertexId, VertexId)> = raw
        .into_iter()
        .filter(|&(u, v)| u != v)
        .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
        .collect();
    edges.sort_unstable();
    edges.dedup();

    // Counting sort into CSR.
    let mut degree = vec![0usize; n];
    for &(u, v) in &edges {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let mut offsets = vec![0usize; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0 as VertexId; offsets[n]];
    for &(u, v) in &edges {
        neighbors[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        neighbors[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    // Each adjacency list must be sorted; since edges were processed in
    // lexicographic order, the `u`-side entries are already sorted, but the
    // `v`-side entries may not be, so sort every slice.
    for v in 0..n {
        neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
    }
    CsrGraph::from_raw_parts(offsets, neighbors)
}

/// Convenience helper: builds a graph straight from an edge slice.
pub fn from_edges(edges: &[(VertexId, VertexId)]) -> CsrGraph {
    GraphBuilder::new().edges(edges.iter().copied()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)])
            .build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn isolated_vertices_preserved() {
        let g = GraphBuilder::new().num_vertices(5).edge(0, 1).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_sorted() {
        let g = from_edges(&[(3, 0), (3, 2), (3, 1), (0, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2]);
        assert_eq!(g.neighbors(0), &[2, 3]);
    }

    #[test]
    fn push_edge_in_place() {
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.push_edge(i, (i + 1) % 10);
        }
        assert_eq!(b.raw_edge_count(), 10);
        let g = b.build();
        assert_eq!(g.num_edges(), 10);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }
}
