//! k-core decomposition and degeneracy ordering.
//!
//! The degeneracy ordering is the standard preprocessing step for clique
//! counting and dense-pattern matching: orienting the search from low-core
//! vertices bounds the candidate sets by the degeneracy instead of the
//! maximum degree. GraphPi itself does not need it (its schedules are
//! pattern-side), but the benchmark harness and examples use the core
//! numbers to characterise the stand-in datasets, and the ablation
//! experiments use degeneracy-ordered task generation as an alternative
//! outer-loop order.

use crate::csr::{CsrGraph, VertexId};

/// Result of a k-core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` is the core number of vertex `v`.
    pub core_numbers: Vec<u32>,
    /// Vertices in degeneracy order (peeling order: smallest remaining
    /// degree first).
    pub degeneracy_order: Vec<VertexId>,
    /// The graph's degeneracy (maximum core number; 0 for edgeless graphs).
    pub degeneracy: u32,
}

/// Computes core numbers and a degeneracy ordering with the linear-time
/// bucket peeling algorithm (Batagelj–Zaveršnik).
pub fn core_decomposition(graph: &CsrGraph) -> CoreDecomposition {
    let n = graph.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            core_numbers: Vec::new(),
            degeneracy_order: Vec::new(),
            degeneracy: 0,
        };
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v as VertexId)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by current degree.
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for bin in bins.iter_mut().take(max_degree + 1) {
        let count = *bin;
        *bin = start;
        start += count;
    }
    let mut positions = vec![0usize; n]; // position of vertex in `order`
    let mut order = vec![0 as VertexId; n]; // vertices sorted by degree
    for v in 0..n {
        positions[v] = bins[degree[v]];
        order[positions[v]] = v as VertexId;
        bins[degree[v]] += 1;
    }
    // Restore bin starts.
    for d in (1..=max_degree).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;

    let mut core_numbers = vec![0u32; n];
    let mut degeneracy = 0u32;
    let mut degeneracy_order = Vec::with_capacity(n);
    for i in 0..n {
        let v = order[i];
        let vd = degree[v as usize];
        core_numbers[v as usize] = vd as u32;
        degeneracy = degeneracy.max(vd as u32);
        degeneracy_order.push(v);
        for &u in graph.neighbors(v) {
            let u = u as usize;
            if degree[u] > vd {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket boundary.
                let du = degree[u];
                let pu = positions[u];
                let pw = bins[du];
                let w = order[pw];
                if u as u32 != w {
                    order.swap(pu, pw);
                    positions[u] = pw;
                    positions[w as usize] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    CoreDecomposition {
        core_numbers,
        degeneracy_order,
        degeneracy,
    }
}

/// Returns the subgraph induced by the vertices with core number `>= k`
/// (the k-core), as a new graph over re-labeled dense vertex ids, together
/// with the mapping from new ids back to original ids.
pub fn k_core(graph: &CsrGraph, k: u32) -> (CsrGraph, Vec<VertexId>) {
    let decomposition = core_decomposition(graph);
    let keep: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| decomposition.core_numbers[v as usize] >= k)
        .collect();
    let mut new_id = vec![u32::MAX; graph.num_vertices()];
    for (i, &v) in keep.iter().enumerate() {
        new_id[v as usize] = i as u32;
    }
    let mut builder = crate::builder::GraphBuilder::new().num_vertices(keep.len());
    for &v in &keep {
        for &u in graph.neighbors(v) {
            if u > v && new_id[u as usize] != u32::MAX {
                builder.push_edge(new_id[v as usize], new_id[u as usize]);
            }
        }
    }
    (builder.build(), keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators;

    #[test]
    fn complete_graph_core_numbers() {
        let g = generators::complete(6);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 5);
        assert!(d.core_numbers.iter().all(|&c| c == 5));
        assert_eq!(d.degeneracy_order.len(), 6);
    }

    #[test]
    fn path_and_cycle_cores() {
        let path = generators::path(10);
        assert_eq!(core_decomposition(&path).degeneracy, 1);
        let cycle = generators::cycle(10);
        let d = core_decomposition(&cycle);
        assert_eq!(d.degeneracy, 2);
        assert!(d.core_numbers.iter().all(|&c| c == 2));
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 plus tail 2-3-4: the triangle is the 2-core, the
        // tail vertices have core number 1.
        let g = from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let d = core_decomposition(&g);
        assert_eq!(d.core_numbers[0], 2);
        assert_eq!(d.core_numbers[1], 2);
        assert_eq!(d.core_numbers[2], 2);
        assert_eq!(d.core_numbers[3], 1);
        assert_eq!(d.core_numbers[4], 1);
        assert_eq!(d.degeneracy, 2);

        let (core2, mapping) = k_core(&g, 2);
        assert_eq!(core2.num_vertices(), 3);
        assert_eq!(core2.num_edges(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
    }

    #[test]
    fn degeneracy_order_is_a_permutation_and_respects_peeling() {
        let g = generators::power_law(500, 4, 5);
        let d = core_decomposition(&g);
        let mut sorted = d.degeneracy_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500u32).collect::<Vec<_>>());
        // Peeling property: when a vertex is peeled, at most `degeneracy`
        // of its neighbors come later in the order.
        let position: Vec<usize> = {
            let mut pos = vec![0usize; 500];
            for (i, &v) in d.degeneracy_order.iter().enumerate() {
                pos[v as usize] = i;
            }
            pos
        };
        for v in g.vertices() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| position[u as usize] > position[v as usize])
                .count();
            assert!(later as u32 <= d.degeneracy);
        }
    }

    #[test]
    fn empty_graph_and_isolated_vertices() {
        let g = crate::GraphBuilder::new().num_vertices(5).build();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.core_numbers, vec![0; 5]);
        let empty = crate::GraphBuilder::new().build();
        assert_eq!(core_decomposition(&empty).degeneracy_order.len(), 0);
    }

    #[test]
    fn k_core_of_high_k_is_empty() {
        let g = generators::cycle(8);
        let (core, mapping) = k_core(&g, 3);
        assert_eq!(core.num_vertices(), 0);
        assert!(mapping.is_empty());
    }
}
