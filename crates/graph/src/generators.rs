//! Seeded synthetic graph generators.
//!
//! The paper evaluates on six real-world graphs (Table I). Those datasets
//! are not redistributable here, so the benchmark harness uses these
//! generators to produce stand-ins with controlled size, degree skew and
//! triangle density (see `DESIGN.md`, Section 2). All generators are
//! deterministic given a seed.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi style G(n, m): `m` distinct undirected edges sampled
/// uniformly at random among the `n(n-1)/2` possible ones.
///
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} are possible for n={n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::new().num_vertices(n);
    while seen.len() < m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.push_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Power-law graph by preferential attachment (Barabási–Albert style).
///
/// Starts from a small clique of `m_per_vertex + 1` vertices and attaches
/// every new vertex to `m_per_vertex` existing vertices chosen proportional
/// to their current degree. The result has roughly `n * m_per_vertex` edges,
/// a heavy-tailed degree distribution, and a realistic triangle density —
/// the two properties (degree skew and clustering) that drive GraphPi's
/// performance model.
pub fn power_law(n: usize, m_per_vertex: usize, seed: u64) -> CsrGraph {
    assert!(m_per_vertex >= 1, "m_per_vertex must be at least 1");
    assert!(
        n > m_per_vertex,
        "need more vertices ({n}) than edges per vertex ({m_per_vertex})"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new().num_vertices(n);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is sampling proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_per_vertex);

    let core = m_per_vertex + 1;
    for u in 0..core {
        for v in (u + 1)..core {
            builder.push_edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    for v in core..n {
        let v = v as VertexId;
        // Deterministic ordered container: iteration order must not depend
        // on hash seeds, otherwise the generator would not be reproducible.
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m_per_vertex);
        // Mix preferential attachment with a small uniform component so the
        // graph stays connected and not overly star-like.
        while chosen.len() < m_per_vertex {
            let target = if rng.gen_bool(0.9) && !endpoints.is_empty() {
                endpoints[rng.gen_range(0..endpoints.len())]
            } else {
                rng.gen_range(0..v)
            };
            if target != v && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &t in &chosen {
            builder.push_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Complete graph K_n.
pub fn complete(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new().num_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            builder.push_edge(u as VertexId, v as VertexId);
        }
    }
    builder.build()
}

/// Simple cycle C_n (requires `n >= 3`).
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut builder = GraphBuilder::new().num_vertices(n);
    for u in 0..n {
        builder.push_edge(u as VertexId, ((u + 1) % n) as VertexId);
    }
    builder.build()
}

/// Path P_n with `n` vertices and `n - 1` edges.
pub fn path(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new().num_vertices(n);
    for u in 1..n {
        builder.push_edge((u - 1) as VertexId, u as VertexId);
    }
    builder.build()
}

/// Star S_n: vertex 0 connected to vertices `1..n`.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 1);
    let mut builder = GraphBuilder::new().num_vertices(n);
    for u in 1..n {
        builder.push_edge(0, u as VertexId);
    }
    builder.build()
}

/// Two-dimensional grid graph of `rows x cols` vertices.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let idx = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut builder = GraphBuilder::new().num_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.push_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                builder.push_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_requested_edges() {
        let g = erdos_renyi(100, 500, 42);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi(50, 100, 7);
        let b = erdos_renyi(50, 100, 7);
        assert_eq!(a, b);
        let c = erdos_renyi(50, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic]
    fn erdos_renyi_too_many_edges_panics() {
        let _ = erdos_renyi(4, 100, 0);
    }

    #[test]
    fn power_law_shape() {
        let g = power_law(500, 4, 1);
        assert_eq!(g.num_vertices(), 500);
        // Roughly n * m edges (the initial clique adds a few).
        assert!(g.num_edges() >= 4 * (500 - 5) as u64);
        // Heavy tail: the max degree should far exceed the average.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
        assert!(g.is_connected());
    }

    #[test]
    fn power_law_deterministic() {
        assert_eq!(power_law(200, 3, 5), power_law(200, 3, 5));
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn cycle_path_star_grid() {
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));

        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);

        let s = star(5);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.degree(0), 4);

        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), (3 * 3 + 2 * 4) as u64);
    }
}
