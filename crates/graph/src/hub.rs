//! Hub-accelerated adjacency: degree-descending relabeling plus bitset rows
//! for the high-degree core.
//!
//! Real-world degree distributions are heavily skewed (the premise of the
//! paper's Section IV-E load-balancing design), so a small set of *hub*
//! vertices participates in a disproportionate share of all neighborhood
//! intersections. [`HubGraph`] exploits that:
//!
//! 1. The graph is **relabeled in degree-descending order**, so the top-k
//!    high-degree vertices occupy ids `0..k` (hub membership is a single
//!    compare) and the hottest adjacency lists sit together in cache.
//! 2. Each hub's neighborhood is additionally stored as a **bitset row**
//!    over all vertices, so intersections *against* a hub become word-AND +
//!    popcount (hub × hub) or per-element bit probes (hub × sorted list)
//!    instead of list merges over the hub's huge adjacency.
//!
//! Embedding **counts** are invariant under relabeling (symmetry-breaking
//! restrictions compare ids, but the total over any consistent labeling is
//! the same), which the engine's agreement tests enforce. Listings are *not*
//! translated back; the hub path is a counting accelerator.

use crate::csr::{CsrGraph, VertexId};

/// Options controlling which vertices become hubs.
#[derive(Debug, Clone, Copy)]
pub struct HubOptions {
    /// Upper bound on the number of hub rows (memory: `max_hubs × |V| / 8`
    /// bytes).
    pub max_hubs: usize,
    /// Minimum degree for a vertex to qualify as a hub. Bit probes beat
    /// merges only when the hub's adjacency is large; low-degree rows would
    /// waste memory for no speedup.
    pub min_degree: usize,
}

impl Default for HubOptions {
    fn default() -> Self {
        Self {
            max_hubs: 256,
            min_degree: 32,
        }
    }
}

/// A data graph relabeled degree-descending, with bitset adjacency rows for
/// its top-k high-degree core.
#[derive(Clone, PartialEq, Eq)]
pub struct HubGraph {
    graph: CsrGraph,
    /// `new_to_old[new_id] = old_id` (informational / for diagnostics).
    new_to_old: Vec<VertexId>,
    hub_count: usize,
    words_per_row: usize,
    /// `hub_count` rows of `words_per_row` words; bit `v` of row `h` is set
    /// iff the (relabeled) edge `(h, v)` exists.
    bits: Vec<u64>,
}

impl HubGraph {
    /// Builds the hub structure: relabels `graph` in degree-descending order
    /// and materialises bitset rows for every vertex of the high-degree core
    /// selected by `options`.
    pub fn build(graph: &CsrGraph, options: HubOptions) -> Self {
        let n = graph.num_vertices();
        let order = graph.vertices_by_degree_desc();
        let mut old_to_new = vec![0 as VertexId; n];
        for (new_id, &old_id) in order.iter().enumerate() {
            old_to_new[old_id as usize] = new_id as VertexId;
        }

        // Rebuild the CSR under the new labels (adjacency re-sorted).
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(graph.num_edges() as usize * 2);
        let mut adj: Vec<VertexId> = Vec::new();
        for &old_id in &order {
            adj.clear();
            adj.extend(
                graph
                    .neighbors(old_id)
                    .iter()
                    .map(|&u| old_to_new[u as usize]),
            );
            adj.sort_unstable();
            neighbors.extend_from_slice(&adj);
            offsets.push(neighbors.len());
        }
        let relabeled = CsrGraph::from_raw_parts(offsets, neighbors);

        let hub_count = order
            .iter()
            .take(options.max_hubs)
            .filter(|&&v| graph.degree(v) >= options.min_degree.max(1))
            .count();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; hub_count * words_per_row];
        for h in 0..hub_count {
            let row = &mut bits[h * words_per_row..(h + 1) * words_per_row];
            for &v in relabeled.neighbors(h as VertexId) {
                row[(v as usize) >> 6] |= 1u64 << (v & 63);
            }
        }

        Self {
            graph: relabeled,
            new_to_old: order,
            hub_count,
            words_per_row,
            bits,
        }
    }

    /// The relabeled (degree-descending) data graph. All hub-accelerated
    /// execution runs against this graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of hub rows.
    #[inline]
    pub fn hub_count(&self) -> usize {
        self.hub_count
    }

    /// Number of `u64` words per bitset row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Whether `v` (a *relabeled* id) has a bitset row.
    #[inline]
    pub fn is_hub(&self, v: VertexId) -> bool {
        (v as usize) < self.hub_count
    }

    /// Maps a relabeled id back to the original id.
    #[inline]
    pub fn original_id(&self, new_id: VertexId) -> VertexId {
        self.new_to_old[new_id as usize]
    }

    /// The bitset row of hub `h`.
    #[inline]
    pub fn row(&self, h: VertexId) -> &[u64] {
        let h = h as usize;
        debug_assert!(h < self.hub_count);
        &self.bits[h * self.words_per_row..(h + 1) * self.words_per_row]
    }

    /// Whether hub `h` is adjacent to `v` (single bit probe).
    #[inline]
    pub fn contains(&self, h: VertexId, v: VertexId) -> bool {
        self.row(h)[(v as usize) >> 6] & (1u64 << (v & 63)) != 0
    }

    /// `|N(a) ∩ N(b)|` for two hubs, as word-AND + popcount.
    pub fn intersect_hubs_count(&self, a: VertexId, b: VertexId) -> usize {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// ANDs the rows of every hub in `hubs` into `words` (which is resized
    /// to the row width). `hubs` must be non-empty and all ids must be hubs.
    pub fn and_rows_into(&self, hubs: &[VertexId], words: &mut Vec<u64>) {
        assert!(!hubs.is_empty(), "and_rows_into requires at least one hub");
        words.clear();
        words.extend_from_slice(self.row(hubs[0]));
        for &h in &hubs[1..] {
            for (w, r) in words.iter_mut().zip(self.row(h)) {
                *w &= r;
            }
        }
    }

    /// Extracts the set bits of `words` as sorted vertex ids appended into
    /// `out` (cleared first).
    pub fn extract_bits_into(words: &[u64], out: &mut Vec<VertexId>) {
        out.clear();
        for (wi, &word) in words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push(((wi as u32) << 6) | bit);
                w &= w - 1;
            }
        }
    }

    /// Keeps only the elements of `out` adjacent to **every** hub in `hubs`
    /// (in-place bit-probe filter; no allocation).
    pub fn retain_adjacent_to_all(&self, hubs: &[VertexId], out: &mut Vec<VertexId>) {
        out.retain(|&v| hubs.iter().all(|&h| self.contains(h, v)));
    }

    /// Materialises `list ∩ N(h₁) ∩ … ∩ N(hₖ)` into `out` by probing each
    /// element of the sorted `list` against every hub row: `O(|list| · k)`
    /// regardless of the hubs' degrees.
    pub fn filter_list_into(&self, hubs: &[VertexId], list: &[VertexId], out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(
            list.iter()
                .copied()
                .filter(|&v| hubs.iter().all(|&h| self.contains(h, v))),
        );
    }

    /// Memory footprint of the bitset rows in bytes (informational).
    pub fn bitset_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }
}

impl std::fmt::Debug for HubGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HubGraph")
            .field("num_vertices", &self.graph.num_vertices())
            .field("num_edges", &self.graph.num_edges())
            .field("hub_count", &self.hub_count)
            .field("bitset_bytes", &self.bitset_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, vertex_set};

    fn hubby_graph() -> CsrGraph {
        generators::power_law(300, 6, 123)
    }

    fn small_opts() -> HubOptions {
        HubOptions {
            max_hubs: 16,
            min_degree: 4,
        }
    }

    #[test]
    fn relabeling_is_degree_descending_and_preserves_structure() {
        let g = hubby_graph();
        let hub = HubGraph::build(&g, small_opts());
        let r = hub.graph();
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        // Degrees are non-increasing in the new labeling.
        for v in 1..r.num_vertices() {
            assert!(r.degree(v as VertexId) <= r.degree((v - 1) as VertexId));
        }
        // Every relabeled edge maps back to an original edge.
        for (u, v) in r.edges() {
            assert!(g.has_edge(hub.original_id(u), hub.original_id(v)));
        }
    }

    #[test]
    fn bitset_rows_match_adjacency() {
        let g = hubby_graph();
        let hub = HubGraph::build(&g, small_opts());
        assert!(hub.hub_count() > 0);
        for h in 0..hub.hub_count() as VertexId {
            let mut from_bits = Vec::new();
            HubGraph::extract_bits_into(hub.row(h), &mut from_bits);
            assert_eq!(from_bits, hub.graph().neighbors(h));
            for v in hub.graph().vertices() {
                assert_eq!(hub.contains(h, v), hub.graph().has_edge(h, v));
            }
        }
    }

    #[test]
    fn hub_hub_intersection_matches_merge() {
        let g = hubby_graph();
        let hub = HubGraph::build(&g, small_opts());
        let k = hub.hub_count() as VertexId;
        for a in 0..k.min(6) {
            for b in 0..k.min(6) {
                let expected =
                    vertex_set::intersect_count(hub.graph().neighbors(a), hub.graph().neighbors(b));
                assert_eq!(hub.intersect_hubs_count(a, b), expected, "{a} x {b}");
            }
        }
    }

    #[test]
    fn and_extract_matches_intersect_many() {
        let g = hubby_graph();
        let hub = HubGraph::build(&g, small_opts());
        assert!(hub.hub_count() >= 3);
        let hubs = [0 as VertexId, 1, 2];
        let mut words = Vec::new();
        hub.and_rows_into(&hubs, &mut words);
        let mut got = Vec::new();
        HubGraph::extract_bits_into(&words, &mut got);
        let sets: Vec<&[VertexId]> = hubs.iter().map(|&h| hub.graph().neighbors(h)).collect();
        assert_eq!(got, vertex_set::intersect_many(&sets));
    }

    #[test]
    fn list_filter_matches_merge_intersection() {
        let g = hubby_graph();
        let hub = HubGraph::build(&g, small_opts());
        let list: Vec<VertexId> = hub.graph().neighbors(5).to_vec();
        let hubs = [0 as VertexId, 1];
        let mut out = Vec::new();
        hub.filter_list_into(&hubs, &list, &mut out);
        let expected = vertex_set::intersect_many(&[
            &list,
            hub.graph().neighbors(0),
            hub.graph().neighbors(1),
        ]);
        assert_eq!(out, expected);
        // retain variant agrees.
        let mut retained = list.clone();
        hub.retain_adjacent_to_all(&hubs, &mut retained);
        assert_eq!(retained, expected);
    }

    #[test]
    fn min_degree_and_max_hubs_cap_the_core() {
        let g = hubby_graph();
        let capped = HubGraph::build(
            &g,
            HubOptions {
                max_hubs: 3,
                min_degree: 1,
            },
        );
        assert_eq!(capped.hub_count(), 3);
        let strict = HubGraph::build(
            &g,
            HubOptions {
                max_hubs: 300,
                min_degree: usize::MAX,
            },
        );
        assert_eq!(strict.hub_count(), 0);
    }

    #[test]
    fn empty_graph_builds() {
        let g = crate::GraphBuilder::new().num_vertices(0).build();
        let hub = HubGraph::build(&g, HubOptions::default());
        assert_eq!(hub.hub_count(), 0);
        assert_eq!(hub.graph().num_vertices(), 0);
    }
}
