//! Compressed sparse row (CSR) storage for undirected, unlabeled graphs.
//!
//! The paper (Section IV-E) stores the data graph in CSR form with each
//! neighborhood sorted and contiguous in memory so that the set intersection
//! of two neighborhoods runs in `O(n + m)` and produces a sorted result.
//! [`CsrGraph`] follows that layout: a `offsets` array of length `|V| + 1`
//! and a flat `neighbors` array of length `2|E|`.

use crate::mmap::SharedSlice;
use std::fmt;

/// Identifier of a vertex in a data graph.
///
/// Vertex ids are dense (`0..num_vertices`) after construction through
/// [`crate::GraphBuilder`], which remaps arbitrary input labels.
pub type VertexId = u32;

/// An immutable undirected graph in CSR form with sorted adjacency lists.
///
/// Construct through [`crate::GraphBuilder`] (which deduplicates edges,
/// drops self loops and sorts neighborhoods), the generators in
/// [`crate::generators`], or zero-copy from a binary file with
/// [`crate::io::load_binary_mmap`] — the CSR arrays are
/// [`SharedSlice`]s, so a graph either owns its storage or is a view over
/// a memory-mapped region; every consumer sees plain `&[_]` slices.
#[derive(Clone)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: SharedSlice<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: SharedSlice<VertexId>,
    /// Number of undirected edges (each stored twice in `neighbors`).
    num_edges: u64,
}

impl CsrGraph {
    /// Builds a CSR graph directly from raw parts.
    ///
    /// `offsets` must have length `n + 1`, start at 0, be non-decreasing and
    /// end at `neighbors.len()`; every adjacency slice must be strictly
    /// sorted (no duplicates) and free of self loops. These invariants are
    /// checked in debug builds.
    pub fn from_raw_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        Self::from_shared_parts(offsets.into(), neighbors.into())
    }

    /// Shared-storage sibling of [`CsrGraph::from_raw_parts`], used by the
    /// zero-copy loader. Callers constructing mapped graphs must have run
    /// **release-mode** validation of the same invariants first (the binary
    /// loader validates bounds, monotonicity and sortedness on open);
    /// construction itself re-checks them only in debug builds.
    pub(crate) fn from_shared_parts(
        offsets: SharedSlice<usize>,
        neighbors: SharedSlice<VertexId>,
    ) -> Self {
        debug_assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        debug_assert_eq!(*offsets.first().unwrap(), 0);
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        #[cfg(debug_assertions)]
        {
            let n = offsets.len() - 1;
            for v in 0..n {
                let adj = &neighbors[offsets[v]..offsets[v + 1]];
                assert!(
                    adj.windows(2).all(|w| w[0] < w[1]),
                    "adjacency of {v} must be strictly sorted"
                );
                assert!(
                    adj.iter().all(|&u| (u as usize) < n && u as usize != v),
                    "neighbor out of range or self loop at {v}"
                );
            }
        }
        let num_edges = (neighbors.len() / 2) as u64;
        Self {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Whether the CSR arrays are views over a memory-mapped region (true
    /// for graphs opened with [`crate::io::load_binary_mmap`] on supported
    /// targets) rather than owned heap vectors.
    pub fn is_memory_mapped(&self) -> bool {
        self.offsets.is_mapped() || self.neighbors.is_mapped()
    }

    /// The raw offsets array (`n + 1` entries), for the binary writer.
    pub(crate) fn offsets_slice(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array, for the binary writer.
    pub(crate) fn neighbors_slice(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighborhood of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search in the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices() as f64
        }
    }

    /// Returns vertices sorted by decreasing degree (ties broken by id).
    pub fn vertices_by_degree_desc(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self.vertices().collect();
        vs.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        vs
    }

    /// Checks whether the whole graph is connected (trivially true for
    /// graphs with at most one vertex). Uses an iterative BFS.
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// Total memory footprint of the CSR arrays in bytes (informational).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality over the CSR arrays: a mapped graph equals
        // the owned graph it was serialised from.
        self.num_edges == other.num_edges
            && *self.offsets == *other.offsets
            && *self.neighbors == *other.neighbors
    }
}

impl Eq for CsrGraph {}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges)
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle plus 2-3 tail.
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = triangle_plus_tail();
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn edges_iterated_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn connectivity() {
        let g = triangle_plus_tail();
        assert!(g.is_connected());
        let disconnected = GraphBuilder::new().edges([(0, 1), (2, 3)]).build();
        assert!(!disconnected.is_connected());
        let empty = GraphBuilder::new().num_vertices(0).build();
        assert!(empty.is_connected());
        let single = GraphBuilder::new().num_vertices(1).build();
        assert!(single.is_connected());
    }

    #[test]
    fn degree_ordering() {
        let g = triangle_plus_tail();
        let order = g.vertices_by_degree_desc();
        assert_eq!(order[0], 2);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn memory_is_reported() {
        let g = triangle_plus_tail();
        assert!(g.memory_bytes() > 0);
    }
}
