//! Graph substrate for the GraphPi reproduction.
//!
//! This crate provides everything the pattern-matching engine needs from the
//! *data graph* side:
//!
//! * [`CsrGraph`] — an immutable, undirected, unlabeled graph stored in
//!   compressed sparse row (CSR) form with sorted adjacency lists, exactly as
//!   described in Section IV-E of the paper.
//! * [`GraphBuilder`] — turns an arbitrary edge list (possibly with
//!   duplicates, self loops, or unordered endpoints) into a [`CsrGraph`].
//! * [`vertex_set`] — the sorted-set algebra (merge intersection, galloping
//!   intersection, subtraction) that dominates the cost of nested-loop
//!   pattern matching.
//! * [`hub`] — hub acceleration: degree-descending relabeling plus bitset
//!   adjacency rows for the top-k high-degree core, turning intersections
//!   against hubs into word-AND popcounts.
//! * [`generators`] — seeded synthetic graph generators (Erdős–Rényi,
//!   power-law preferential attachment, complete graphs, …) used as
//!   stand-ins for the paper's real-world datasets.
//! * [`datasets`] — a registry of named stand-in datasets mirroring the
//!   relative scale/skew of Table I of the paper.
//! * [`triangles`] and [`stats`] — the structural statistics (`|V|`, `|E|`,
//!   triangle count, `p1`, `p2`) consumed by GraphPi's performance model.
//! * [`io`] — plain-text edge-list and compact binary loading/saving.
//! * [`delta`] and [`wal`] — the dynamic-graph layer: batch-applied edge
//!   overlays with generation-based snapshots, made durable by a
//!   checksummed write-ahead log with checkpoint + replay recovery.

pub mod builder;
pub mod components;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod generators;
pub mod hub;
pub mod io;
pub mod kcore;
pub mod mmap;
pub mod stats;
pub mod triangles;
pub mod vertex_set;
pub mod wal;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, VertexId};
pub use datasets::Dataset;
pub use delta::{DynamicGraph, EdgeBatch, GraphSnapshot};
pub use hub::{HubGraph, HubOptions};
pub use stats::GraphStats;
pub use wal::{DurableGraph, DurableGraphOptions};

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::csr::{CsrGraph, VertexId};
    pub use crate::datasets::Dataset;
    pub use crate::stats::GraphStats;
}
