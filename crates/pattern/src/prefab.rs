//! Named patterns.
//!
//! This module collects the worked examples of the paper (Rectangle from
//! Figure 4, House from Figure 5, Cycle-6-Tri from Figure 6), generic
//! families (cliques, cycles, paths, stars, connected 3-/4-vertex motifs)
//! and the six evaluation patterns P1–P6.
//!
//! **Note on P1–P6**: Figure 7 of the paper shows the evaluation patterns
//! only graphically and the figure is not reproducible from the text, so the
//! concrete adjacency structures below are documented stand-ins chosen to
//! match every textual constraint the paper places on them: sizes 5–6, the
//! first two "relatively simple" (as in GraphZero), P4 containing a
//! rectangle among four of its vertices (Section V-C), and P5/P6 having the
//! largest preprocessing cost (densest symmetry). See `DESIGN.md`.

use crate::pattern::Pattern;

/// Triangle (3-clique).
pub fn triangle() -> Pattern {
    Pattern::new(3, &[(0, 1), (1, 2), (0, 2)])
}

/// The rectangle (4-cycle) of Figure 4: vertices A=0, B=1, C=2, D=3 with
/// edges A-B, B-C, C-D, D-A.
pub fn rectangle() -> Pattern {
    Pattern::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
}

/// The House pattern of Figure 5: a square A-B-D-C (A=0, B=1, C=2, D=3) with
/// a roof vertex E=4 adjacent to A and B.
///
/// Edge set: A-B, A-C, B-D, C-D, A-E, B-E.
pub fn house() -> Pattern {
    Pattern::new(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 4), (1, 4)])
}

/// The Cycle-6-Tri pattern of Figure 6: a 6-cycle D-B-F-C-E-A with the two
/// chords A-B and A-C (A=0, B=1, C=2, D=3, E=4, F=5).
///
/// Edge set: A-B, A-C, A-D, B-D, A-E, C-E, B-F, C-F.
pub fn cycle_6_tri() -> Pattern {
    Pattern::new(
        6,
        &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 3),
            (0, 4),
            (2, 4),
            (1, 5),
            (2, 5),
        ],
    )
}

/// Complete pattern (clique) on `n` vertices.
pub fn clique(n: usize) -> Pattern {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Pattern::new(n, &edges)
}

/// Cycle pattern C_n (`n >= 3`).
pub fn cycle_pattern(n: usize) -> Pattern {
    assert!(n >= 3);
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Pattern::new(n, &edges)
}

/// Path pattern with `n` vertices and `n - 1` edges.
pub fn path_pattern(n: usize) -> Pattern {
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    Pattern::new(n, &edges)
}

/// Star pattern with one hub (vertex 0) and `n - 1` leaves.
pub fn star_pattern(n: usize) -> Pattern {
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Pattern::new(n, &edges)
}

/// All connected patterns with exactly 3 vertices: the wedge (path) and the
/// triangle. Used by the motif-counting example.
pub fn motifs_3() -> Vec<(&'static str, Pattern)> {
    vec![("wedge", path_pattern(3)), ("triangle", triangle())]
}

/// All six connected patterns with exactly 4 vertices, in increasing edge
/// count: path, star (claw), cycle (rectangle), paw (triangle + pendant),
/// diamond (K4 minus an edge), and the 4-clique.
pub fn motifs_4() -> Vec<(&'static str, Pattern)> {
    vec![
        ("path-4", path_pattern(4)),
        ("star-4", star_pattern(4)),
        ("cycle-4", rectangle()),
        ("paw", Pattern::new(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])),
        (
            "diamond",
            Pattern::new(4, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)]),
        ),
        ("clique-4", clique(4)),
    ]
}

/// Evaluation pattern P1: the House (5 vertices, 6 edges).
pub fn p1() -> Pattern {
    house()
}

/// Evaluation pattern P2: the double star (6 vertices, 5 edges) — two
/// adjacent hubs (0, 1), each with two leaves (2, 3 on hub 0 and 4, 5 on
/// hub 1). A simple pattern whose four leaves form a size-4 independent
/// set searchable in the innermost loops, which makes it the strongest
/// showcase for IEP counting (Figure 10 reports the largest IEP speedups
/// for P2).
pub fn p2() -> Pattern {
    Pattern::new(6, &[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)])
}

/// Evaluation pattern P3: the Cycle-6-Tri pattern of Figure 6
/// (6 vertices, 8 edges).
pub fn p3() -> Pattern {
    cycle_6_tri()
}

/// Evaluation pattern P4: a "double house" — a rectangle 0-1-2-3 (the
/// rectangle sub-pattern the paper mentions when discussing P4's prediction
/// accuracy) with two roof vertices, 4 adjacent to 0 and 1, and 5 adjacent
/// to 2 and 3 (6 vertices, 8 edges).
pub fn p4() -> Pattern {
    Pattern::new(
        6,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 3),
            (0, 4),
            (1, 4),
            (2, 5),
            (3, 5),
        ],
    )
}

/// Evaluation pattern P5: the octahedron K2,2,2 (K6 minus a perfect
/// matching; 6 vertices, 12 edges, 48 automorphisms) — the densest of the
/// evaluation patterns, driving the largest preprocessing cost (Table III).
pub fn p5() -> Pattern {
    let mut edges = Vec::new();
    for u in 0..6usize {
        for v in (u + 1)..6 {
            // Non-edges are the matching (0,1), (2,3), (4,5).
            let matched = (u / 2 == v / 2) && (v == u + 1) && u % 2 == 0;
            if !matched {
                edges.push((u, v));
            }
        }
    }
    Pattern::new(6, &edges)
}

/// Evaluation pattern P6: the triangular prism K3 x K2 (6 vertices, 9 edges,
/// 12 automorphisms) — two triangles 0-1-2 and 3-4-5 joined by a perfect
/// matching.
pub fn p6() -> Pattern {
    Pattern::new(
        6,
        &[
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (0, 3),
            (1, 4),
            (2, 5),
        ],
    )
}

/// The six evaluation patterns in paper order, with their names.
pub fn evaluation_patterns() -> Vec<(&'static str, Pattern)> {
    vec![
        ("P1", p1()),
        ("P2", p2()),
        ("P3", p3()),
        ("P4", p4()),
        ("P5", p5()),
        ("P6", p6()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automorphism::automorphism_count;

    #[test]
    fn worked_examples_match_paper_structure() {
        assert_eq!(rectangle().num_vertices(), 4);
        assert_eq!(rectangle().num_edges(), 4);

        let h = house();
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 6);
        // D (=3) and E (=4) are the only non-adjacent "innermost" pair
        // discussed in Section IV-B phase 2 (k = 2).
        assert!(!h.has_edge(3, 4));
        assert_eq!(h.max_independent_set_size(), 2);

        let c6t = cycle_6_tri();
        assert_eq!(c6t.num_vertices(), 6);
        assert_eq!(c6t.num_edges(), 8);
        // D, E, F (=3,4,5) are pairwise non-adjacent; k = 3 (Figure 6).
        assert!(c6t.is_independent_set(&[3, 4, 5]));
        assert_eq!(c6t.max_independent_set_size(), 3);
    }

    #[test]
    fn all_prefabs_are_connected() {
        for (name, p) in evaluation_patterns() {
            assert!(p.is_connected(), "{name} must be connected");
        }
        for (name, p) in motifs_3().into_iter().chain(motifs_4()) {
            assert!(p.is_connected(), "{name} must be connected");
        }
    }

    #[test]
    fn evaluation_pattern_sizes() {
        let sizes: Vec<usize> = evaluation_patterns()
            .iter()
            .map(|(_, p)| p.num_vertices())
            .collect();
        assert_eq!(sizes, vec![5, 6, 6, 6, 6, 6]);
        let edges: Vec<usize> = evaluation_patterns()
            .iter()
            .map(|(_, p)| p.num_edges())
            .collect();
        assert_eq!(edges, vec![6, 5, 8, 8, 12, 9]);
    }

    #[test]
    fn expected_symmetry_sizes() {
        assert_eq!(automorphism_count(&p1()), 2);
        assert_eq!(automorphism_count(&p2()), 8);
        assert_eq!(automorphism_count(&p3()), 2);
        assert_eq!(automorphism_count(&p4()), 4);
        assert_eq!(automorphism_count(&p5()), 48);
        assert_eq!(automorphism_count(&p6()), 12);
    }

    #[test]
    fn motif_families_are_distinct() {
        let m4 = motifs_4();
        assert_eq!(m4.len(), 6);
        for i in 0..m4.len() {
            for j in (i + 1)..m4.len() {
                assert_ne!(
                    m4[i].1, m4[j].1,
                    "motifs {} and {} must differ",
                    m4[i].0, m4[j].0
                );
            }
        }
    }

    #[test]
    fn octahedron_structure() {
        let p = p5();
        assert_eq!(p.num_edges(), 12);
        assert!(!p.has_edge(0, 1));
        assert!(!p.has_edge(2, 3));
        assert!(!p.has_edge(4, 5));
        assert!((0..6).all(|v| p.degree(v) == 4));
    }
}
