//! Enumeration of the automorphism group of a pattern.
//!
//! An automorphism of a pattern is a permutation `p` of its vertices such
//! that `(u, v)` is an edge if and only if `(p(u), p(v))` is an edge. All
//! automorphisms of a pattern form a group (Section IV-A); its size equals
//! the number of times a single subgraph of the data graph would be reported
//! as an embedding if no restrictions were applied.

use crate::pattern::Pattern;
use crate::permutation::Permutation;

/// Enumerates every automorphism of `pattern`, including the identity.
///
/// Uses straightforward backtracking with degree-based pruning. Patterns are
/// tiny (≤ ~10 vertices), so this is more than fast enough and trivially
/// correct.
pub fn automorphism_group(pattern: &Pattern) -> Vec<Permutation> {
    let n = pattern.num_vertices();
    let degrees: Vec<usize> = (0..n).map(|v| pattern.degree(v)).collect();
    let mut result = Vec::new();
    let mut mapping = vec![usize::MAX; n];
    let mut used = vec![false; n];
    backtrack(pattern, &degrees, 0, &mut mapping, &mut used, &mut result);
    result
}

fn backtrack(
    pattern: &Pattern,
    degrees: &[usize],
    next: usize,
    mapping: &mut Vec<usize>,
    used: &mut Vec<bool>,
    result: &mut Vec<Permutation>,
) {
    let n = pattern.num_vertices();
    if next == n {
        result.push(Permutation::from_mapping(mapping.clone()));
        return;
    }
    for candidate in 0..n {
        if used[candidate] || degrees[candidate] != degrees[next] {
            continue;
        }
        // Adjacency with all previously mapped vertices must be preserved
        // in both directions.
        let consistent = (0..next)
            .all(|prev| pattern.has_edge(next, prev) == pattern.has_edge(candidate, mapping[prev]));
        if !consistent {
            continue;
        }
        mapping[next] = candidate;
        used[candidate] = true;
        backtrack(pattern, degrees, next + 1, mapping, used, result);
        used[candidate] = false;
        mapping[next] = usize::MAX;
    }
}

/// Convenience: the number of automorphisms of a pattern.
pub fn automorphism_count(pattern: &Pattern) -> usize {
    automorphism_group(pattern).len()
}

/// Checks whether a specific permutation is an automorphism of the pattern.
pub fn is_automorphism(pattern: &Pattern, perm: &Permutation) -> bool {
    if perm.len() != pattern.num_vertices() {
        return false;
    }
    let n = pattern.num_vertices();
    for u in 0..n {
        for v in (u + 1)..n {
            if pattern.has_edge(u, v) != pattern.has_edge(perm.apply(u), perm.apply(v)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefab;

    #[test]
    fn rectangle_group_matches_figure_4() {
        // Figure 4(c) lists exactly 8 automorphisms for the rectangle.
        let rect = prefab::rectangle();
        let auts = automorphism_group(&rect);
        assert_eq!(auts.len(), 8);
        assert!(auts.iter().any(|p| p.is_identity()));
        assert!(auts.iter().all(|p| is_automorphism(&rect, p)));
    }

    #[test]
    fn clique_group_is_full_symmetric_group() {
        for n in 2..6usize {
            let k = prefab::clique(n);
            let factorial: usize = (1..=n).product();
            assert_eq!(automorphism_count(&k), factorial, "K_{n}");
        }
        // The paper notes a 7-clique embedding has 5040 automorphisms.
        assert_eq!(automorphism_count(&prefab::clique(7)), 5040);
    }

    #[test]
    fn house_has_two_automorphisms() {
        // The house's only symmetry is the mirror along the roof axis.
        let house = prefab::house();
        assert_eq!(automorphism_count(&house), 2);
    }

    #[test]
    fn path_and_star_and_cycle() {
        assert_eq!(automorphism_count(&prefab::path_pattern(4)), 2);
        // Star S_n: the leaves permute freely.
        assert_eq!(automorphism_count(&prefab::star_pattern(5)), 24);
        // Cycle C_n: dihedral group of order 2n.
        assert_eq!(automorphism_count(&prefab::cycle_pattern(5)), 10);
        assert_eq!(automorphism_count(&prefab::cycle_pattern(6)), 12);
    }

    #[test]
    fn group_is_closed_under_composition_and_inverse() {
        for pattern in [prefab::rectangle(), prefab::house(), prefab::cycle_6_tri()] {
            let auts = automorphism_group(&pattern);
            for a in &auts {
                assert!(auts.contains(&a.inverse()));
                for b in &auts {
                    assert!(auts.contains(&a.compose(b)));
                }
            }
        }
    }

    #[test]
    fn asymmetric_pattern_has_only_identity() {
        // A 6-vertex pattern with trivial automorphism group: a triangle with
        // pendant paths of different lengths attached to two of its corners.
        let p = Pattern::new(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (4, 5)]);
        assert_eq!(automorphism_count(&p), 1);
    }

    #[test]
    fn non_automorphism_rejected() {
        let house = prefab::house();
        let not_aut = Permutation::from_mapping(vec![1, 2, 3, 4, 0]);
        assert!(!is_automorphism(&house, &not_aut));
        let wrong_len = Permutation::identity(3);
        assert!(!is_automorphism(&house, &wrong_len));
    }

    use crate::pattern::Pattern;
}
