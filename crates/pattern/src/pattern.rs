//! Adjacency-matrix representation of patterns.

use std::fmt;

/// Index of a vertex inside a pattern (`0..pattern.num_vertices()`).
pub type PatternVertex = usize;

/// A small undirected, unlabeled pattern graph stored as a dense adjacency
/// matrix.
///
/// Patterns in GraphPi are tiny (the paper evaluates sizes 4–7), so a dense
/// matrix keeps every structural query O(1) and the code simple. Patterns
/// must be connected for matching to make sense; [`Pattern::is_connected`]
/// lets callers check this.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    n: usize,
    adj: Vec<bool>,
}

impl Pattern {
    /// Creates a pattern with `n` vertices and the given undirected edges.
    ///
    /// # Panics
    /// Panics if an edge references a vertex `>= n` or is a self loop.
    pub fn new(n: usize, edges: &[(PatternVertex, PatternVertex)]) -> Self {
        let mut p = Self {
            n,
            adj: vec![false; n * n],
        };
        for &(u, v) in edges {
            p.add_edge(u, v);
        }
        p
    }

    /// Creates an edgeless pattern with `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            adj: vec![false; n * n],
        }
    }

    /// Parses the flattened adjacency-matrix string format used by the
    /// original GraphPi implementation: `n * n` characters of `'0'`/`'1'`,
    /// row-major.
    ///
    /// # Panics
    /// Panics if the length is not a perfect square, a character is not
    /// `0`/`1`, or the matrix is not symmetric with a zero diagonal.
    pub fn from_adjacency_string(s: &str) -> Self {
        let len = s.len();
        let n = (len as f64).sqrt().round() as usize;
        assert_eq!(n * n, len, "adjacency string length {len} is not a square");
        let bits: Vec<bool> = s
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid character {other:?} in adjacency string"),
            })
            .collect();
        let mut p = Self::empty(n);
        for i in 0..n {
            assert!(!bits[i * n + i], "self loop at vertex {i}");
            for j in 0..n {
                assert_eq!(bits[i * n + j], bits[j * n + i], "matrix not symmetric");
                if bits[i * n + j] && i < j {
                    p.add_edge(i, j);
                }
            }
        }
        p
    }

    /// Adds an undirected edge in place.
    pub fn add_edge(&mut self, u: PatternVertex, v: PatternVertex) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "patterns cannot contain self loops");
        self.adj[u * self.n + v] = true;
        self.adj[v * self.n + u] = true;
    }

    /// Number of pattern vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of pattern edges.
    pub fn num_edges(&self) -> usize {
        self.edges().count()
    }

    /// Whether vertices `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: PatternVertex, v: PatternVertex) -> bool {
        self.adj[u * self.n + v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: PatternVertex) -> usize {
        (0..self.n).filter(|&u| self.has_edge(v, u)).count()
    }

    /// Sorted neighbors of vertex `v`.
    pub fn neighbors(&self, v: PatternVertex) -> Vec<PatternVertex> {
        (0..self.n).filter(|&u| self.has_edge(v, u)).collect()
    }

    /// Iterator over edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (PatternVertex, PatternVertex)> + '_ {
        (0..self.n).flat_map(move |u| {
            ((u + 1)..self.n)
                .filter(move |&v| self.has_edge(u, v))
                .map(move |v| (u, v))
        })
    }

    /// Whether the pattern is connected (patterns with ≤ 1 vertex count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (u, seen_u) in seen.iter_mut().enumerate() {
                if self.has_edge(v, u) && !*seen_u {
                    *seen_u = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// Whether the vertex subset (given as indices) is pairwise non-adjacent.
    pub fn is_independent_set(&self, vertices: &[PatternVertex]) -> bool {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Size of a maximum independent set — the `k` of Section IV-B Phase 2
    /// and Section IV-D ("at most k vertices such that any two of them are
    /// not connected"). Exact, by enumeration over all vertex subsets, which
    /// is fine for pattern sizes (≤ ~20 vertices).
    pub fn max_independent_set_size(&self) -> usize {
        assert!(self.n <= 25, "pattern too large for exact MIS computation");
        let mut best = 0usize;
        // Precompute adjacency bitmasks.
        let masks: Vec<u32> = (0..self.n)
            .map(|v| {
                (0..self.n)
                    .filter(|&u| self.has_edge(v, u))
                    .fold(0u32, |m, u| m | (1 << u))
            })
            .collect();
        for subset in 0u32..(1 << self.n) {
            if (subset.count_ones() as usize) <= best {
                continue;
            }
            let mut ok = true;
            let mut rest = subset;
            while rest != 0 {
                let v = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if masks[v] & subset != 0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                best = subset.count_ones() as usize;
            }
        }
        best
    }

    /// Whether the subgraph induced by `vertices` is connected. The empty
    /// set and singletons count as connected.
    pub fn induces_connected_subgraph(&self, vertices: &[PatternVertex]) -> bool {
        if vertices.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; vertices.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for (j, &v) in vertices.iter().enumerate() {
                if !seen[j] && self.has_edge(vertices[i], v) {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == vertices.len()
    }

    /// Relabels the pattern's vertices: vertex `i` of the result is vertex
    /// `order[i]` of `self`. `order` must be a permutation of `0..n`.
    pub fn relabeled(&self, order: &[PatternVertex]) -> Pattern {
        assert_eq!(order.len(), self.n);
        let mut p = Pattern::empty(self.n);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.has_edge(order[i], order[j]) {
                    p.add_edge(i, j);
                }
            }
        }
        p
    }

    /// Serialises to the flattened adjacency-matrix string format (the
    /// inverse of [`Pattern::from_adjacency_string`]).
    pub fn to_adjacency_string(&self) -> String {
        let mut s = String::with_capacity(self.n * self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                s.push(if self.has_edge(i, j) { '1' } else { '0' });
            }
        }
        s
    }

    /// A compact byte serialisation of the pattern: the vertex count
    /// followed by the row-major adjacency matrix packed eight bits per
    /// byte. Two patterns produce the same bytes **iff** they are equal as
    /// labeled graphs (same `==`/`Hash` identity, *not* isomorphism
    /// classes), which makes this the natural key for plan caches and
    /// other pattern-indexed maps.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.adj.len().div_ceil(8));
        debug_assert!(self.n < 256, "pattern sizes are tiny by construction");
        out.push(self.n as u8);
        let mut acc = 0u8;
        for (i, &bit) in self.adj.iter().enumerate() {
            if bit {
                acc |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                out.push(acc);
                acc = 0;
            }
        }
        if self.adj.len() % 8 != 0 {
            out.push(acc);
        }
        out
    }

    /// Decodes the byte serialisation produced by
    /// [`Pattern::canonical_bytes`], validating it structurally: the length
    /// must match the declared vertex count exactly, the matrix must be
    /// symmetric with a zero diagonal, and the padding bits of the final
    /// byte must be zero. Returns `None` for any malformed input — this is
    /// the decoder used at trust boundaries (the wire protocol, persisted
    /// plan-cache keys), so it must never panic.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Option<Pattern> {
        let (&n_byte, packed) = bytes.split_first()?;
        let n = n_byte as usize;
        let bits = n * n;
        if packed.len() != bits.div_ceil(8) {
            return None;
        }
        let bit_at = |i: usize| packed[i / 8] & (1 << (i % 8)) != 0;
        // Padding bits beyond n*n must be zero, so encoding is canonical.
        for i in bits..packed.len() * 8 {
            if bit_at(i) {
                return None;
            }
        }
        let mut p = Pattern::empty(n);
        for u in 0..n {
            if bit_at(u * n + u) {
                return None; // self loop
            }
            for v in (u + 1)..n {
                let forward = bit_at(u * n + v);
                if forward != bit_at(v * n + u) {
                    return None; // asymmetric
                }
                if forward {
                    p.add_edge(u, v);
                }
            }
        }
        Some(p)
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pattern(n={}, edges={:?})",
            self.n,
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn house() -> Pattern {
        // Square 0-1-3-2-0 with roof vertex 4 on edge 0-1.
        Pattern::new(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 4), (1, 4)])
    }

    #[test]
    fn basic_queries() {
        let p = house();
        assert_eq!(p.num_vertices(), 5);
        assert_eq!(p.num_edges(), 6);
        assert!(p.has_edge(0, 1) && p.has_edge(1, 0));
        assert!(!p.has_edge(2, 4));
        assert_eq!(p.degree(0), 3);
        assert_eq!(p.neighbors(0), vec![1, 2, 4]);
        assert!(p.is_connected());
    }

    #[test]
    fn adjacency_string_round_trip() {
        let p = house();
        let s = p.to_adjacency_string();
        assert_eq!(s.len(), 25);
        let q = Pattern::from_adjacency_string(&s);
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic]
    fn asymmetric_adjacency_string_rejected() {
        let _ = Pattern::from_adjacency_string("010000000");
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = Pattern::new(3, &[(1, 1)]);
    }

    #[test]
    fn independence() {
        let p = house();
        // Vertices 3 (bottom-right) and 4 (roof) are not adjacent.
        assert!(p.is_independent_set(&[3, 4]));
        assert!(!p.is_independent_set(&[0, 1]));
        assert_eq!(p.max_independent_set_size(), 2);

        let triangle = Pattern::new(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle.max_independent_set_size(), 1);

        let square = Pattern::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(square.max_independent_set_size(), 2);

        let star = Pattern::new(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(star.max_independent_set_size(), 4);
    }

    #[test]
    fn induced_connectivity() {
        let p = house();
        assert!(p.induces_connected_subgraph(&[0, 1, 4]));
        assert!(!p.induces_connected_subgraph(&[2, 4]));
        assert!(p.induces_connected_subgraph(&[]));
        assert!(p.induces_connected_subgraph(&[3]));
    }

    #[test]
    fn relabeling_preserves_structure() {
        let p = house();
        let order = [4, 3, 2, 1, 0];
        let q = p.relabeled(&order);
        assert_eq!(q.num_edges(), p.num_edges());
        // Edge (0,4) of p maps to (4,0) of q.
        assert!(q.has_edge(4, 0));
        // Degrees are permuted accordingly.
        for (i, &mapped) in order.iter().enumerate() {
            assert_eq!(q.degree(i), p.degree(mapped));
        }
    }

    #[test]
    fn disconnected_pattern_detected() {
        let p = Pattern::new(4, &[(0, 1), (2, 3)]);
        assert!(!p.is_connected());
    }

    #[test]
    fn canonical_bytes_identify_labeled_patterns() {
        let tri = Pattern::new(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(tri.canonical_bytes(), tri.clone().canonical_bytes());
        // Different structure, same size: different bytes.
        let path = Pattern::new(3, &[(0, 1), (1, 2)]);
        assert_ne!(tri.canonical_bytes(), path.canonical_bytes());
        // Same structure, different size: different bytes.
        assert_ne!(
            Pattern::empty(2).canonical_bytes(),
            Pattern::empty(3).canonical_bytes()
        );
        // Size header + ceil(9/8) packed bytes for a 3-vertex pattern.
        assert_eq!(tri.canonical_bytes().len(), 1 + 2);
        // Roundtrip sanity against the string serialisation: byte equality
        // must match string equality on a small pattern family.
        let patterns = [
            tri,
            path,
            Pattern::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]),
        ];
        for a in &patterns {
            for b in &patterns {
                assert_eq!(
                    a.canonical_bytes() == b.canonical_bytes(),
                    a.to_adjacency_string() == b.to_adjacency_string()
                );
            }
        }
    }

    #[test]
    fn canonical_bytes_round_trip() {
        for p in [
            house(),
            Pattern::new(3, &[(0, 1), (1, 2), (0, 2)]),
            Pattern::empty(1),
            Pattern::empty(0),
            Pattern::new(8, &[(0, 1), (2, 3), (4, 5), (6, 7), (0, 7)]),
        ] {
            assert_eq!(Pattern::from_canonical_bytes(&p.canonical_bytes()), Some(p));
        }
    }

    #[test]
    fn malformed_canonical_bytes_rejected() {
        // Empty input, truncated body, oversized body.
        assert_eq!(Pattern::from_canonical_bytes(&[]), None);
        let good = house().canonical_bytes();
        assert_eq!(Pattern::from_canonical_bytes(&good[..good.len() - 1]), None);
        let mut long = good.clone();
        long.push(0);
        assert_eq!(Pattern::from_canonical_bytes(&long), None);
        // Self loop: bit (0,0) set on a 2-vertex pattern.
        assert_eq!(Pattern::from_canonical_bytes(&[2, 0b0001]), None);
        // Asymmetric: bit (0,1) set but (1,0) clear.
        assert_eq!(Pattern::from_canonical_bytes(&[2, 0b0010]), None);
        // Nonzero padding bits beyond n*n.
        assert_eq!(Pattern::from_canonical_bytes(&[2, 0b1_0110]), None);
        // The symmetric single edge decodes fine.
        assert_eq!(
            Pattern::from_canonical_bytes(&[2, 0b0110]),
            Some(Pattern::new(2, &[(0, 1)]))
        );
    }
}
