//! Permutations of pattern vertices and their cycle structure.
//!
//! GraphPi formalises automorphisms as elements of a permutation group
//! (Section IV-A). The key observation is that every permutation decomposes
//! into disjoint cycles, and 2-cycles (transpositions appearing in that
//! decomposition) are the handles on which partial-order restrictions are
//! applied.

use std::fmt;

/// A permutation of `0..n`, stored as `map[i] = image of i`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Self {
            map: (0..n).collect(),
        }
    }

    /// Builds a permutation from an explicit mapping.
    ///
    /// # Panics
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn from_mapping(map: Vec<usize>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &x in &map {
            assert!(x < n, "image {x} out of range for n={n}");
            assert!(!seen[x], "duplicate image {x}");
            seen[x] = true;
        }
        Self { map }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True for the zero-length permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Image of `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The underlying mapping slice.
    pub fn mapping(&self) -> &[usize] {
        &self.map
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &x)| i == x)
    }

    /// Composition `self ∘ other`: applies `other` first, then `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        Permutation {
            map: (0..self.len()).map(|i| self.map[other.map[i]]).collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.len()];
        for (i, &x) in self.map.iter().enumerate() {
            inv[x] = i;
        }
        Permutation { map: inv }
    }

    /// Decomposes into disjoint cycles, each written with its smallest
    /// element first; 1-cycles (fixed points) are included.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut cycle = vec![start];
            seen[start] = true;
            let mut cur = self.map[start];
            while cur != start {
                seen[cur] = true;
                cycle.push(cur);
                cur = self.map[cur];
            }
            cycles.push(cycle);
        }
        cycles
    }

    /// The 2-cycles of the disjoint-cycle decomposition, i.e. pairs
    /// `(a, b)` with `a < b`, `map[a] == b` and `map[b] == a`.
    ///
    /// These are exactly the elements Algorithm 1 turns into restrictions.
    pub fn two_cycles(&self) -> Vec<(usize, usize)> {
        (0..self.len())
            .filter(|&a| {
                let b = self.map[a];
                b != a && self.map[b] == a && a < b
            })
            .map(|a| (a, self.map[a]))
            .collect()
    }

    /// Number of fixed points (1-cycles).
    pub fn fixed_points(&self) -> usize {
        self.map
            .iter()
            .enumerate()
            .filter(|(i, &x)| *i == x)
            .count()
    }

    /// Order of the permutation (smallest k > 0 with `self^k = id`).
    pub fn order(&self) -> usize {
        self.cycles().iter().map(|c| c.len()).fold(1usize, lcm)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cycles = self.cycles();
        let parts: Vec<String> = cycles
            .iter()
            .map(|c| {
                let inner: Vec<String> = c.iter().map(|x| x.to_string()).collect();
                format!("({})", inner.join(","))
            })
            .collect();
        write!(f, "{}", parts.join(""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(5);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), 5);
        assert_eq!(id.two_cycles(), vec![]);
        assert_eq!(id.order(), 1);
        assert_eq!(id.cycles().len(), 5);
    }

    #[test]
    fn rectangle_automorphism_example() {
        // The (A)(B,D)(C) permutation from Figure 4(b): on vertices
        // 0=A,1=B,2=C,3=D the mapping is [0,3,2,1].
        let p = Permutation::from_mapping(vec![0, 3, 2, 1]);
        assert_eq!(p.two_cycles(), vec![(1, 3)]);
        assert_eq!(p.fixed_points(), 2);
        assert_eq!(p.order(), 2);
        assert!(!p.is_identity());
    }

    #[test]
    fn four_cycle_has_no_two_cycles() {
        // (A,B,C,D) as in Figure 4(c) entry 3: map = [1,2,3,0].
        let p = Permutation::from_mapping(vec![1, 2, 3, 0]);
        assert!(p.two_cycles().is_empty());
        assert_eq!(p.cycles(), vec![vec![0, 1, 2, 3]]);
        assert_eq!(p.order(), 4);
    }

    #[test]
    fn compose_and_inverse() {
        let p = Permutation::from_mapping(vec![1, 2, 0, 3]);
        let q = p.inverse();
        assert!(p.compose(&q).is_identity());
        assert!(q.compose(&p).is_identity());
        // Applying the composition matches applying one after the other.
        let r = Permutation::from_mapping(vec![0, 3, 2, 1]);
        let pr = p.compose(&r);
        for i in 0..4 {
            assert_eq!(pr.apply(i), p.apply(r.apply(i)));
        }
    }

    #[test]
    #[should_panic]
    fn invalid_mapping_rejected() {
        let _ = Permutation::from_mapping(vec![0, 0, 1]);
    }

    #[test]
    fn debug_formatting_uses_cycles() {
        let p = Permutation::from_mapping(vec![0, 3, 2, 1]);
        assert_eq!(format!("{p:?}"), "(0)(1,3)(2)");
    }

    fn arb_permutation(n: usize) -> impl Strategy<Value = Permutation> {
        Just((0..n).collect::<Vec<_>>())
            .prop_shuffle()
            .prop_map(Permutation::from_mapping)
    }

    proptest! {
        #[test]
        fn prop_inverse_composes_to_identity(p in arb_permutation(7)) {
            prop_assert!(p.compose(&p.inverse()).is_identity());
        }

        #[test]
        fn prop_cycles_partition_elements(p in arb_permutation(8)) {
            let cycles = p.cycles();
            let total: usize = cycles.iter().map(|c| c.len()).sum();
            prop_assert_eq!(total, 8);
            let mut all: Vec<usize> = cycles.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn prop_two_cycles_are_involutive_pairs(p in arb_permutation(8)) {
            for (a, b) in p.two_cycles() {
                prop_assert!(a < b);
                prop_assert_eq!(p.apply(a), b);
                prop_assert_eq!(p.apply(b), a);
            }
        }

        #[test]
        fn prop_order_annihilates(p in arb_permutation(6)) {
            let k = p.order();
            let mut acc = Permutation::identity(6);
            for _ in 0..k {
                acc = acc.compose(&p);
            }
            prop_assert!(acc.is_identity());
        }
    }
}
