//! Pattern-side machinery of the GraphPi reproduction.
//!
//! A *pattern* is the small template graph whose embeddings we enumerate in
//! a data graph. This crate contains:
//!
//! * [`Pattern`] — adjacency-matrix representation of a small undirected
//!   pattern, plus structural queries (connectivity, independent sets, …).
//! * [`permutation`] — permutations of pattern vertices, their cycle
//!   decomposition, and the distinction between 1-cycles and 2-cycles that
//!   drives GraphPi's restriction generation (Section IV-A).
//! * [`automorphism`] — enumeration of the automorphism group of a pattern.
//! * [`restriction`] — the 2-cycle based automorphism-elimination algorithm
//!   (Algorithm 1 in the paper): it produces *multiple* complete restriction
//!   sets, each of which reduces every embedding's automorphism count to one.
//! * [`prefab`] — named patterns: the worked examples of the paper
//!   (Rectangle, House, Cycle-6-Tri), cliques, cycles, stars, the connected
//!   3- and 4-vertex motifs, and the six evaluation patterns P1–P6.

pub mod automorphism;
pub mod pattern;
pub mod permutation;
pub mod prefab;
pub mod restriction;

pub use automorphism::automorphism_group;
pub use pattern::{Pattern, PatternVertex};
pub use permutation::Permutation;
pub use restriction::{Restriction, RestrictionSet};
