//! 2-cycle based automorphism elimination (Algorithm 1 of the paper).
//!
//! A *restriction* is a partial-order constraint `id(a) > id(b)` between two
//! pattern vertices, applied to the data-graph ids an embedding assigns to
//! them. A *restriction set* eliminates redundant work if, for every
//! subgraph of the data graph isomorphic to the pattern, exactly one of its
//! automorphic embeddings satisfies every restriction in the set.
//!
//! GraphPi's contribution (Section IV-A) is an algorithm that produces
//! **multiple** such sets for an arbitrary pattern by recursively picking
//! 2-cycles from the not-yet-eliminated automorphisms: a restriction on the
//! two vertices of a 2-cycle eliminates that automorphism outright, and the
//! `no_conflict` test (acyclicity of a small digraph) determines which other
//! automorphisms fall with it. Exposing the whole family of sets lets the
//! performance model pick the one that prunes the search tree earliest.

use crate::automorphism::automorphism_group;
use crate::pattern::{Pattern, PatternVertex};
use crate::permutation::Permutation;
use std::collections::BTreeSet;

/// A single partial-order constraint `id(greater) > id(smaller)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Restriction {
    /// Pattern vertex whose data-graph id must be larger.
    pub greater: PatternVertex,
    /// Pattern vertex whose data-graph id must be smaller.
    pub smaller: PatternVertex,
}

impl Restriction {
    /// Creates the restriction `id(greater) > id(smaller)`.
    pub fn new(greater: PatternVertex, smaller: PatternVertex) -> Self {
        assert_ne!(
            greater, smaller,
            "a restriction needs two distinct vertices"
        );
        Self { greater, smaller }
    }

    /// Whether an id assignment (`ids[v]` = data id of pattern vertex `v`)
    /// satisfies this restriction.
    pub fn satisfied_by(&self, ids: &[u64]) -> bool {
        ids[self.greater] > ids[self.smaller]
    }
}

/// An ordered collection of restrictions forming one complete (or partial)
/// symmetry-breaking set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RestrictionSet {
    restrictions: Vec<Restriction>,
}

impl RestrictionSet {
    /// The empty restriction set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a set from a list of `(greater, smaller)` pairs.
    pub fn from_pairs(pairs: &[(PatternVertex, PatternVertex)]) -> Self {
        let mut set = Self::empty();
        for &(g, s) in pairs {
            set.push(Restriction::new(g, s));
        }
        set
    }

    /// Adds a restriction, keeping the set sorted and duplicate-free.
    pub fn push(&mut self, r: Restriction) {
        if !self.restrictions.contains(&r) {
            self.restrictions.push(r);
            self.restrictions.sort_unstable();
        }
    }

    /// Returns a new set extended with `r`.
    pub fn with(&self, r: Restriction) -> Self {
        let mut next = self.clone();
        next.push(r);
        next
    }

    /// The restrictions in canonical (sorted) order.
    pub fn restrictions(&self) -> &[Restriction] {
        &self.restrictions
    }

    /// Number of restrictions.
    pub fn len(&self) -> usize {
        self.restrictions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.restrictions.is_empty()
    }

    /// Whether an id assignment satisfies every restriction in the set.
    pub fn satisfied_by(&self, ids: &[u64]) -> bool {
        self.restrictions.iter().all(|r| r.satisfied_by(ids))
    }

    /// Restrictions whose `greater`/`smaller` vertices are both contained in
    /// `vertices` (used when only a prefix of the schedule is bound).
    pub fn restricted_to(&self, vertices: &[PatternVertex]) -> RestrictionSet {
        RestrictionSet {
            restrictions: self
                .restrictions
                .iter()
                .copied()
                .filter(|r| vertices.contains(&r.greater) && vertices.contains(&r.smaller))
                .collect(),
        }
    }
}

/// The `no_conflict` predicate of Algorithm 1.
///
/// Returns `true` when the permutation **survives** (is *not* eliminated by)
/// the restriction set: for every restriction `a > b` the set also implies
/// `perm(a) > perm(b)`, and the union of those constraints is consistent,
/// i.e. the directed graph with edges `a -> b` and `perm(a) -> perm(b)` for
/// every restriction is acyclic.
pub fn no_conflict(perm: &Permutation, res_set: &RestrictionSet) -> bool {
    let n = perm.len();
    // Adjacency matrix of the (tiny) constraint digraph.
    let mut adj = vec![false; n * n];
    for r in res_set.restrictions() {
        adj[r.greater * n + r.smaller] = true;
        adj[perm.apply(r.greater) * n + perm.apply(r.smaller)] = true;
    }
    is_acyclic(&adj, n)
}

fn is_acyclic(adj: &[bool], n: usize) -> bool {
    // Kahn's algorithm on the dense matrix.
    let mut indegree = vec![0usize; n];
    for u in 0..n {
        for v in 0..n {
            if adj[u * n + v] {
                indegree[v] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut removed = 0usize;
    while let Some(u) = queue.pop() {
        removed += 1;
        for v in 0..n {
            if adj[u * n + v] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push(v);
                }
            }
        }
    }
    removed == n
}

/// Returns the automorphisms of `auts` that survive (are not eliminated by)
/// `res_set`. The identity always survives.
pub fn surviving_automorphisms<'a>(
    auts: &'a [Permutation],
    res_set: &RestrictionSet,
) -> Vec<&'a Permutation> {
    auts.iter().filter(|p| no_conflict(p, res_set)).collect()
}

/// The `validate` step of Algorithm 1: matches the pattern (with and without
/// restrictions) on the complete graph with `n = |V_p|` vertices.
///
/// On `K_n` every injective assignment of data ids to pattern vertices is an
/// embedding, so the unrestricted count is `n!` and the set is complete and
/// correct iff the restricted count equals `n! / |Aut(pattern)|`.
pub fn validate(pattern: &Pattern, res_set: &RestrictionSet) -> bool {
    let n = pattern.num_vertices();
    let aut_count = automorphism_group(pattern).len() as u64;
    let total = factorial(n);
    if total % aut_count != 0 {
        return false;
    }
    count_satisfying_assignments(n, res_set) == total / aut_count
}

/// Counts the permutations of `0..n` (used as data ids) that satisfy every
/// restriction in the set. This equals the number of embeddings found on
/// `K_n` when the restrictions are applied.
pub fn count_satisfying_assignments(n: usize, res_set: &RestrictionSet) -> u64 {
    let mut ids: Vec<u64> = (0..n as u64).collect();
    let mut count = 0u64;
    permute_count(&mut ids, 0, res_set, &mut count);
    count
}

fn permute_count(ids: &mut Vec<u64>, k: usize, res_set: &RestrictionSet, count: &mut u64) {
    let n = ids.len();
    if k == n {
        if res_set.satisfied_by(ids) {
            *count += 1;
        }
        return;
    }
    for i in k..n {
        ids.swap(k, i);
        permute_count(ids, k + 1, res_set, count);
        ids.swap(k, i);
    }
}

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product::<u64>().max(1)
}

/// Options controlling the restriction-set generator.
#[derive(Debug, Clone, Copy)]
pub struct GenerationOptions {
    /// Stop after this many *distinct, validated* sets have been produced.
    /// The paper's generator enumerates all of them; large symmetric
    /// patterns (cliques) can produce a combinatorial number, so a generous
    /// cap keeps preprocessing bounded without affecting the patterns used
    /// in the evaluation.
    pub max_sets: usize,
    /// Skip the final `validate` call (used only by tests that validate
    /// separately).
    pub skip_validation: bool,
}

impl Default for GenerationOptions {
    fn default() -> Self {
        Self {
            max_sets: 4096,
            skip_validation: false,
        }
    }
}

/// Runs Algorithm 1: generates every distinct restriction set (up to
/// `options.max_sets`) that eliminates all automorphisms of the pattern.
///
/// The result is never empty for a valid pattern: if the 2-cycle driven
/// recursion fails to produce any set (possible only when the automorphism
/// group contains no involutions at all, a case the paper does not
/// encounter), a fallback total-order set over one vertex orbit is produced
/// and validated.
pub fn generate_restriction_sets(
    pattern: &Pattern,
    options: GenerationOptions,
) -> Vec<RestrictionSet> {
    let auts = automorphism_group(pattern);
    generate_from_group(pattern, &auts, options)
}

/// Same as [`generate_restriction_sets`] but reuses a precomputed
/// automorphism group.
pub fn generate_from_group(
    pattern: &Pattern,
    auts: &[Permutation],
    options: GenerationOptions,
) -> Vec<RestrictionSet> {
    let mut found: BTreeSet<Vec<Restriction>> = BTreeSet::new();
    let mut visited: BTreeSet<Vec<Restriction>> = BTreeSet::new();

    if auts.len() <= 1 {
        // Asymmetric pattern: the empty set is complete.
        return vec![RestrictionSet::empty()];
    }

    let survivors: Vec<&Permutation> = auts.iter().collect();
    recurse(
        &survivors,
        &RestrictionSet::empty(),
        &mut found,
        &mut visited,
        options.max_sets,
    );

    let mut sets: Vec<RestrictionSet> = found
        .into_iter()
        .map(|restrictions| RestrictionSet { restrictions })
        .collect();

    if !options.skip_validation {
        sets.retain(|s| validate(pattern, s));
    }

    if sets.is_empty() {
        // Fallback (see doc comment): impose a total order over the orbit of
        // vertex 0 under the automorphism group, which breaks every
        // remaining symmetry, then validate.
        let orbit: BTreeSet<PatternVertex> = auts.iter().map(|p| p.apply(0)).collect();
        let orbit: Vec<PatternVertex> = orbit.into_iter().collect();
        let mut set = RestrictionSet::empty();
        for w in orbit.windows(2) {
            set.push(Restriction::new(w[0], w[1]));
        }
        if validate(pattern, &set) {
            sets.push(set);
        }
    }
    sets
}

fn recurse(
    survivors: &[&Permutation],
    res_set: &RestrictionSet,
    found: &mut BTreeSet<Vec<Restriction>>,
    visited: &mut BTreeSet<Vec<Restriction>>,
    max_sets: usize,
) {
    if found.len() >= max_sets {
        return;
    }
    if !visited.insert(res_set.restrictions().to_vec()) {
        return;
    }
    if survivors.len() <= 1 {
        // Only the identity remains; record the completed set.
        found.insert(res_set.restrictions().to_vec());
        return;
    }
    for perm in survivors {
        if perm.is_identity() {
            continue;
        }
        for (a, b) in perm.two_cycles() {
            // Both orientations of the pair are valid branches (the paper's
            // pseudocode iterates over each vertex of the 2-cycle).
            for (greater, smaller) in [(a, b), (b, a)] {
                let new_set = res_set.with(Restriction::new(greater, smaller));
                if new_set.len() == res_set.len() {
                    continue; // already present
                }
                let remaining: Vec<&Permutation> = survivors
                    .iter()
                    .copied()
                    .filter(|p| no_conflict(p, &new_set))
                    .collect();
                if remaining.len() == survivors.len() {
                    continue; // the new restriction eliminated nothing
                }
                recurse(&remaining, &new_set, found, visited, max_sets);
                if found.len() >= max_sets {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefab;

    fn assert_all_valid(pattern: &Pattern, sets: &[RestrictionSet]) {
        for s in sets {
            assert!(validate(pattern, s), "invalid set {s:?} for {pattern:?}");
        }
    }

    #[test]
    fn rectangle_generates_multiple_sets() {
        // Figure 4(d) derives several distinct sets for the rectangle, e.g.
        // {B>D, A>C, A>B} and {B>D, A>C, C>D}.
        let rect = prefab::rectangle();
        let sets = generate_restriction_sets(&rect, GenerationOptions::default());
        assert!(
            sets.len() >= 2,
            "expected multiple sets, got {}",
            sets.len()
        );
        assert_all_valid(&rect, &sets);
        // Each complete set for the rectangle needs at least 3 restrictions
        // (|Aut| = 8 = 2^3).
        assert!(sets.iter().all(|s| s.len() >= 3));
    }

    #[test]
    fn house_single_restriction_suffices() {
        // |Aut(house)| = 2, so one restriction on the mirrored pair is
        // enough; the paper's Figure 5 uses id(A) > id(B).
        let house = prefab::house();
        let sets = generate_restriction_sets(&house, GenerationOptions::default());
        assert!(!sets.is_empty());
        assert_all_valid(&house, &sets);
        assert!(sets.iter().any(|s| s.len() == 1));
    }

    #[test]
    fn triangle_and_cliques() {
        for n in 3..6usize {
            let k = prefab::clique(n);
            let sets = generate_restriction_sets(&k, GenerationOptions::default());
            assert!(!sets.is_empty(), "K_{n} produced no sets");
            assert_all_valid(&k, &sets);
            // A clique needs a full total order: n-1 restrictions at least.
            assert!(sets.iter().all(|s| s.len() >= n - 1), "K_{n}");
        }
    }

    #[test]
    fn asymmetric_pattern_needs_no_restrictions() {
        let p = Pattern::new(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (4, 5)]);
        let sets = generate_restriction_sets(&p, GenerationOptions::default());
        assert_eq!(sets.len(), 1);
        assert!(sets[0].is_empty());
        assert!(validate(&p, &sets[0]));
    }

    #[test]
    fn evaluation_patterns_all_produce_valid_sets() {
        for (name, pattern) in prefab::evaluation_patterns() {
            let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
            assert!(!sets.is_empty(), "{name} produced no restriction sets");
            assert_all_valid(&pattern, &sets);
        }
    }

    #[test]
    fn no_conflict_matches_paper_example() {
        // After Round 1 in Figure 4(d): {B>D, A>C} (vertices 0=A,1=B,2=C,3=D).
        let set = RestrictionSet::from_pairs(&[(1, 3), (0, 2)]);
        // Permutation 2 of Figure 4(c) is the 4-cycle (A,D,C,B):
        // A->D, D->C, C->B, B->A, i.e. map = [3, 0, 1, 2].
        let perm = Permutation::from_mapping(vec![3, 0, 1, 2]);
        // The paper argues this permutation *is* eliminated by those two
        // restrictions (the derived constraints are contradictory).
        assert!(!no_conflict(&perm, &set));
        // The identity is never eliminated.
        assert!(no_conflict(&Permutation::identity(4), &set));
    }

    #[test]
    fn surviving_automorphism_count_divides_group_order() {
        for (_, pattern) in prefab::evaluation_patterns() {
            let auts = automorphism_group(&pattern);
            let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
            for set in &sets {
                let surviving = surviving_automorphisms(&auts, set);
                // A complete set leaves only the identity.
                assert_eq!(surviving.len(), 1);
                assert!(surviving[0].is_identity());
            }
        }
    }

    #[test]
    fn partial_sets_leave_more_survivors() {
        let rect = prefab::rectangle();
        let auts = automorphism_group(&rect);
        // A single restriction cannot kill all 7 non-identity automorphisms.
        let partial = RestrictionSet::from_pairs(&[(1, 3)]);
        let surviving = surviving_automorphisms(&auts, &partial);
        assert!(surviving.len() > 1);
        assert!(surviving.len() < auts.len());
    }

    #[test]
    fn count_satisfying_assignments_basics() {
        // No restrictions: all n! assignments satisfy.
        assert_eq!(
            count_satisfying_assignments(4, &RestrictionSet::empty()),
            24
        );
        // One restriction halves the count.
        let one = RestrictionSet::from_pairs(&[(0, 1)]);
        assert_eq!(count_satisfying_assignments(4, &one), 12);
        // A full chain leaves exactly one.
        let chain = RestrictionSet::from_pairs(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_satisfying_assignments(4, &chain), 1);
    }

    #[test]
    fn restricted_to_prefix() {
        let set = RestrictionSet::from_pairs(&[(0, 1), (2, 3), (0, 3)]);
        let prefix = set.restricted_to(&[0, 1, 3]);
        assert_eq!(prefix.len(), 2);
        assert!(prefix
            .restrictions()
            .iter()
            .all(|r| r.greater != 2 && r.smaller != 2));
    }

    #[test]
    fn contradictory_set_fails_validation() {
        let rect = prefab::rectangle();
        let bad = RestrictionSet::from_pairs(&[(0, 1), (1, 0)]);
        assert!(!validate(&rect, &bad));
    }
}
