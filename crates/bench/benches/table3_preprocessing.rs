//! Table III: overhead of preprocessing (configuration generation +
//! performance prediction) and code generation for each evaluation pattern.
//!
//! As the paper notes, this overhead depends only on the pattern, not on the
//! data graph; a small graph is used merely to provide the statistics the
//! performance model consumes.

use graphpi_bench::{banner, measure, scale_from_env, wiki_vote, Table};
use graphpi_core::codegen::{generate, Language};
use graphpi_core::engine::{GraphPi, PlanOptions};
use graphpi_pattern::prefab;

fn main() {
    let dataset = wiki_vote(scale_from_env());
    banner(
        "Table III — preprocessing and code generation overhead per pattern",
        "paper reports 0.008s (P1) to 2.53s (P6); overhead is graph-independent",
    );
    let engine = GraphPi::new(dataset.graph.clone());

    let mut table = Table::new(vec![
        "pattern",
        "restriction sets",
        "schedules",
        "configs ranked",
        "preprocess(s)",
        "codegen(s)",
        "total(s)",
    ]);

    for (name, pattern) in prefab::evaluation_patterns() {
        let (plan, _) = measure(|| engine.plan(&pattern, PlanOptions::default()).unwrap());
        let preprocessing = plan.preprocessing_time;
        let (code, codegen_time) = measure(|| {
            let cpp = generate(&plan.plan, Language::Cpp);
            let rust = generate(&plan.plan, Language::Rust);
            cpp.len() + rust.len()
        });
        assert!(code > 0);
        table.row(vec![
            name.to_string(),
            plan.restriction_sets_generated.to_string(),
            plan.schedules_generated.to_string(),
            plan.candidates_considered.to_string(),
            format!("{:.4}", preprocessing.as_secs_f64()),
            format!("{:.4}", codegen_time.as_secs_f64()),
            format!("{:.4}", (preprocessing + codegen_time).as_secs_f64()),
        ]);
    }
    println!();
    table.print();
}
