//! Network serving benchmark: remote counts over a loopback socket vs the
//! same warm [`Session`] called in process.
//!
//! The delta between the two columns is the whole serving stack — frame
//! encode/decode, one TCP round trip, admission, and the server's
//! dispatch — so it bounds the price of putting GraphPi behind a socket.
//! A multi-client section then drives 1/2/4 concurrent connections at one
//! server to show the handler-per-connection model scales past a single
//! client's round-trip latency.
//!
//! Results are printed and written to `BENCH_net.json` as
//! `{op, ns_per_iter, graph, threads}` records (`net/in_process_warm`,
//! `net/remote_warm`, and `net/remote_multi_client`, whose `threads` field
//! carries the client count). Every remote count is asserted bit-identical
//! to the in-process count — the acceptance criterion of the serving PR —
//! so a correctness regression fails the bench before any number is
//! reported.

use graphpi_bench::{
    banner, scale_from_env, serving_dataset, write_bench_json, BenchRecord, Table,
};
use graphpi_core::config::ServeOptions;
use graphpi_core::engine::GraphPi;
use graphpi_core::net::{Client, Server};
use graphpi_pattern::prefab;
use std::time::Instant;

/// Warm queries per measured cell.
const ITERS: usize = 100;

/// Connection counts of the multi-client section.
const CLIENT_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let scale = scale_from_env();
    let dataset = serving_dataset(scale);
    banner(
        "Network serving: loopback remote counts vs in-process session",
        &format!(
            "house pattern, {ITERS} queries/cell; {}",
            dataset.describe()
        ),
    );
    let engine = GraphPi::new(dataset.graph.clone());
    let pattern = prefab::house();

    // In-process column: the session the server would build, minus the
    // socket. Warm it so both columns measure the cached-plan regime.
    let session = engine.session();
    let expected = session.count(&pattern).expect("in-process count");
    let start = Instant::now();
    for _ in 0..ITERS {
        assert_eq!(session.count(&pattern).unwrap(), expected);
    }
    let in_process_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;

    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let graph = dataset.name.to_string();
    let mut records = vec![BenchRecord::new(
        "net/in_process_warm",
        in_process_ns,
        graph.clone(),
        1,
    )];

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&engine).expect("serve"));

        // Single-client round-trip latency.
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.count(&pattern).expect("warm-up").count, expected);
        let start = Instant::now();
        for _ in 0..ITERS {
            let got = client.count(&pattern).expect("remote count").count;
            assert_eq!(got, expected, "remote count diverged from in-process");
        }
        let remote_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        records.push(BenchRecord::new(
            "net/remote_warm",
            remote_ns,
            graph.clone(),
            1,
        ));

        let mut table = Table::new(vec!["mode", "ns/query", "q/s", "overhead"]);
        table.row(vec![
            "in-process".into(),
            format!("{:.1} us", in_process_ns / 1e3),
            format!("{:.0}", 1e9 / in_process_ns),
            "-".into(),
        ]);
        table.row(vec![
            "remote".into(),
            format!("{:.1} us", remote_ns / 1e3),
            format!("{:.0}", 1e9 / remote_ns),
            format!("{:.1} us", (remote_ns - in_process_ns) / 1e3),
        ]);
        table.print();
        println!("\nembeddings per query: {expected} (bit-identical in-process and over the wire)");

        // Multi-client aggregate throughput, one connection per client.
        let mut multi = Table::new(vec!["clients", "agg ns/query", "agg q/s"]);
        for &clients in &CLIENT_COUNTS {
            let start = Instant::now();
            std::thread::scope(|inner| {
                for _ in 0..clients {
                    inner.spawn(|| {
                        let mut client = Client::connect(addr).expect("connect");
                        for _ in 0..ITERS {
                            let got = client.count(&pattern).expect("remote count").count;
                            assert_eq!(got, expected, "concurrent remote count diverged");
                        }
                    });
                }
            });
            let agg_ns = start.elapsed().as_nanos() as f64 / (clients * ITERS) as f64;
            multi.row(vec![
                format!("{clients}"),
                format!("{:.1} us", agg_ns / 1e3),
                format!("{:.0}", 1e9 / agg_ns),
            ]);
            records.push(BenchRecord::new(
                "net/remote_multi_client",
                agg_ns,
                graph.clone(),
                clients,
            ));
        }
        println!();
        multi.print();

        handle.shutdown();
        let report = serving.join().expect("serve thread");
        println!(
            "\nserver drained: {} connections, {} queries",
            report.connections, report.queries
        );
    });

    write_bench_json("BENCH_net.json", &records).expect("write BENCH_net.json");
}
