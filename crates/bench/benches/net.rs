//! Network serving benchmark: remote counts over a loopback socket vs the
//! same warm [`Session`] called in process.
//!
//! The delta between the two columns is the whole serving stack — frame
//! encode/decode, one TCP round trip, admission, and the server's
//! dispatch — so it bounds the price of putting GraphPi behind a socket.
//! A multi-client section then drives 1/2/4 concurrent connections at one
//! server to show the handler-per-connection model scales past a single
//! client's round-trip latency.
//!
//! Results are printed and written to `BENCH_net.json` as
//! `{op, ns_per_iter, graph, threads}` records (`net/in_process_warm`,
//! `net/remote_warm`, `net/remote_multi_client` — whose `threads` field
//! carries the client count — `net/remote_retry_overhead`, and
//! `net/chaos_recovery`). The last two price the resilience layer: the
//! retrying client on a healthy connection (bookkeeping only, no faults)
//! and throughput with ~2% of wire operations failing through the seeded
//! chaos injector (retries + reconnects + request-ID replay included).
//! Every remote count is asserted bit-identical to the in-process count —
//! the acceptance criterion of the serving PR — so a correctness
//! regression fails the bench before any number is reported.

use graphpi_bench::{
    banner, scale_from_env, serving_dataset, write_bench_json, BenchRecord, Table,
};
use graphpi_core::config::ServeOptions;
use graphpi_core::engine::GraphPi;
use graphpi_core::net::{
    ChaosConfig, ChaosConnector, Client, RetryPolicy, RetryingClient, Server, Transport,
};
use graphpi_pattern::prefab;
use std::time::{Duration, Instant};

/// Warm queries per measured cell.
const ITERS: usize = 100;

/// Connection counts of the multi-client section.
const CLIENT_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let scale = scale_from_env();
    let dataset = serving_dataset(scale);
    banner(
        "Network serving: loopback remote counts vs in-process session",
        &format!(
            "house pattern, {ITERS} queries/cell; {}",
            dataset.describe()
        ),
    );
    let engine = GraphPi::new(dataset.graph.clone());
    let pattern = prefab::house();

    // In-process column: the session the server would build, minus the
    // socket. Warm it so both columns measure the cached-plan regime.
    let session = engine.session();
    let expected = session.count(&pattern).expect("in-process count");
    let start = Instant::now();
    for _ in 0..ITERS {
        assert_eq!(session.count(&pattern).unwrap(), expected);
    }
    let in_process_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;

    let server = Server::bind("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let graph = dataset.name.to_string();
    let mut records = vec![BenchRecord::new(
        "net/in_process_warm",
        in_process_ns,
        graph.clone(),
        1,
    )];

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&engine).expect("serve"));

        // Single-client round-trip latency.
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.count(&pattern).expect("warm-up").count, expected);
        let start = Instant::now();
        for _ in 0..ITERS {
            let got = client.count(&pattern).expect("remote count").count;
            assert_eq!(got, expected, "remote count diverged from in-process");
        }
        let remote_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        records.push(BenchRecord::new(
            "net/remote_warm",
            remote_ns,
            graph.clone(),
            1,
        ));

        let mut table = Table::new(vec!["mode", "ns/query", "q/s", "overhead"]);
        table.row(vec![
            "in-process".into(),
            format!("{:.1} us", in_process_ns / 1e3),
            format!("{:.0}", 1e9 / in_process_ns),
            "-".into(),
        ]);
        table.row(vec![
            "remote".into(),
            format!("{:.1} us", remote_ns / 1e3),
            format!("{:.0}", 1e9 / remote_ns),
            format!("{:.1} us", (remote_ns - in_process_ns) / 1e3),
        ]);
        table.print();
        println!("\nembeddings per query: {expected} (bit-identical in-process and over the wire)");

        // Multi-client aggregate throughput, one connection per client.
        let mut multi = Table::new(vec!["clients", "agg ns/query", "agg q/s"]);
        for &clients in &CLIENT_COUNTS {
            let start = Instant::now();
            std::thread::scope(|inner| {
                for _ in 0..clients {
                    inner.spawn(|| {
                        let mut client = Client::connect(addr).expect("connect");
                        for _ in 0..ITERS {
                            let got = client.count(&pattern).expect("remote count").count;
                            assert_eq!(got, expected, "concurrent remote count diverged");
                        }
                    });
                }
            });
            let agg_ns = start.elapsed().as_nanos() as f64 / (clients * ITERS) as f64;
            multi.row(vec![
                format!("{clients}"),
                format!("{:.1} us", agg_ns / 1e3),
                format!("{:.0}", 1e9 / agg_ns),
            ]);
            records.push(BenchRecord::new(
                "net/remote_multi_client",
                agg_ns,
                graph.clone(),
                clients,
            ));
        }
        println!();
        multi.print();

        // Resilience column 1: the retrying client on a healthy
        // connection — its request-ID tagging and retry bookkeeping are
        // pure overhead here, so the delta vs `net/remote_warm` is the
        // price of making every query safely resendable.
        let mut retrying = RetryingClient::connect_tcp(
            addr,
            RetryPolicy {
                max_attempts: 4,
                initial_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            }
            .with_seed(1),
        );
        assert_eq!(retrying.count(&pattern).expect("warm-up").count, expected);
        let start = Instant::now();
        for _ in 0..ITERS {
            let got = retrying.count(&pattern).expect("retrying count").count;
            assert_eq!(got, expected, "retrying count diverged");
        }
        let retry_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        records.push(BenchRecord::new(
            "net/remote_retry_overhead",
            retry_ns,
            graph.clone(),
            1,
        ));

        // Resilience column 2: the same queries with ~2% of wire
        // operations faulted by the seeded chaos injector. The number is
        // sustained throughput *including* reconnects, backoff sleeps,
        // and request-ID replays — recovery priced end to end.
        let connector = ChaosConnector::new(addr, ChaosConfig::gentle(0xBE7C));
        let mut chaotic = RetryingClient::new(
            move || {
                let transport = connector.connect()?;
                Ok(Box::new(transport) as Box<dyn Transport + Send>)
            },
            RetryPolicy {
                max_attempts: 16,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(10),
                ..RetryPolicy::default()
            }
            .with_seed(2),
        );
        assert_eq!(chaotic.count(&pattern).expect("warm-up").count, expected);
        let start = Instant::now();
        for _ in 0..ITERS {
            let got = chaotic.count(&pattern).expect("chaotic count").count;
            assert_eq!(got, expected, "count diverged under chaos");
        }
        let chaos_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        records.push(BenchRecord::new(
            "net/chaos_recovery",
            chaos_ns,
            graph.clone(),
            1,
        ));
        let chaos_stats = chaotic.stats();

        let mut resilience = Table::new(vec!["mode", "ns/query", "q/s", "vs remote"]);
        resilience.row(vec![
            "retrying (no faults)".into(),
            format!("{:.1} us", retry_ns / 1e3),
            format!("{:.0}", 1e9 / retry_ns),
            format!("{:+.1} us", (retry_ns - remote_ns) / 1e3),
        ]);
        resilience.row(vec![
            "chaos (~2% faults)".into(),
            format!("{:.1} us", chaos_ns / 1e3),
            format!("{:.0}", 1e9 / chaos_ns),
            format!("{:+.1} us", (chaos_ns - remote_ns) / 1e3),
        ]);
        println!();
        resilience.print();
        println!(
            "\nchaos run: {} attempts, {} retries, {} reconnects for {} queries",
            chaos_stats.attempts,
            chaos_stats.retries,
            chaos_stats.connects,
            ITERS + 1
        );

        handle.shutdown();
        let report = serving.join().expect("serve thread");
        println!(
            "\nserver drained: {} connections, {} queries",
            report.connections, report.queries
        );
    });

    write_bench_json("BENCH_net.json", &records).expect("write BENCH_net.json");
}
