//! Figure 11: accuracy of the performance prediction model.
//!
//! For every evaluation pattern on the Wiki-Vote and Patents stand-ins,
//! every schedule produced by the 2-phase generator is executed (with the
//! model's preferred restriction set for that schedule) and the schedule the
//! model selects is compared with the measured oracle. The paper reports the
//! selected schedules are on average 32% slower than the oracle.

use graphpi_bench::{banner, measure, patents, scale_from_env, wiki_vote, BenchDataset, Table};
use graphpi_core::config::Configuration;
use graphpi_core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi_core::perf_model::{select_best, PerformanceModel};
use graphpi_core::schedule::efficient_schedules;
use graphpi_pattern::prefab;
use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions};
use rand::prelude::*;

/// Upper bound on measured schedules per (pattern, graph) pair; the sample
/// always contains the model-selected schedule.
const MAX_MEASURED_SCHEDULES: usize = 24;

fn main() {
    let scale = scale_from_env();
    let datasets: Vec<BenchDataset> = vec![wiki_vote(scale * 0.5), patents(scale * 0.5)];
    banner(
        "Figure 11 — model-selected schedule vs measured oracle",
        "per (pattern, graph): every generated schedule runs with its best restriction set",
    );

    let mut table = Table::new(vec![
        "graph",
        "pattern",
        "schedules measured",
        "selected(s)",
        "oracle(s)",
        "selected/oracle",
    ]);
    let mut ratios = Vec::new();

    for dataset in &datasets {
        let engine = GraphPi::new(dataset.graph.clone());
        for (name, pattern) in prefab::evaluation_patterns() {
            let sets = {
                let mut s = generate_restriction_sets(&pattern, GenerationOptions::default());
                s.sort_by_key(|x| x.len());
                s.truncate(16);
                s
            };
            let schedules = efficient_schedules(&pattern);
            let model = PerformanceModel::new(*engine.stats(), pattern.num_vertices());

            // The model's overall choice (schedule + restriction set).
            let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
            let selected_schedule = plan.plan.config.schedule.clone();

            // Sample the schedules to measure (always including the model's
            // choice), and for each pick its best restriction set by model.
            let mut rng = StdRng::seed_from_u64(0xF11);
            let mut sample = schedules.clone();
            sample.shuffle(&mut rng);
            sample.truncate(MAX_MEASURED_SCHEDULES.saturating_sub(1));
            if !sample.contains(&selected_schedule) {
                sample.push(selected_schedule.clone());
            }

            let mut selected_time = f64::INFINITY;
            let mut oracle = f64::INFINITY;
            for schedule in &sample {
                let candidates: Vec<Configuration> = sets
                    .iter()
                    .map(|set| Configuration::new(pattern.clone(), schedule.clone(), set.clone()))
                    .collect();
                let (best_idx, _) = select_best(&model, &candidates);
                let best_plan = candidates[best_idx].compile();
                let (_, elapsed) = measure(|| {
                    engine.execute_count(&best_plan, CountOptions::sequential_enumeration())
                });
                let t = elapsed.as_secs_f64();
                oracle = oracle.min(t);
                if *schedule == selected_schedule {
                    selected_time = t;
                }
            }
            let ratio = selected_time / oracle.max(1e-9);
            ratios.push(ratio);
            table.row(vec![
                dataset.name.to_string(),
                name.to_string(),
                sample.len().to_string(),
                format!("{selected_time:.3}"),
                format!("{oracle:.3}"),
                format!("{ratio:.2}x"),
            ]);
        }
    }
    println!();
    table.print();
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\nAverage selected/oracle ratio: {:.2}x (paper: selected schedules are ~32% slower than the oracle on average)",
        avg
    );
}
