//! Figure 12: scalability of the distributed design.
//!
//! The paper scales GraphPi to 1,024 nodes (24,576 cores) of Tianhe-2A. This
//! reproduction measures every fine-grained task once on the local machine
//! and replays the measured durations on a simulated cluster with per-node
//! queues and inter-node work stealing (see `exec::cluster`), reporting the
//! simulated makespan for the paper's node counts:
//!
//! * (a) P1–P6 on the Orkut stand-in, 1–128 nodes,
//! * (b) P2 and P3 on the Twitter stand-in, 128–1,024 nodes.

use graphpi_bench::{banner, orkut, scale_from_env, twitter, Table};
use graphpi_core::engine::{GraphPi, PlanOptions};
use graphpi_core::exec::cluster::strong_scaling;
use graphpi_pattern::prefab;

const THREADS_PER_NODE: usize = 24;

fn main() {
    let scale = scale_from_env();

    // Part (a): Orkut, 1..128 nodes, all six patterns.
    let dataset = orkut(scale);
    banner(
        "Figure 12(a) — strong scaling on the Orkut stand-in (simulated cluster)",
        &format!(
            "dataset: {}\n24 simulated worker threads per node; makespans in milliseconds",
            dataset.describe()
        ),
    );
    let engine = GraphPi::new(dataset.graph.clone());
    let node_counts = [1usize, 2, 4, 8, 16, 32, 64, 128];

    let mut table = Table::new(vec![
        "pattern",
        "tasks",
        "1",
        "2",
        "4",
        "8",
        "16",
        "32",
        "64",
        "128",
        "speedup@128",
    ]);
    for (name, pattern) in prefab::evaluation_patterns() {
        let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
        let curve = strong_scaling(
            &plan.plan,
            engine.graph(),
            &node_counts,
            THREADS_PER_NODE,
            None,
        );
        let mut cells = vec![name.to_string(), curve[0].1.num_tasks.to_string()];
        for (_, report) in &curve {
            cells.push(format!("{:.2}", report.makespan_seconds * 1e3));
        }
        let speedup =
            curve[0].1.makespan_seconds / curve.last().unwrap().1.makespan_seconds.max(1e-12);
        cells.push(format!("{speedup:.1}x"));
        table.row(cells);
    }
    println!();
    table.print();

    // Part (b): Twitter, 128..1024 nodes, P2 and P3 only (as in the paper).
    let dataset = twitter(scale);
    banner(
        "Figure 12(b) — strong scaling on the Twitter stand-in (simulated cluster)",
        &format!("dataset: {}", dataset.describe()),
    );
    let engine = GraphPi::new(dataset.graph.clone());
    let node_counts = [128usize, 256, 512, 1024];
    let mut table = Table::new(vec![
        "pattern", "tasks", "128", "256", "512", "1024", "speedup",
    ]);
    for (name, pattern) in [("P2", prefab::p2()), ("P3", prefab::p3())] {
        let plan = engine.plan(&pattern, PlanOptions::default()).unwrap();
        let curve = strong_scaling(
            &plan.plan,
            engine.graph(),
            &node_counts,
            THREADS_PER_NODE,
            None,
        );
        let mut cells = vec![name.to_string(), curve[0].1.num_tasks.to_string()];
        for (_, report) in &curve {
            cells.push(format!("{:.3}", report.makespan_seconds * 1e3));
        }
        let speedup =
            curve[0].1.makespan_seconds / curve.last().unwrap().1.makespan_seconds.max(1e-12);
        cells.push(format!("{speedup:.1}x"));
        table.row(cells);
    }
    println!();
    table.print();
    println!("\nNote: with stand-in graphs the per-task work is far smaller than on the");
    println!("paper's full datasets, so the curves flatten earlier (load imbalance from");
    println!("the few heavy hub tasks), mirroring the paper's observation for P2/P3 on Orkut.");
}
