//! Figure 8 + Table I: overall single-node performance of GraphPi vs the
//! GraphZero and Fractal-style baselines for the six evaluation patterns on
//! the five comparison datasets.
//!
//! As in the paper, GraphPi runs with its selected configuration but without
//! IEP (the comparison isolates the configuration quality), GraphZero runs
//! with its single restriction set and pattern-only schedule, and the
//! expansion baseline reproduces Fractal's levelwise architecture. Entries
//! marked `T` exceeded the expansion budget (the paper marks >48h runs the
//! same way); `-` marks combinations skipped to keep the harness fast, as
//! the paper skips Fractal on Orkut.

use graphpi_baseline::expansion::{ExpansionEngine, ExpansionOutcome};
use graphpi_baseline::GraphZeroEngine;
use graphpi_bench::{
    banner, bench_datasets, measure, scale_from_env, secs, write_bench_json, BenchRecord, Table,
};
use graphpi_core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi_pattern::prefab;

fn main() {
    let scale = scale_from_env();
    let datasets = bench_datasets(scale);
    banner(
        "Figure 8 / Table I — overall performance (single node, no IEP)",
        "times in seconds; speedup is GraphPi vs baseline on the same workload",
    );

    println!("\nTable I — dataset stand-ins:");
    for d in &datasets {
        println!("  {}", d.describe());
    }

    let patterns = prefab::evaluation_patterns();
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut table = Table::new(vec![
        "graph",
        "pattern",
        "embeddings",
        "GraphPi(s)",
        "GraphZero(s)",
        "Fractal-like(s)",
        "vs GZ",
        "vs Fractal",
    ]);

    for dataset in &datasets {
        let graphpi = GraphPi::new(dataset.graph.clone());
        let graphzero = GraphZeroEngine::new(dataset.graph.clone());
        // Mirror the paper: the expansion baseline is only run where its
        // intermediate data stays manageable (the paper likewise omits
        // Fractal on Orkut).
        let run_expansion = dataset.graph.num_vertices() <= 700;
        let expansion = ExpansionEngine::with_budget(dataset.graph.clone(), 200_000);

        for (name, pattern) in &patterns {
            let plan = graphpi
                .plan(pattern, PlanOptions::default())
                .expect("evaluation patterns always plan");
            let (count, pi_time) = measure(|| {
                graphpi.execute_count(&plan.plan, CountOptions::sequential_enumeration())
            });
            let (gz_count, gz_time) = measure(|| graphzero.count(pattern));
            assert_eq!(count, gz_count, "count mismatch on {name}/{}", dataset.name);
            records.push(BenchRecord::new(
                format!("fig8/graphpi/{name}"),
                pi_time.as_nanos() as f64,
                dataset.name,
                1,
            ));
            records.push(BenchRecord::new(
                format!("fig8/graphzero/{name}"),
                gz_time.as_nanos() as f64,
                dataset.name,
                1,
            ));

            let (fractal_cell, fractal_speedup) = if run_expansion {
                let (outcome, fr_time) = measure(|| expansion.count(pattern));
                match outcome {
                    ExpansionOutcome::Finished(c) => {
                        assert_eq!(c, count, "expansion mismatch on {name}/{}", dataset.name);
                        (
                            secs(fr_time),
                            format!(
                                "{:.1}x",
                                fr_time.as_secs_f64() / pi_time.as_secs_f64().max(1e-9)
                            ),
                        )
                    }
                    ExpansionOutcome::BudgetExceeded { .. } => ("T".to_string(), ">T".to_string()),
                }
            } else {
                ("-".to_string(), "-".to_string())
            };

            table.row(vec![
                dataset.name.to_string(),
                name.to_string(),
                count.to_string(),
                secs(pi_time),
                secs(gz_time),
                fractal_cell,
                format!(
                    "{:.1}x",
                    gz_time.as_secs_f64() / pi_time.as_secs_f64().max(1e-9)
                ),
                fractal_speedup,
            ]);
        }
    }
    println!();
    table.print();
    write_bench_json("BENCH_fig8_overall.json", &records).expect("write BENCH_fig8_overall.json");
}
