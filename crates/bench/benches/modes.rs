//! Execution-mode benchmark: the cost of each match sink relative to the
//! pure count path on the same warm session.
//!
//! The count path is the baseline the whole refactor is anchored to — the
//! sink abstraction must monomorphize away, so `modes/count` here is the
//! row to diff against the pre-refactor serving numbers. The other rows
//! price what each mode adds on top of the identical match loop:
//!
//! * `modes/orbit` — one relaxed atomic add per embedding vertex,
//! * `modes/sample` — a per-task hash decision plus a skipped subtree for
//!   every rejected task (rate 0.1, so ~90% of the work is skipped; the
//!   row measures decision overhead against the saved matching),
//! * `modes/enumerate` — materializing full tuples under a budget
//!   (throttled to a fixed page so the row times extraction cost, not an
//!   unbounded result buffer).
//!
//! Before any timing, every mode is cross-checked against the exact count
//! (orbit sums to `pattern_size x count`, rate-1 sampling reproduces the
//! count bit-exactly, an unbounded enumeration has `count` tuples) — a
//! benchmark of a wrong answer is worthless. Results are printed and
//! written to `BENCH_modes.json` as `{op, ns_per_iter, graph, threads}`
//! records, with queries/sec derivable as `1e9 / ns_per_iter`.

use graphpi_bench::{
    banner, scale_from_env, serving_dataset, write_bench_json, BenchRecord, Table,
};
use graphpi_core::config::PoolOptions;
use graphpi_core::engine::{CountOptions, GraphPi, PlanOptions, Session};
use graphpi_pattern::prefab;
use std::time::Instant;

/// Worker threads backing the shared session.
const THREADS: usize = 4;

/// Iterations per timed cell.
const ITERS: usize = 30;

/// Embedding budget of the throttled enumeration row.
const ENUM_LIMIT: u64 = 4096;

/// Sampling rate of the approximate row.
const SAMPLE_RATE: f64 = 0.1;

/// Sampling seed (fixed: the row must time the same work every run).
const SAMPLE_SEED: u64 = 7;

fn time_ns(iters: usize, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Asserts every mode agrees with the exact count before anything is timed.
fn assert_mode_parity(session: &Session<'_>, pattern: &graphpi_pattern::Pattern, exact: u64) {
    let orbit = session.count_per_vertex(pattern).expect("orbit parity");
    assert_eq!(
        orbit.iter().sum::<u64>(),
        pattern.num_vertices() as u64 * exact,
        "orbit counts must sum to pattern_size x count"
    );
    let full = session.count_approx(pattern, 1.0, SAMPLE_SEED).expect("sample parity");
    assert_eq!(full.estimate, exact as f64, "rate-1 sampling must be exact");
    assert_eq!(full.stderr, 0.0, "rate-1 sampling must report zero error");
    let embeddings = session.enumerate(pattern, u64::MAX).expect("enumerate parity");
    assert_eq!(
        embeddings.len() as u64,
        exact,
        "unbounded enumeration must yield exactly `count` embeddings"
    );
}

fn main() {
    let scale = scale_from_env();
    let dataset = serving_dataset(scale);
    banner(
        "Execution modes: count vs orbit vs sample vs throttled enumerate",
        &format!(
            "{THREADS} pool workers, {ITERS} queries/cell, enumerate limit {ENUM_LIMIT}, \
             sample rate {SAMPLE_RATE}; {}",
            dataset.describe()
        ),
    );
    let engine = GraphPi::new(dataset.graph.clone());
    let session = engine.session_with(
        PoolOptions {
            threads: THREADS,
            ..PoolOptions::default()
        },
        PlanOptions::default(),
        CountOptions {
            threads: THREADS,
            ..CountOptions::default()
        },
    );

    let mut table = Table::new(vec![
        "pattern", "count", "orbit", "sample", "enumerate", "exact", "sampled est",
    ]);
    let mut records: Vec<BenchRecord> = Vec::new();

    for (name, pattern) in [
        ("triangle", prefab::triangle()),
        ("house", prefab::house()),
    ] {
        let exact = session.count(&pattern).expect("exact count");
        assert_mode_parity(&session, &pattern, exact);

        let count_ns = time_ns(ITERS, || {
            session.count(&pattern).unwrap();
        });
        let orbit_ns = time_ns(ITERS, || {
            session.count_per_vertex(&pattern).unwrap();
        });
        let sample_ns = time_ns(ITERS, || {
            session
                .count_approx(&pattern, SAMPLE_RATE, SAMPLE_SEED)
                .unwrap();
        });
        let enum_ns = time_ns(ITERS, || {
            session.enumerate(&pattern, ENUM_LIMIT).unwrap();
        });
        let estimate = session
            .count_approx(&pattern, SAMPLE_RATE, SAMPLE_SEED)
            .unwrap();

        table.row(vec![
            name.to_string(),
            format!("{:.1} us", count_ns / 1e3),
            format!("{:.1} us", orbit_ns / 1e3),
            format!("{:.1} us", sample_ns / 1e3),
            format!("{:.1} us", enum_ns / 1e3),
            format!("{exact}"),
            format!("{:.0} +- {:.0}", estimate.estimate, estimate.stderr),
        ]);
        let graph = dataset.name.to_string();
        for (op, ns) in [
            ("modes/count", count_ns),
            ("modes/orbit", orbit_ns),
            ("modes/sample", sample_ns),
            ("modes/enumerate", enum_ns),
        ] {
            records.push(BenchRecord::new(
                format!("{op}/{name}"),
                ns,
                graph.clone(),
                THREADS,
            ));
        }
    }

    table.print();
    println!(
        "\nall modes cross-checked against the exact count before timing \
         (orbit sum, rate-1 sample, unbounded enumeration)"
    );

    write_bench_json("BENCH_modes.json", &records).expect("write BENCH_modes.json");
}
