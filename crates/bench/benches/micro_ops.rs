//! Criterion micro-benchmarks of the kernels every experiment rests on:
//! sorted-set intersection (merge, galloping, bound-clamped and k-way
//! regimes), triangle counting, restriction-set generation, plan
//! compilation, and — the headline — parallel pattern counting on a skewed
//! power-law stand-in, comparing the work-stealing runtime (Chase–Lev
//! deques + batched injector + hub bitsets) against the pre-rewrite
//! mutex-injector baseline.
//!
//! Results are printed *and* written to `BENCH_micro.json` as
//! `{op, ns_per_iter, graph, threads}` records so CI can track the perf
//! trajectory across PRs (`GRAPHPI_BENCH_JSON_DIR` overrides the output
//! directory).

use criterion::{black_box, criterion_group, Criterion};
use graphpi_bench::{
    count_parallel_mutex_baseline, livejournal, scale_from_env, write_bench_json, BenchDataset,
    BenchRecord,
};
use graphpi_core::config::{Configuration, ExecutionPlan};
use graphpi_core::exec::parallel::{count_parallel, count_parallel_with_hubs, ParallelOptions};
use graphpi_core::schedule::{efficient_schedules, Schedule};
use graphpi_graph::hub::{HubGraph, HubOptions};
use graphpi_graph::{generators, triangles, vertex_set};
use graphpi_pattern::prefab;
use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions, RestrictionSet};

/// Thread count of the parallel counting benches.
const PARALLEL_THREADS: usize = 8;
/// Outer-loop prefix depth of the parallel counting benches: depth 2 on the
/// stand-in yields thousands of mostly-tiny tasks, which is exactly the
/// regime where queue overhead and load imbalance dominate.
const PARALLEL_PREFIX_DEPTH: usize = 2;

/// Display name of [`parallel_dataset`] (kept in sync; the report phase
/// needs the name without regenerating the graph).
const PARALLEL_GRAPH_NAME: &str = "LiveJournal";

/// The skewed power-law stand-in the parallel benches run on.
fn parallel_dataset() -> BenchDataset {
    let dataset = livejournal(scale_from_env());
    debug_assert_eq!(dataset.name, PARALLEL_GRAPH_NAME);
    dataset
}

fn bench_intersections(c: &mut Criterion) {
    let a: Vec<u32> = (0..10_000).step_by(2).collect();
    let b: Vec<u32> = (0..10_000).step_by(3).collect();
    let cset: Vec<u32> = (0..10_000).step_by(5).collect();
    let small: Vec<u32> = (0..10_000).step_by(97).collect();
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    c.bench_function("intersect/merge_balanced", |bench| {
        bench.iter(|| {
            vertex_set::intersect_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("intersect/galloping_skewed", |bench| {
        bench.iter(|| {
            vertex_set::intersect_into(black_box(&small), black_box(&a), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("intersect/count_only", |bench| {
        bench.iter(|| black_box(vertex_set::intersect_count(black_box(&a), black_box(&b))))
    });
    c.bench_function("intersect/count_below_clamped", |bench| {
        bench.iter(|| {
            black_box(vertex_set::intersect_count_below(
                black_box(&small),
                black_box(&a),
                black_box(5_000),
            ))
        })
    });
    c.bench_function("intersect/many_into_3way", |bench| {
        bench.iter(|| {
            vertex_set::intersect_many_into(black_box(&[&a, &b, &cset]), &mut out, &mut tmp);
            black_box(out.len())
        })
    });
}

fn bench_triangles(c: &mut Criterion) {
    let graph = generators::power_law(2_000, 8, 7);
    c.bench_function("triangles/power_law_2k", |bench| {
        bench.iter(|| black_box(triangles::count_triangles(black_box(&graph))))
    });
}

fn bench_preprocessing(c: &mut Criterion) {
    c.bench_function("restrictions/generate_p3", |bench| {
        bench.iter(|| {
            black_box(generate_restriction_sets(
                &prefab::p3(),
                GenerationOptions::default(),
            ))
        })
    });
    let pattern = prefab::house();
    c.bench_function("plan/compile_house", |bench| {
        bench.iter(|| {
            let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
            let config = Configuration::new(
                pattern.clone(),
                schedule,
                RestrictionSet::from_pairs(&[(0, 1)]),
            );
            black_box(config.compile())
        })
    });
}

fn parallel_plan() -> ExecutionPlan {
    let pattern = prefab::house();
    let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
    let schedules = efficient_schedules(&pattern);
    Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
}

fn bench_parallel_counting(c: &mut Criterion) {
    let dataset = parallel_dataset();
    let graph = &dataset.graph;
    let plan = parallel_plan();
    let hubs = HubGraph::build(graph, HubOptions::default());
    let options = ParallelOptions {
        threads: PARALLEL_THREADS,
        prefix_depth: Some(PARALLEL_PREFIX_DEPTH),
        ..Default::default()
    };

    // The three runtimes must agree before their timings mean anything.
    let expected =
        count_parallel_mutex_baseline(&plan, graph, PARALLEL_THREADS, PARALLEL_PREFIX_DEPTH);
    assert_eq!(count_parallel(&plan, graph, options), expected);
    assert_eq!(count_parallel_with_hubs(&plan, &hubs, options), expected);
    println!(
        "parallel_count: house on {} stand-in ({} vertices, {} edges), {} embeddings",
        dataset.name,
        graph.num_vertices(),
        graph.num_edges(),
        expected
    );

    c.bench_function("parallel_count/mutex_injector_baseline", |bench| {
        bench.iter(|| {
            black_box(count_parallel_mutex_baseline(
                &plan,
                black_box(graph),
                PARALLEL_THREADS,
                PARALLEL_PREFIX_DEPTH,
            ))
        })
    });
    c.bench_function("parallel_count/chase_lev", |bench| {
        bench.iter(|| black_box(count_parallel(&plan, black_box(graph), options)))
    });
    c.bench_function("parallel_count/chase_lev_hub", |bench| {
        bench.iter(|| black_box(count_parallel_with_hubs(&plan, black_box(&hubs), options)))
    });

    // Fine-grained regime: triangles at prefix depth 2 yield tens of
    // thousands of sub-microsecond tasks, so per-task queue traffic and
    // per-task allocation — what the runtime rewrite eliminates — dominate
    // the wall clock.
    let tri_pattern = prefab::triangle();
    let tri_sets = generate_restriction_sets(&tri_pattern, GenerationOptions::default());
    let tri_schedules = efficient_schedules(&tri_pattern);
    let tri_plan =
        Configuration::new(tri_pattern, tri_schedules[0].clone(), tri_sets[0].clone()).compile();
    let tri_options = ParallelOptions {
        threads: PARALLEL_THREADS,
        prefix_depth: Some(PARALLEL_PREFIX_DEPTH),
        ..Default::default()
    };
    let tri_expected =
        count_parallel_mutex_baseline(&tri_plan, graph, PARALLEL_THREADS, PARALLEL_PREFIX_DEPTH);
    assert_eq!(count_parallel(&tri_plan, graph, tri_options), tri_expected);
    assert_eq!(
        count_parallel_with_hubs(&tri_plan, &hubs, tri_options),
        tri_expected
    );

    c.bench_function("parallel_count_fine/mutex_injector_baseline", |bench| {
        bench.iter(|| {
            black_box(count_parallel_mutex_baseline(
                &tri_plan,
                black_box(graph),
                PARALLEL_THREADS,
                PARALLEL_PREFIX_DEPTH,
            ))
        })
    });
    c.bench_function("parallel_count_fine/chase_lev", |bench| {
        bench.iter(|| black_box(count_parallel(&tri_plan, black_box(graph), tri_options)))
    });
    c.bench_function("parallel_count_fine/chase_lev_hub", |bench| {
        bench.iter(|| {
            black_box(count_parallel_with_hubs(
                &tri_plan,
                black_box(&hubs),
                tri_options,
            ))
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_intersections, bench_triangles, bench_preprocessing, bench_parallel_counting
);

fn main() {
    micro();

    let results = criterion::take_results();
    let records: Vec<BenchRecord> = results
        .iter()
        .map(|r| {
            let (graph, threads) = if r.id.starts_with("parallel_count") {
                (PARALLEL_GRAPH_NAME.to_string(), PARALLEL_THREADS)
            } else if r.id.starts_with("triangles/") {
                ("power_law_2k".to_string(), 1)
            } else {
                ("-".to_string(), 1)
            };
            BenchRecord::new(r.id.clone(), r.mean_ns, graph, threads)
        })
        .collect();
    write_bench_json("BENCH_micro.json", &records).expect("write BENCH_micro.json");

    let mean_of = |op: &str| {
        records
            .iter()
            .find(|r| r.op == op)
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    for group in ["parallel_count", "parallel_count_fine"] {
        let baseline = mean_of(&format!("{group}/mutex_injector_baseline"));
        let chase_lev = mean_of(&format!("{group}/chase_lev"));
        let hub = mean_of(&format!("{group}/chase_lev_hub"));
        println!(
            "{group} speedup vs mutex-injector baseline: chase_lev {:.2}x, chase_lev+hub {:.2}x",
            baseline / chase_lev,
            baseline / hub
        );
    }
}
