//! Criterion micro-benchmarks of the kernels every experiment rests on:
//! sorted-set intersection (merge, galloping, bound-clamped and k-way
//! regimes), triangle counting, restriction-set generation, plan
//! compilation, and — the headline — parallel pattern counting on a skewed
//! power-law stand-in, comparing the work-stealing runtime (Chase–Lev
//! deques + batched injector + hub bitsets) against the pre-rewrite
//! mutex-injector baseline.
//!
//! Results are printed *and* written to `BENCH_micro.json` as
//! `{op, ns_per_iter, graph, threads}` records so CI can track the perf
//! trajectory across PRs (`GRAPHPI_BENCH_JSON_DIR` overrides the output
//! directory).

use criterion::{black_box, criterion_group, Criterion};
use graphpi_bench::{
    count_parallel_mutex_baseline, livejournal, scale_from_env, write_bench_json, BenchDataset,
    BenchRecord,
};
use graphpi_core::config::{Configuration, ExecutionPlan};
use graphpi_core::exec::parallel::{count_parallel, count_parallel_with_hubs, ParallelOptions};
use graphpi_core::schedule::{efficient_schedules, Schedule};
use graphpi_graph::hub::{HubGraph, HubOptions};
use graphpi_graph::{generators, triangles, vertex_set};
use graphpi_pattern::prefab;
use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions, RestrictionSet};

/// Thread count of the parallel counting benches.
const PARALLEL_THREADS: usize = 8;
/// Outer-loop prefix depth of the parallel counting benches: depth 2 on the
/// stand-in yields thousands of mostly-tiny tasks, which is exactly the
/// regime where queue overhead and load imbalance dominate.
const PARALLEL_PREFIX_DEPTH: usize = 2;

/// Display name of [`parallel_dataset`] (kept in sync; the report phase
/// needs the name without regenerating the graph).
const PARALLEL_GRAPH_NAME: &str = "LiveJournal";

/// The skewed power-law stand-in the parallel benches run on.
fn parallel_dataset() -> BenchDataset {
    let dataset = livejournal(scale_from_env());
    debug_assert_eq!(dataset.name, PARALLEL_GRAPH_NAME);
    dataset
}

fn bench_intersections(c: &mut Criterion) {
    let a: Vec<u32> = (0..10_000).step_by(2).collect();
    let b: Vec<u32> = (0..10_000).step_by(3).collect();
    let cset: Vec<u32> = (0..10_000).step_by(5).collect();
    let small: Vec<u32> = (0..10_000).step_by(97).collect();
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    c.bench_function("intersect/merge_balanced", |bench| {
        bench.iter(|| {
            vertex_set::intersect_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("intersect/galloping_skewed", |bench| {
        bench.iter(|| {
            vertex_set::intersect_into(black_box(&small), black_box(&a), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("intersect/count_only", |bench| {
        bench.iter(|| black_box(vertex_set::intersect_count(black_box(&a), black_box(&b))))
    });
    c.bench_function("intersect/count_below_clamped", |bench| {
        bench.iter(|| {
            black_box(vertex_set::intersect_count_below(
                black_box(&small),
                black_box(&a),
                black_box(5_000),
            ))
        })
    });
    c.bench_function("intersect/many_into_3way", |bench| {
        bench.iter(|| {
            vertex_set::intersect_many_into(black_box(&[&a, &b, &cset]), &mut out, &mut tmp);
            black_box(out.len())
        })
    });
}

/// Per-kernel intersection entries: every core (balanced merge, skewed
/// galloping, bound-clamped, materialising) timed once with the kernels
/// pinned to the scalar reference and once with runtime auto-detection
/// (SSE/AVX2 where the CPU supports it). The op names are stable across
/// machines; on hardware without SIMD support the two rows coincide.
fn bench_intersection_kernels(c: &mut Criterion) {
    // Irregular sorted sets (xorshift gaps): `step_by` inputs are perfectly
    // periodic, which lets the scalar merge ride the branch predictor;
    // adjacency lists of real graphs are not, and the SIMD kernels are
    // branchless. The gap distributions give a ~25% overlap.
    fn irregular_sorted(n: usize, max_gap: u64, seed: u64) -> Vec<u32> {
        let mut state = seed | 1;
        let mut value = 0u32;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            value += 1 + (state % max_gap) as u32;
            out.push(value);
        }
        out
    }
    let a = irregular_sorted(5_000, 4, 0xA11CE);
    let b = irregular_sorted(3_300, 6, 0xB0B);
    let small = irregular_sorted(100, 250, 0xCAFE);
    let mut out = Vec::new();
    for force_scalar in [true, false] {
        vertex_set::set_force_scalar(force_scalar);
        let tag = if force_scalar {
            "scalar"
        } else {
            vertex_set::active_kernel().name()
        };
        let suffix = if force_scalar { "scalar" } else { "auto" };
        println!("intersection kernels [{suffix}]: dispatching to {tag}");
        c.bench_function(&format!("intersect_kernel/merge_count_{suffix}"), |bench| {
            bench.iter(|| black_box(vertex_set::intersect_count(black_box(&a), black_box(&b))))
        });
        c.bench_function(&format!("intersect_kernel/merge_into_{suffix}"), |bench| {
            bench.iter(|| {
                vertex_set::intersect_into(black_box(&a), black_box(&b), &mut out);
                black_box(out.len())
            })
        });
        c.bench_function(
            &format!("intersect_kernel/gallop_count_{suffix}"),
            |bench| {
                bench.iter(|| {
                    black_box(vertex_set::intersect_count(
                        black_box(&small),
                        black_box(&a),
                    ))
                })
            },
        );
        c.bench_function(&format!("intersect_kernel/gallop_into_{suffix}"), |bench| {
            bench.iter(|| {
                vertex_set::intersect_into(black_box(&small), black_box(&a), &mut out);
                black_box(out.len())
            })
        });
        c.bench_function(&format!("intersect_kernel/count_below_{suffix}"), |bench| {
            bench.iter(|| {
                black_box(vertex_set::intersect_count_below(
                    black_box(&a),
                    black_box(&b),
                    black_box(5_000),
                ))
            })
        });
    }
    vertex_set::set_force_scalar(false);
}

fn bench_triangles(c: &mut Criterion) {
    let graph = generators::power_law(2_000, 8, 7);
    c.bench_function("triangles/power_law_2k", |bench| {
        bench.iter(|| black_box(triangles::count_triangles(black_box(&graph))))
    });
}

fn bench_preprocessing(c: &mut Criterion) {
    c.bench_function("restrictions/generate_p3", |bench| {
        bench.iter(|| {
            black_box(generate_restriction_sets(
                &prefab::p3(),
                GenerationOptions::default(),
            ))
        })
    });
    let pattern = prefab::house();
    c.bench_function("plan/compile_house", |bench| {
        bench.iter(|| {
            let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
            let config = Configuration::new(
                pattern.clone(),
                schedule,
                RestrictionSet::from_pairs(&[(0, 1)]),
            );
            black_box(config.compile())
        })
    });
}

fn parallel_plan() -> ExecutionPlan {
    let pattern = prefab::house();
    let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
    let schedules = efficient_schedules(&pattern);
    Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile()
}

fn bench_parallel_counting(c: &mut Criterion) {
    let dataset = parallel_dataset();
    let graph = &dataset.graph;
    let plan = parallel_plan();
    let hubs = HubGraph::build(graph, HubOptions::default());
    let options = ParallelOptions {
        threads: PARALLEL_THREADS,
        prefix_depth: Some(PARALLEL_PREFIX_DEPTH),
        ..Default::default()
    };

    // The three runtimes must agree before their timings mean anything.
    let expected =
        count_parallel_mutex_baseline(&plan, graph, PARALLEL_THREADS, PARALLEL_PREFIX_DEPTH);
    assert_eq!(count_parallel(&plan, graph, options), expected);
    assert_eq!(count_parallel_with_hubs(&plan, &hubs, options), expected);
    println!(
        "parallel_count: house on {} stand-in ({} vertices, {} edges), {} embeddings",
        dataset.name,
        graph.num_vertices(),
        graph.num_edges(),
        expected
    );

    c.bench_function("parallel_count/mutex_injector_baseline", |bench| {
        bench.iter(|| {
            black_box(count_parallel_mutex_baseline(
                &plan,
                black_box(graph),
                PARALLEL_THREADS,
                PARALLEL_PREFIX_DEPTH,
            ))
        })
    });
    c.bench_function("parallel_count/chase_lev", |bench| {
        bench.iter(|| black_box(count_parallel(&plan, black_box(graph), options)))
    });
    c.bench_function("parallel_count/chase_lev_hub", |bench| {
        bench.iter(|| black_box(count_parallel_with_hubs(&plan, black_box(&hubs), options)))
    });
    // Same runtime with the intersection kernels pinned to the scalar
    // reference: the end-to-end cost of turning SIMD off (counts are
    // bit-identical — asserted above via `expected`).
    vertex_set::set_force_scalar(true);
    assert_eq!(count_parallel(&plan, graph, options), expected);
    vertex_set::set_force_scalar(false);
    c.bench_function("parallel_count/chase_lev_scalar_kernels", |bench| {
        vertex_set::set_force_scalar(true);
        bench.iter(|| black_box(count_parallel(&plan, black_box(graph), options)));
        vertex_set::set_force_scalar(false);
    });

    // Fine-grained regime: triangles at prefix depth 2 yield tens of
    // thousands of sub-microsecond tasks, so per-task queue traffic and
    // per-task allocation — what the runtime rewrite eliminates — dominate
    // the wall clock.
    let tri_pattern = prefab::triangle();
    let tri_sets = generate_restriction_sets(&tri_pattern, GenerationOptions::default());
    let tri_schedules = efficient_schedules(&tri_pattern);
    let tri_plan =
        Configuration::new(tri_pattern, tri_schedules[0].clone(), tri_sets[0].clone()).compile();
    let tri_options = ParallelOptions {
        threads: PARALLEL_THREADS,
        prefix_depth: Some(PARALLEL_PREFIX_DEPTH),
        ..Default::default()
    };
    let tri_expected =
        count_parallel_mutex_baseline(&tri_plan, graph, PARALLEL_THREADS, PARALLEL_PREFIX_DEPTH);
    assert_eq!(count_parallel(&tri_plan, graph, tri_options), tri_expected);
    assert_eq!(
        count_parallel_with_hubs(&tri_plan, &hubs, tri_options),
        tri_expected
    );

    c.bench_function("parallel_count_fine/mutex_injector_baseline", |bench| {
        bench.iter(|| {
            black_box(count_parallel_mutex_baseline(
                &tri_plan,
                black_box(graph),
                PARALLEL_THREADS,
                PARALLEL_PREFIX_DEPTH,
            ))
        })
    });
    c.bench_function("parallel_count_fine/chase_lev", |bench| {
        bench.iter(|| black_box(count_parallel(&tri_plan, black_box(graph), tri_options)))
    });
    c.bench_function("parallel_count_fine/chase_lev_hub", |bench| {
        bench.iter(|| {
            black_box(count_parallel_with_hubs(
                &tri_plan,
                black_box(&hubs),
                tri_options,
            ))
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_intersections, bench_intersection_kernels, bench_triangles, bench_preprocessing, bench_parallel_counting
);

fn main() {
    micro();

    let results = criterion::take_results();
    let records: Vec<BenchRecord> = results
        .iter()
        .map(|r| {
            let (graph, threads) = if r.id.starts_with("parallel_count") {
                (PARALLEL_GRAPH_NAME.to_string(), PARALLEL_THREADS)
            } else if r.id.starts_with("triangles/") {
                ("power_law_2k".to_string(), 1)
            } else {
                ("-".to_string(), 1)
            };
            BenchRecord::new(r.id.clone(), r.mean_ns, graph, threads)
        })
        .collect();
    write_bench_json("BENCH_micro.json", &records).expect("write BENCH_micro.json");

    let mean_of = |op: &str| {
        records
            .iter()
            .find(|r| r.op == op)
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    for group in ["parallel_count", "parallel_count_fine"] {
        let baseline = mean_of(&format!("{group}/mutex_injector_baseline"));
        let chase_lev = mean_of(&format!("{group}/chase_lev"));
        let hub = mean_of(&format!("{group}/chase_lev_hub"));
        println!(
            "{group} speedup vs mutex-injector baseline: chase_lev {:.2}x, chase_lev+hub {:.2}x",
            baseline / chase_lev,
            baseline / hub
        );
    }
    println!(
        "intersection kernels: dispatching to `{}`",
        vertex_set::active_kernel().name()
    );
    for op in [
        "merge_count",
        "merge_into",
        "gallop_count",
        "gallop_into",
        "count_below",
    ] {
        let scalar = mean_of(&format!("intersect_kernel/{op}_scalar"));
        let auto = mean_of(&format!("intersect_kernel/{op}_auto"));
        println!(
            "intersect_kernel/{op}: scalar {scalar:.1} ns, auto {auto:.1} ns, speedup {:.2}x",
            scalar / auto
        );
    }
    let scalar_e2e = mean_of("parallel_count/chase_lev_scalar_kernels");
    let auto_e2e = mean_of("parallel_count/chase_lev");
    println!(
        "parallel_count (house, 8 threads): scalar kernels {:.2}x slower than auto",
        scalar_e2e / auto_e2e
    );
}
