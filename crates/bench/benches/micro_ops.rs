//! Criterion micro-benchmarks of the kernels every experiment rests on:
//! sorted-set intersection (merge and galloping regimes), triangle counting,
//! restriction-set generation, and plan compilation. These are not paper
//! figures; they exist to catch performance regressions in the substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphpi_core::config::Configuration;
use graphpi_core::schedule::Schedule;
use graphpi_graph::{generators, triangles, vertex_set};
use graphpi_pattern::prefab;
use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions, RestrictionSet};

fn bench_intersections(c: &mut Criterion) {
    let a: Vec<u32> = (0..10_000).step_by(2).collect();
    let b: Vec<u32> = (0..10_000).step_by(3).collect();
    let small: Vec<u32> = (0..10_000).step_by(97).collect();
    let mut out = Vec::new();
    c.bench_function("intersect/merge_balanced", |bench| {
        bench.iter(|| {
            vertex_set::intersect_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("intersect/galloping_skewed", |bench| {
        bench.iter(|| {
            vertex_set::intersect_into(black_box(&small), black_box(&a), &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("intersect/count_only", |bench| {
        bench.iter(|| black_box(vertex_set::intersect_count(black_box(&a), black_box(&b))))
    });
}

fn bench_triangles(c: &mut Criterion) {
    let graph = generators::power_law(2_000, 8, 7);
    c.bench_function("triangles/power_law_2k", |bench| {
        bench.iter(|| black_box(triangles::count_triangles(black_box(&graph))))
    });
}

fn bench_preprocessing(c: &mut Criterion) {
    c.bench_function("restrictions/generate_p3", |bench| {
        bench.iter(|| {
            black_box(generate_restriction_sets(
                &prefab::p3(),
                GenerationOptions::default(),
            ))
        })
    });
    let pattern = prefab::house();
    c.bench_function("plan/compile_house", |bench| {
        bench.iter(|| {
            let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
            let config = Configuration::new(
                pattern.clone(),
                schedule,
                RestrictionSet::from_pairs(&[(0, 1)]),
            );
            black_box(config.compile())
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_intersections, bench_triangles, bench_preprocessing
);
criterion_main!(micro);
