//! Figure 10: counting embeddings with and without the Inclusion-Exclusion
//! Principle.
//!
//! Both runs use the same configuration selected by GraphPi's performance
//! model (so the comparison isolates the IEP optimisation, exactly as in the
//! paper) and run sequentially.

use graphpi_bench::{banner, bench_datasets, measure, scale_from_env, secs, Table};
use graphpi_core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi_pattern::prefab;

fn main() {
    let scale = scale_from_env();
    let datasets = bench_datasets(scale);
    banner(
        "Figure 10 — counting with vs without the Inclusion-Exclusion Principle",
        "same model-selected configuration for both runs; sequential execution",
    );

    let patterns = prefab::evaluation_patterns();
    let mut table = Table::new(vec![
        "graph",
        "pattern",
        "k",
        "count",
        "no-IEP(s)",
        "IEP(s)",
        "speedup",
    ]);
    let mut per_pattern_speedups: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();

    for dataset in &datasets {
        let engine = GraphPi::new(dataset.graph.clone());
        for (name, pattern) in &patterns {
            let plan = engine.plan(pattern, PlanOptions::default()).unwrap();
            let (without, t_without) = measure(|| {
                engine.execute_count(&plan.plan, CountOptions::sequential_enumeration())
            });
            let (with_iep, t_with) = measure(|| {
                engine.execute_count(
                    &plan.plan,
                    CountOptions {
                        use_iep: true,
                        threads: 1,
                        ..CountOptions::default()
                    },
                )
            });
            assert_eq!(without, with_iep, "IEP mismatch on {name}/{}", dataset.name);
            let speedup = t_without.as_secs_f64() / t_with.as_secs_f64().max(1e-9);
            per_pattern_speedups.entry(name).or_default().push(speedup);
            table.row(vec![
                dataset.name.to_string(),
                name.to_string(),
                plan.plan.iep_suffix_len.to_string(),
                without.to_string(),
                secs(t_without),
                secs(t_with),
                format!("{speedup:.1}x"),
            ]);
        }
    }
    println!();
    table.print();

    println!("\nAverage IEP speedup per pattern (paper reports 4.3x / 457.8x / 320.5x / 265.5x / 11.1x / 10.1x):");
    for (name, speedups) in per_pattern_speedups {
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("  {name}: {avg:.1}x");
    }
}
