//! Ingest-path benchmarks: text parse vs binary copy-load vs zero-copy
//! mmap open, and serial vs parallel CSR construction — the data-plane
//! costs that gate every dataset-scale experiment.
//!
//! Results are printed *and* written to `BENCH_loading.json` as
//! `{op, ns_per_iter, graph, threads}` records (`GRAPHPI_BENCH_JSON_DIR`
//! overrides the output directory), mirroring `BENCH_micro.json`.
//!
//! Correctness is asserted before anything is timed: every load path must
//! produce a graph with the same `GraphStats::fingerprint`, and the binary
//! paths must reproduce the saved graph exactly.

use criterion::{black_box, criterion_group, Criterion};
use graphpi_bench::{scale_from_env, write_bench_json, BenchRecord};
use graphpi_graph::builder::build_from_edge_slice;
use graphpi_graph::csr::VertexId;
use graphpi_graph::{generators, io, GraphStats};

/// Thread count used by the parallel-build bench: the available cores
/// (capped), but at least 2 so the parallel code path is always the one
/// being measured — on a single-core box this honestly reports its
/// orchestration overhead instead of silently collapsing to serial.
fn build_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 8)
}

/// The bench dataset: a power-law graph scaled by `GRAPHPI_BENCH_SCALE`
/// (~120k raw edges at scale 1.0 — large enough that parse, sort and
/// placement dominate thread orchestration).
fn dataset() -> graphpi_graph::CsrGraph {
    let scale = scale_from_env();
    let n = ((20_000.0 * scale) as usize).max(500);
    generators::power_law(n, 6, 0x10AD)
}

struct LoadFixture {
    dir: std::path::PathBuf,
    text_path: std::path::PathBuf,
    bin_path: std::path::PathBuf,
    edges: Vec<(VertexId, VertexId)>,
}

impl LoadFixture {
    fn create() -> Self {
        let graph = dataset();
        let dir =
            std::env::temp_dir().join(format!("graphpi_loading_bench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create bench dir");
        let text_path = dir.join("bench_graph.txt");
        let bin_path = dir.join("bench_graph.bin");
        io::save_edge_list(&graph, &text_path).expect("write text");
        io::save_binary(&graph, &bin_path).expect("write binary");
        let edges: Vec<(VertexId, VertexId)> = graph.edges().collect();

        // Agreement gate: all load paths must describe the same graph.
        let reference = GraphStats::compute(&graph).fingerprint();
        let text = io::load_edge_list(&text_path).expect("text load");
        assert_eq!(GraphStats::compute(&text).fingerprint(), reference);
        let copied = io::load_binary(&bin_path).expect("binary load");
        assert_eq!(copied, graph);
        let mapped = io::load_binary_mmap(&bin_path).expect("mmap load");
        assert_eq!(mapped, graph);
        assert_eq!(GraphStats::compute(&mapped).fingerprint(), reference);
        // And both build paths must construct it identically.
        assert_eq!(build_from_edge_slice(&edges, 0, 1), graph);
        assert_eq!(build_from_edge_slice(&edges, 0, build_threads()), graph);

        println!(
            "loading bench graph: {} vertices, {} edges, binary {} bytes, mmap={}",
            graph.num_vertices(),
            graph.num_edges(),
            std::fs::metadata(&bin_path).map(|m| m.len()).unwrap_or(0),
            mapped.is_memory_mapped(),
        );
        Self {
            dir,
            text_path,
            bin_path,
            edges,
        }
    }
}

fn bench_loading(c: &mut Criterion) {
    let fixture = LoadFixture::create();

    c.bench_function("loading/text_load", |bench| {
        bench.iter(|| black_box(io::load_edge_list(&fixture.text_path).expect("text load")))
    });
    c.bench_function("loading/binary_load_copy", |bench| {
        bench.iter(|| black_box(io::load_binary(&fixture.bin_path).expect("binary load")))
    });
    c.bench_function("loading/binary_load_mmap", |bench| {
        bench.iter(|| black_box(io::load_binary_mmap(&fixture.bin_path).expect("mmap load")))
    });
    c.bench_function("loading/build_serial", |bench| {
        bench.iter(|| black_box(build_from_edge_slice(black_box(&fixture.edges), 0, 1)))
    });
    let threads = build_threads();
    c.bench_function("loading/build_parallel", |bench| {
        bench.iter(|| black_box(build_from_edge_slice(black_box(&fixture.edges), 0, threads)))
    });
    c.bench_function("loading/convert_text_to_binary", |bench| {
        let out = fixture.dir.join("bench_convert.bin");
        bench.iter(|| {
            let g = io::load_edge_list(&fixture.text_path).expect("text load");
            io::save_binary(&g, &out).expect("binary save");
        })
    });

    std::fs::remove_dir_all(&fixture.dir).ok();
}

criterion_group!(
    name = loading;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_loading
);

fn main() {
    loading();

    let threads = build_threads();
    let records: Vec<BenchRecord> = criterion::take_results()
        .iter()
        .map(|r| {
            let t = if r.id == "loading/build_parallel" {
                threads
            } else {
                1
            };
            BenchRecord::new(r.id.clone(), r.mean_ns, "LoadBench", t)
        })
        .collect();
    write_bench_json("BENCH_loading.json", &records).expect("write BENCH_loading.json");

    let mean_of = |op: &str| {
        records
            .iter()
            .find(|r| r.op == op)
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    let text = mean_of("loading/text_load");
    let copy = mean_of("loading/binary_load_copy");
    let mmap = mean_of("loading/binary_load_mmap");
    let serial = mean_of("loading/build_serial");
    let parallel = mean_of("loading/build_parallel");
    println!(
        "load speedup vs text parse: binary copy {:.2}x, mmap {:.2}x",
        text / copy,
        text / mmap,
    );
    println!(
        "build speedup vs serial: parallel({threads} threads) {:.2}x",
        serial / parallel,
    );
    // The headline the ingest overhaul is judged on: the old pipeline
    // (text parse + serial build) vs the new one (mmap open + parallel
    // build; the mmap number already contains full validation).
    println!(
        "ingest pipeline speedup: (text+serial {:.2} ms) / (mmap+parallel {:.2} ms) = {:.2}x",
        (text + serial) / 1e6,
        (mmap + parallel) / 1e6,
        (text + serial) / (mmap + parallel),
    );
}
