//! Table II: speedup obtained with the better restriction set selected by
//! GraphPi over GraphZero's single set, on identical schedules.
//!
//! For P1, P2 and P4 on the Wiki-Vote and Patents stand-ins, every generated
//! schedule is run twice — once with the restriction set GraphPi's model
//! prefers for that schedule and once with GraphZero's set — and the average
//! and maximum speedups are reported over the schedules where the two sets
//! differ (the paper reports averages of 1.6x–2.5x and maxima up to 7.8x).

use graphpi_baseline::graphzero::graphzero_restrictions;
use graphpi_bench::{banner, measure, patents, scale_from_env, wiki_vote, BenchDataset, Table};
use graphpi_core::config::Configuration;
use graphpi_core::engine::{CountOptions, GraphPi};
use graphpi_core::perf_model::{select_best, PerformanceModel};
use graphpi_core::schedule::efficient_schedules;
use graphpi_pattern::prefab;
use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions};
use rand::prelude::*;

const MAX_SCHEDULES: usize = 20;

fn main() {
    let scale = scale_from_env();
    let datasets: Vec<BenchDataset> = vec![wiki_vote(scale * 0.5), patents(scale * 0.5)];
    banner(
        "Table II — GraphPi-selected restriction set vs GraphZero's, same schedule",
        "speedups averaged over schedules where the selected sets differ",
    );

    let patterns = vec![
        ("P1", prefab::p1()),
        ("P2", prefab::p2()),
        ("P4", prefab::p4()),
    ];

    let mut table = Table::new(vec![
        "graph",
        "pattern",
        "schedules compared",
        "avg speedup",
        "max speedup",
    ]);

    for dataset in &datasets {
        let engine = GraphPi::new(dataset.graph.clone());
        for (name, pattern) in &patterns {
            let gz_set = graphzero_restrictions(pattern);
            let mut sets = generate_restriction_sets(pattern, GenerationOptions::default());
            sets.sort_by_key(|s| s.len());
            sets.truncate(16);
            let model = PerformanceModel::new(*engine.stats(), pattern.num_vertices());

            let mut schedules = efficient_schedules(pattern);
            let mut rng = StdRng::seed_from_u64(0x7AB2);
            schedules.shuffle(&mut rng);
            schedules.truncate(MAX_SCHEDULES);

            let mut speedups = Vec::new();
            for schedule in &schedules {
                let candidates: Vec<Configuration> = sets
                    .iter()
                    .map(|set| Configuration::new(pattern.clone(), schedule.clone(), set.clone()))
                    .collect();
                let (best_idx, _) = select_best(&model, &candidates);
                let graphpi_set = sets[best_idx].clone();
                if graphpi_set == gz_set {
                    continue; // identical sets: not part of Table II
                }
                let pi_plan =
                    Configuration::new(pattern.clone(), schedule.clone(), graphpi_set).compile();
                let gz_plan =
                    Configuration::new(pattern.clone(), schedule.clone(), gz_set.clone()).compile();
                let (pi_count, pi_time) = measure(|| {
                    engine.execute_count(&pi_plan, CountOptions::sequential_enumeration())
                });
                let (gz_count, gz_time) = measure(|| {
                    engine.execute_count(&gz_plan, CountOptions::sequential_enumeration())
                });
                assert_eq!(pi_count, gz_count, "{name} on {}", dataset.name);
                speedups.push(gz_time.as_secs_f64() / pi_time.as_secs_f64().max(1e-9));
            }
            if speedups.is_empty() {
                table.row(vec![
                    dataset.name.to_string(),
                    name.to_string(),
                    "0".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                continue;
            }
            let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
            let max = speedups.iter().cloned().fold(0.0f64, f64::max);
            table.row(vec![
                dataset.name.to_string(),
                name.to_string(),
                speedups.len().to_string(),
                format!("{avg:.2}x"),
                format!("{max:.2}x"),
            ]);
        }
    }
    println!();
    table.print();
    println!("\nPaper reference (Table II): averages 1.60x-2.46x, maxima 2.39x-7.82x.");
}
