//! Dynamic-graph benchmarks: the three costs the durable mutable-graph
//! subsystem is judged on.
//!
//! * **Apply throughput** — committing one 64-edge batch through
//!   [`DynamicEngine::apply`] (overlay commit + stats recompute + next
//!   generation's engine build), volatile vs WAL-backed durable (the
//!   durable number buys an fsync'd log record), plus the raw
//!   graph-layer [`DynamicGraph::commit`] for reference.
//! * **Query latency vs overlay size** — a triangle count against a
//!   pinned generation whose overlay holds 0 / 4k / 32k uncompacted
//!   edges. The design claim under test: queries run on the generation's
//!   materialised CSR, so an overlay-resident edge costs exactly what a
//!   base edge costs — latency tracks the merged graph's size, never the
//!   overlay's bookkeeping.
//! * **Recovery time vs WAL length** — [`DurableGraph::open`] replaying
//!   a clean log of 16 / 256 / 2048 batches (each iteration re-opens the
//!   same WAL; the per-iteration cost includes one clone of the initial
//!   graph, identical across lengths).
//!
//! Results are printed *and* written to `BENCH_dynamic.json` as
//! `{op, ns_per_iter, graph, threads}` records (`GRAPHPI_BENCH_JSON_DIR`
//! overrides the output directory), mirroring `BENCH_loading.json`.

use criterion::{black_box, criterion_group, Criterion};
use graphpi_bench::{scale_from_env, write_bench_json, BenchRecord};
use graphpi_core::DynamicEngine;
use graphpi_graph::delta::DynamicGraph;
use graphpi_graph::wal::{DurableGraph, DurableGraphOptions};
use graphpi_graph::{generators, CsrGraph, EdgeBatch};
use graphpi_pattern::prefab;

/// The bench dataset: a power-law graph scaled by `GRAPHPI_BENCH_SCALE`
/// (~20k edges at scale 1.0 — big enough that the per-generation stats
/// recompute and engine build are honest, small enough to iterate).
fn dataset() -> CsrGraph {
    let scale = scale_from_env();
    let n = ((4_000.0 * scale) as usize).max(300);
    generators::power_law(n, 5, 0xD41A)
}

/// A deterministic 64-edge insert batch (round-keyed, hub-heavy like real
/// update streams) and the batch that removes exactly those edges again —
/// alternating the two keeps the graph bounded across bench iterations.
fn flip_batches(n: u32, round: u32) -> (EdgeBatch, EdgeBatch) {
    let mut insert = EdgeBatch::new();
    let mut delete = EdgeBatch::new();
    for k in 0..64u32 {
        let u = (round * 131 + k * 7) % n;
        let v = (u.wrapping_mul(2_654_435_761) ^ (k + 13)) % n;
        insert.insert(u, v);
        delete.delete(u, v);
    }
    (insert, delete)
}

/// Builds a volatile engine whose current generation carries `target`
/// overlay-resident inserted edges (below the compaction threshold, so
/// they stay in the overlay rather than folding into the base CSR).
fn engine_with_overlay(graph: &CsrGraph, target: u32) -> (DynamicEngine, u32) {
    let n = u32::try_from(graph.num_vertices()).unwrap();
    let engine = DynamicEngine::volatile(graph.clone());
    if target == 0 {
        return (engine, 0);
    }
    let mut batch = EdgeBatch::new();
    for i in 0..target {
        let u = (i * 48_271) % n;
        let v = (u ^ (i * 16_807 + 1)) % n;
        batch.insert(u, v);
    }
    let report = engine.apply(&batch).expect("overlay batch");
    (engine, report.inserted)
}

fn bench_dynamic(c: &mut Criterion) {
    let graph = dataset();
    let n = u32::try_from(graph.num_vertices()).unwrap();
    println!(
        "dynamic bench graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let dir = std::env::temp_dir().join(format!("graphpi_dynamic_bench_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench dir");

    // --- Apply throughput -------------------------------------------------
    {
        let overlay = DynamicGraph::new(graph.clone());
        let mut round = 0u32;
        c.bench_function("dynamic/commit_overlay", |bench| {
            bench.iter(|| {
                let (insert, delete) = flip_batches(n, round % 512);
                round += 1;
                black_box(overlay.commit(&insert).expect("insert commit"));
                black_box(overlay.commit(&delete).expect("delete commit"));
            })
        });
    }
    {
        let engine = DynamicEngine::volatile(graph.clone());
        let mut round = 0u32;
        c.bench_function("dynamic/apply_volatile", |bench| {
            bench.iter(|| {
                let (insert, delete) = flip_batches(n, round % 512);
                round += 1;
                black_box(engine.apply(&insert).expect("insert apply"));
                black_box(engine.apply(&delete).expect("delete apply"));
            })
        });
    }
    {
        // A huge checkpoint threshold keeps the measurement a pure
        // append+fsync+rebuild — no background checkpoint folds in.
        let options = DurableGraphOptions {
            checkpoint_wal_bytes: u64::MAX,
            ..DurableGraphOptions::default()
        };
        let (engine, _report) =
            DynamicEngine::durable(graph.clone(), dir.join("apply.wal"), options)
                .expect("open durable engine");
        let mut round = 0u32;
        c.bench_function("dynamic/apply_durable", |bench| {
            bench.iter(|| {
                let (insert, delete) = flip_batches(n, round % 512);
                round += 1;
                black_box(engine.apply(&insert).expect("insert apply"));
                black_box(engine.apply(&delete).expect("delete apply"));
            })
        });
    }

    // --- Query latency vs overlay size ------------------------------------
    let triangle = prefab::triangle();
    for target in [0u32, 4_096, 32_768] {
        let (engine, resident) = engine_with_overlay(&graph, target);
        let pin = engine.pin();
        println!("overlay target {target}: {resident} overlay-resident edges");
        c.bench_function(&format!("dynamic/query_overlay_{target}"), |bench| {
            bench.iter(|| black_box(pin.engine().count(&triangle).expect("triangle count")))
        });
    }

    // --- Recovery time vs WAL length --------------------------------------
    for batches in [16u32, 256, 2_048] {
        let wal = dir.join(format!("recover_{batches}.wal"));
        {
            let (durable, report) =
                DurableGraph::open(graph.clone(), &wal, DurableGraphOptions::default())
                    .expect("create recovery WAL");
            assert!(report.created);
            for round in 0..batches {
                let mut batch = EdgeBatch::new();
                for k in 0..8u32 {
                    let u = (round * 17 + k * 3) % n;
                    batch.insert(u, (u * 31 + round + 1) % n);
                }
                durable.commit(&batch).expect("seed recovery WAL");
            }
        }
        // One untimed open checks the log replays end to end.
        let (_reopened, report) =
            DurableGraph::open(graph.clone(), &wal, DurableGraphOptions::default())
                .expect("reopen recovery WAL");
        assert_eq!(report.replayed_batches, batches as usize);
        assert_eq!(report.truncated_bytes, 0);
        c.bench_function(&format!("dynamic/recover_wal_{batches}"), |bench| {
            bench.iter(|| {
                black_box(
                    DurableGraph::open(graph.clone(), &wal, DurableGraphOptions::default())
                        .expect("timed recovery"),
                )
            })
        });
    }

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    name = dynamic;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_dynamic
);

fn main() {
    dynamic();

    let records: Vec<BenchRecord> = criterion::take_results()
        .iter()
        .map(|r| BenchRecord::new(r.id.clone(), r.mean_ns, "DynBench", 1))
        .collect();
    write_bench_json("BENCH_dynamic.json", &records).expect("write BENCH_dynamic.json");

    let mean_of = |op: &str| {
        records
            .iter()
            .find(|r| r.op == op)
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    let volatile = mean_of("dynamic/apply_volatile");
    let durable = mean_of("dynamic/apply_durable");
    // Each apply iteration commits two 64-edge batches.
    println!(
        "apply throughput: volatile {:.0} batches/s, durable {:.0} batches/s \
         (durability overhead {:.2}x)",
        2.0 / (volatile / 1e9),
        2.0 / (durable / 1e9),
        durable / volatile,
    );
    let flat = mean_of("dynamic/query_overlay_0");
    let deep = mean_of("dynamic/query_overlay_32768");
    println!(
        "query latency, 0 -> 32k overlay edges: {:.2} ms -> {:.2} ms ({:.2}x)",
        flat / 1e6,
        deep / 1e6,
        deep / flat,
    );
    let short = mean_of("dynamic/recover_wal_16");
    let long = mean_of("dynamic/recover_wal_2048");
    println!(
        "recovery: 16 batches {:.2} ms, 2048 batches {:.2} ms \
         ({:.1} us marginal cost per batch)",
        short / 1e6,
        long / 1e6,
        (long - short) / 2_032.0 / 1e3,
    );
}
