//! Figure 2(b): the motivating example — execution time of different
//! combinations of schedules and restriction sets for the House pattern.
//!
//! The paper measures four combinations (two schedules × two restriction
//! sets) on the Patents graph and observes up to a 23.2x gap between the
//! best and the worst. This bench reproduces the experiment on the Patents
//! stand-in with the paper's schedule `A,C,B,D,E`, its alternative
//! `A,B,C,D,E`, and the two single-restriction sets `id(A) > id(B)` and
//! `id(C) > id(D)` discussed in Section II-B, plus every combination's
//! model-predicted cost so the ranking can be compared with measurement.

use graphpi_bench::{banner, measure, patents, scale_from_env, secs, Table};
use graphpi_core::config::Configuration;
use graphpi_core::engine::{CountOptions, GraphPi};
use graphpi_core::schedule::Schedule;
use graphpi_pattern::prefab;
use graphpi_pattern::restriction::RestrictionSet;

fn main() {
    let scale = scale_from_env();
    let dataset = patents(scale);
    banner(
        "Figure 2(b) — schedule x restriction combinations for the House pattern",
        &format!("dataset: {}", dataset.describe()),
    );

    let pattern = prefab::house();
    let engine = GraphPi::new(dataset.graph.clone());

    // Schedules from Section II-B: A,C,B,D,E (used in Figure 2) and the
    // Figure 5 schedule A,B,C,D,E.
    let schedules = vec![
        ("A,C,B,D,E", Schedule::new(&pattern, vec![0, 2, 1, 3, 4])),
        ("A,B,C,D,E", Schedule::new(&pattern, vec![0, 1, 2, 3, 4])),
    ];
    // Restriction sets from Section II-B: id(A) > id(B) and id(C) > id(D).
    let restriction_sets = vec![
        ("id(A)>id(B)", RestrictionSet::from_pairs(&[(0, 1)])),
        ("id(C)>id(D)", RestrictionSet::from_pairs(&[(2, 3)])),
    ];

    let mut table = Table::new(vec![
        "schedule",
        "restriction",
        "count",
        "time(s)",
        "predicted cost",
    ]);
    let mut results = Vec::new();
    for (sname, schedule) in &schedules {
        for (rname, set) in &restriction_sets {
            let config = Configuration::new(pattern.clone(), schedule.clone(), set.clone());
            let predicted = engine.predict(&config).total;
            let plan = config.compile();
            let (count, elapsed) =
                measure(|| engine.execute_count(&plan, CountOptions::sequential_enumeration()));
            results.push(elapsed.as_secs_f64());
            table.row(vec![
                sname.to_string(),
                rname.to_string(),
                count.to_string(),
                secs(elapsed),
                format!("{predicted:.3e}"),
            ]);
        }
    }
    println!();
    table.print();

    let best = results.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = results.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nBest-to-worst gap: {:.1}x (the paper reports up to 23.2x on the full Patents graph)",
        worst / best.max(1e-9)
    );
}
