//! Serving-path benchmark: cold spawn-per-call counting vs the warm
//! [`Session`] path (persistent worker pool + compiled-plan cache).
//!
//! Every query in the spawn-per-call column pays the two fixed costs the
//! paper's batch setting never amortized: planning (schedule enumeration +
//! restriction generation + cost-model ranking) and spawning/joining a
//! fresh set of worker threads. The warm column runs the same query on a
//! [`Session`]: the plan comes from the LRU cache and the workers are
//! already parked on the pool, so the per-query cost is the matching work
//! itself.
//!
//! The query is the paper's House pattern on a deliberately small
//! power-law stand-in, because the serving regime this PR targets is
//! *many small queries*, where fixed costs dominate. Results are printed
//! and written to `BENCH_serving.json` as
//! `{op, ns_per_iter, graph, threads}` records (`serving/spawn_per_call`,
//! `serving/session_cold`, `serving/session_warm`), with queries/sec
//! derivable as `1e9 / ns_per_iter`.
//!
//! Note one deliberate asymmetry: the warm path is *caller-runs* — the
//! submitting thread streams tasks and then helps drain them (that is part
//! of the pool's design, not a measurement artifact) — whereas the scoped
//! path's submitter only streams. The comparison is end-to-end per-query
//! latency of the two real APIs, not an equal-resource scheduler study.
//!
//! The run asserts warm < spawn-per-call at every thread count, so the CI
//! bench smoke step fails if the serving path ever regresses below the
//! cold path.
//!
//! A second section measures the **concurrent-client** regime the
//! multi-tenant pool exists for: 1/2/4/8 client threads hammering one
//! shared warm session (`serving/multi_client_warm`, the `threads` field
//! carries the client count) against the submit-lock-serialized baseline
//! the pool used to be (`serving/multi_client_serialized`, emulated by an
//! external mutex around every query). On a box with ≥ 4 cores at full
//! bench scale, 4-client concurrent throughput is asserted ≥ 2× the
//! serialized baseline; on smaller boxes the ratio is reported but not
//! enforced (with one core there is no parallelism for concurrency to
//! exploit).

use graphpi_bench::{
    banner, scale_from_env, serving_dataset, write_bench_json, BenchRecord, Table,
};
use graphpi_core::config::PoolOptions;
use graphpi_core::engine::{CountOptions, GraphPi, PlanOptions, Session};
use graphpi_pattern::prefab;
use std::time::Instant;

/// Thread counts of the pool/spawn comparison (the acceptance number is the
/// 8-thread row).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Cold-path iterations per thread count (each spawns and joins `threads`
/// OS threads, so keep this moderate).
const SPAWN_ITERS: usize = 15;

/// Warm-path iterations per thread count.
const WARM_ITERS: usize = 60;

/// Outer-loop prefix depth. Serving queries are small, so coarse depth-1
/// tasks keep queue traffic (and worker wake-ups) minimal; both sides of
/// the comparison use the same depth.
const PREFIX_DEPTH: usize = 1;

fn time_queries(iters: usize, mut query: impl FnMut() -> u64) -> (u64, f64) {
    let mut count = 0;
    let start = Instant::now();
    for _ in 0..iters {
        count = query();
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (count, ns)
}

fn session_for(engine: &GraphPi, threads: usize) -> Session<'_> {
    engine.session_with(
        PoolOptions {
            threads,
            ..PoolOptions::default()
        },
        PlanOptions::default(),
        CountOptions {
            use_iep: false,
            prefix_depth: Some(PREFIX_DEPTH),
            ..CountOptions::default()
        },
    )
}

fn main() {
    let scale = scale_from_env();
    let dataset = serving_dataset(scale);
    banner(
        "Serving path: spawn-per-call vs persistent pool + plan cache",
        &format!(
            "house pattern, {} queries/cell; {}",
            WARM_ITERS,
            dataset.describe()
        ),
    );
    let engine = GraphPi::new(dataset.graph.clone());
    let pattern = prefab::house();

    let mut table = Table::new(vec![
        "threads",
        "spawn/call",
        "session cold",
        "session warm",
        "warm q/s",
        "speedup",
    ]);
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut expected = None;
    let mut ratio_at_8 = None;

    for &threads in &THREAD_COUNTS {
        let count_options = CountOptions {
            threads,
            use_iep: false,
            prefix_depth: Some(PREFIX_DEPTH),
            ..CountOptions::default()
        };
        // Cold path: plan + scoped spawn/join, once per query.
        let (spawn_count, spawn_ns) = time_queries(SPAWN_ITERS, || {
            let plan = engine.plan(&pattern, PlanOptions::default()).expect("plan");
            engine.execute_count(&plan.plan, count_options)
        });

        // Session cold: pool spawn + first planning miss, amortized over
        // the session lifetime — reported as the one-off setup cost.
        let cold_start = Instant::now();
        let session = session_for(&engine, threads);
        let cold_count = session.count(&pattern).expect("cold count");
        let cold_ns = cold_start.elapsed().as_nanos() as f64;

        // Warm path: cached plan, parked workers.
        let (warm_count, warm_ns) = time_queries(WARM_ITERS, || session.count(&pattern).unwrap());

        assert_eq!(spawn_count, cold_count, "cold paths disagree");
        assert_eq!(spawn_count, warm_count, "pooled count diverged");
        let expected = *expected.get_or_insert(spawn_count);
        assert_eq!(spawn_count, expected, "count changed across thread counts");
        assert!(
            warm_ns < spawn_ns,
            "warm serving path ({warm_ns:.0} ns/query) must beat spawn-per-call \
             ({spawn_ns:.0} ns/query) at {threads} threads"
        );
        if threads == 8 {
            ratio_at_8 = Some(spawn_ns / warm_ns);
        }

        table.row(vec![
            format!("{threads}"),
            format!("{:.1} us", spawn_ns / 1e3),
            format!("{:.1} us", cold_ns / 1e3),
            format!("{:.1} us", warm_ns / 1e3),
            format!("{:.0}", 1e9 / warm_ns),
            format!("{:.1}x", spawn_ns / warm_ns),
        ]);
        let graph = dataset.name.to_string();
        records.push(BenchRecord::new(
            "serving/spawn_per_call",
            spawn_ns,
            graph.clone(),
            threads,
        ));
        records.push(BenchRecord::new(
            "serving/session_cold",
            cold_ns,
            graph.clone(),
            threads,
        ));
        records.push(BenchRecord::new(
            "serving/session_warm",
            warm_ns,
            graph,
            threads,
        ));
    }

    table.print();
    println!(
        "\nembeddings per query: {} (bit-identical across spawn, cold and warm paths)",
        expected.unwrap_or(0)
    );
    if let Some(ratio) = ratio_at_8 {
        println!("8-thread warm speedup over spawn-per-call: {ratio:.1}x");
    }

    bench_concurrent_clients(&engine, &pattern, dataset.name, &mut records);

    write_bench_json("BENCH_serving.json", &records).expect("write BENCH_serving.json");
}

/// Client thread counts of the concurrency matrix (the acceptance number is
/// the 4-client row).
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Warm queries each client runs per cell.
const CLIENT_ITERS: usize = 30;

/// Pool workers backing the shared session in the concurrency matrix.
const CONCURRENT_POOL_THREADS: usize = 4;

/// Times `clients` threads each running [`CLIENT_ITERS`] warm queries on
/// the shared session, asserting every count; returns aggregate ns/query.
/// `serialize` wraps each query in one external mutex, reproducing the
/// one-job-at-a-time behavior of the pre-multi-tenant pool as the baseline.
fn run_clients(
    session: &Session<'_>,
    pattern: &graphpi_pattern::Pattern,
    clients: usize,
    expected: u64,
    serialize: bool,
) -> f64 {
    let submit_lock = std::sync::Mutex::new(());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let submit_lock = &submit_lock;
            scope.spawn(move || {
                for _ in 0..CLIENT_ITERS {
                    let guard = serialize.then(|| submit_lock.lock().expect("submit lock"));
                    let got = session.count(pattern).expect("client count");
                    drop(guard);
                    assert_eq!(got, expected, "client count diverged");
                }
            });
        }
    });
    start.elapsed().as_nanos() as f64 / (clients * CLIENT_ITERS) as f64
}

/// The concurrent-client section: shared warm session, concurrent vs
/// externally-serialized throughput at 1/2/4/8 clients.
fn bench_concurrent_clients(
    engine: &GraphPi,
    pattern: &graphpi_pattern::Pattern,
    graph: &str,
    records: &mut Vec<BenchRecord>,
) {
    let session = engine.session_with(
        PoolOptions {
            threads: CONCURRENT_POOL_THREADS,
            max_in_flight: CLIENT_COUNTS[CLIENT_COUNTS.len() - 1],
            ..PoolOptions::default()
        },
        PlanOptions::default(),
        CountOptions {
            use_iep: false,
            prefix_depth: Some(PREFIX_DEPTH),
            ..CountOptions::default()
        },
    );
    let expected = session.count(pattern).expect("warm-up count");

    banner(
        "Concurrent clients: multi-tenant pool vs submit-lock-serialized baseline",
        &format!(
            "house pattern, shared warm session, {CONCURRENT_POOL_THREADS} pool workers, \
             {CLIENT_ITERS} queries/client"
        ),
    );
    let mut table = Table::new(vec![
        "clients",
        "serialized",
        "concurrent",
        "agg q/s",
        "speedup",
    ]);
    let mut ratio_at_4 = None;
    for &clients in &CLIENT_COUNTS {
        let serialized_ns = run_clients(&session, pattern, clients, expected, true);
        let concurrent_ns = run_clients(&session, pattern, clients, expected, false);
        let ratio = serialized_ns / concurrent_ns;
        if clients == 4 {
            ratio_at_4 = Some(ratio);
        }
        table.row(vec![
            format!("{clients}"),
            format!("{:.1} us", serialized_ns / 1e3),
            format!("{:.1} us", concurrent_ns / 1e3),
            format!("{:.0}", 1e9 / concurrent_ns),
            format!("{ratio:.1}x"),
        ]);
        records.push(BenchRecord::new(
            "serving/multi_client_serialized",
            serialized_ns,
            graph.to_string(),
            clients,
        ));
        records.push(BenchRecord::new(
            "serving/multi_client_warm",
            concurrent_ns,
            graph.to_string(),
            clients,
        ));
    }
    table.print();
    println!("\nembeddings per query: {expected} (bit-identical across every client and mode)");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Some(ratio) = ratio_at_4 {
        println!("4-client concurrent speedup over serialized submission: {ratio:.1}x");
        if cores >= 4 && scale_from_env() >= 1.0 {
            assert!(
                ratio >= 2.0,
                "4-client concurrent throughput must be >= 2x the serialized baseline \
                 on a multi-core bench box (got {ratio:.2}x on {cores} cores)"
            );
        } else {
            println!(
                "(ratio not enforced: {cores} core(s), scale {:.1})",
                scale_from_env()
            );
        }
    }
}
