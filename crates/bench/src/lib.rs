//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! bench target in `benches/` (see `DESIGN.md` for the experiment index).
//! This library provides what those targets share:
//!
//! * [`bench_datasets`] — laptop-scale synthetic stand-ins for the paper's
//!   six datasets (Table I), with the original sizes kept for display. The
//!   `GRAPHPI_BENCH_SCALE` environment variable scales the stand-ins up or
//!   down (default `1.0`).
//! * [`measure`] — wall-clock timing of a closure.
//! * [`Table`] — fixed-width table printing so the bench output mirrors the
//!   paper's rows.
//! * [`BenchRecord`] / [`write_bench_json`] — machine-readable result
//!   emission (`BENCH_micro.json` and friends) so CI can track the perf
//!   trajectory across PRs.
//! * [`count_parallel_mutex_baseline`] — the pre-rewrite parallel runtime
//!   (upfront task materialisation + one mutex-guarded FIFO, one lock and
//!   one heap-allocated task per pop), kept as the comparison baseline for
//!   the work-stealing micro benches.

use graphpi_core::config::ExecutionPlan;
use graphpi_core::exec::interp;
use graphpi_graph::csr::{CsrGraph, VertexId};
use graphpi_graph::generators;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A stand-in dataset used by the benches.
#[derive(Debug, Clone)]
pub struct BenchDataset {
    /// Name of the original dataset in the paper.
    pub name: &'static str,
    /// |V| of the original dataset (for display).
    pub original_vertices: u64,
    /// |E| of the original dataset (for display).
    pub original_edges: u64,
    /// The synthetic stand-in graph.
    pub graph: CsrGraph,
}

impl BenchDataset {
    /// One-line description used in bench headers.
    pub fn describe(&self) -> String {
        format!(
            "{:<12} stand-in: |V|={:>6}, |E|={:>7}  (original: |V|={}, |E|={})",
            self.name,
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.original_vertices,
            self.original_edges,
        )
    }
}

/// Reads the bench scale factor from `GRAPHPI_BENCH_SCALE` (default 1.0,
/// clamped to `[0.1, 20.0]`).
pub fn scale_from_env() -> f64 {
    std::env::var("GRAPHPI_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.1, 20.0)
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(8.0) as usize
}

/// Wiki-Vote stand-in (small, dense, clustered).
pub fn wiki_vote(scale: f64) -> BenchDataset {
    BenchDataset {
        name: "Wiki-Vote",
        original_vertices: 7_100,
        original_edges: 100_800,
        graph: generators::power_law(scaled(600, scale), 8, 0xBEEF01),
    }
}

/// MiCo stand-in (co-authorship).
pub fn mico(scale: f64) -> BenchDataset {
    BenchDataset {
        name: "MiCo",
        original_vertices: 96_600,
        original_edges: 1_100_000,
        graph: generators::power_law(scaled(1_200, scale), 6, 0xBEEF02),
    }
}

/// Patents stand-in (sparse citation graph, low clustering).
pub fn patents(scale: f64) -> BenchDataset {
    let n = scaled(2_000, scale);
    BenchDataset {
        name: "Patents",
        original_vertices: 3_800_000,
        original_edges: 16_500_000,
        graph: generators::erdos_renyi(n, n * 5, 0xBEEF03),
    }
}

/// LiveJournal stand-in (social network).
pub fn livejournal(scale: f64) -> BenchDataset {
    BenchDataset {
        name: "LiveJournal",
        original_vertices: 4_000_000,
        original_edges: 34_700_000,
        graph: generators::power_law(scaled(1_500, scale), 6, 0xBEEF04),
    }
}

/// Orkut stand-in (dense social network).
pub fn orkut(scale: f64) -> BenchDataset {
    BenchDataset {
        name: "Orkut",
        original_vertices: 3_100_000,
        original_edges: 117_200_000,
        graph: generators::power_law(scaled(800, scale), 10, 0xBEEF05),
    }
}

/// Twitter stand-in (largest; used only for scalability, as in the paper).
pub fn twitter(scale: f64) -> BenchDataset {
    BenchDataset {
        name: "Twitter",
        original_vertices: 41_700_000,
        original_edges: 1_200_000_000,
        graph: generators::power_law(scaled(2_500, scale), 8, 0xBEEF06),
    }
}

/// Serving-workload stand-in: a modest power-law graph sized so that one
/// query's matching work is tens of microseconds — the regime where the
/// per-call fixed costs (planning, thread spawn/join) dominate and the
/// warm [`graphpi_core::engine::Session`] path pays off. Used by
/// `benches/serving.rs`.
pub fn serving_dataset(scale: f64) -> BenchDataset {
    let graph = generators::power_law(scaled(100, scale), 2, 0xBEEF07);
    BenchDataset {
        name: "Serving",
        // Purely synthetic — no real-world counterpart, so the "original"
        // metadata is the stand-in's own size.
        original_vertices: graph.num_vertices() as u64,
        original_edges: graph.num_edges(),
        graph,
    }
}

/// The five datasets used in the single-node comparison figures, in paper
/// order (Figure 8, Figure 10).
pub fn bench_datasets(scale: f64) -> Vec<BenchDataset> {
    vec![
        wiki_vote(scale),
        mico(scale),
        patents(scale),
        livejournal(scale),
        orkut(scale),
    ]
}

/// One machine-readable benchmark result row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Operation id (e.g. `parallel_count/chase_lev`).
    pub op: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Name of the graph the operation ran on (`-` for graph-free kernels).
    pub graph: String,
    /// Number of worker threads (1 for sequential kernels).
    pub threads: usize,
}

impl BenchRecord {
    /// Builds a record from a measured mean.
    pub fn new(
        op: impl Into<String>,
        ns_per_iter: f64,
        graph: impl Into<String>,
        threads: usize,
    ) -> Self {
        Self {
            op: op.into(),
            ns_per_iter,
            graph: graph.into(),
            threads,
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serialises the records as a JSON array of objects
/// (`[{"op": ..., "ns_per_iter": ..., "graph": ..., "threads": ...}, ...]`).
pub fn bench_records_to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"op\": \"{}\", \"ns_per_iter\": {:.1}, \"graph\": \"{}\", \"threads\": {}}}{}\n",
            json_escape(&r.op),
            r.ns_per_iter,
            json_escape(&r.graph),
            r.threads,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// Writes the records to `path` as JSON (see [`bench_records_to_json`]) and
/// prints where they went. `GRAPHPI_BENCH_JSON_DIR` overrides the directory;
/// the default is the process working directory, which under `cargo bench`
/// is this package's root (`crates/bench/`), not the workspace root.
pub fn write_bench_json(
    file_name: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("GRAPHPI_BENCH_JSON_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = dir.join(file_name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(bench_records_to_json(records).as_bytes())?;
    println!("\nwrote {} records to {}", records.len(), path.display());
    Ok(path)
}

/// The **pre-rewrite** parallel counting runtime, kept verbatim as the
/// micro-bench baseline: the master materialises every prefix task upfront
/// as a heap-allocated `Vec<VertexId>`, all workers drain one mutex-guarded
/// FIFO a single task at a time, and every task allocates fresh search
/// buffers. The speedup of `graphpi_core::exec::parallel::count_parallel`
/// over this function is what `BENCH_micro.json` tracks.
pub fn count_parallel_mutex_baseline(
    plan: &ExecutionPlan,
    graph: &CsrGraph,
    threads: usize,
    prefix_depth: usize,
) -> u64 {
    let n = plan.num_loops();
    assert!(threads >= 1 && prefix_depth >= 1 && prefix_depth <= n);
    let tasks = interp::enumerate_prefixes(plan, graph, prefix_depth);
    if tasks.is_empty() {
        return 0;
    }
    if prefix_depth == n {
        return tasks.len() as u64;
    }
    let queue: Mutex<VecDeque<Vec<VertexId>>> = Mutex::new(tasks.into());
    let total = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = 0u64;
                loop {
                    let task = queue.lock().expect("baseline queue poisoned").pop_front();
                    match task {
                        Some(prefix) => {
                            local += interp::count_from_prefix(plan, graph, &prefix);
                        }
                        None => break,
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

/// Runs a closure and returns its result with the elapsed wall-clock time.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration in seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A minimal fixed-width table printer for paper-style output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, notes: &str) {
    println!("\n==================================================================");
    println!("{title}");
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_ordered_and_nontrivial() {
        let ds = bench_datasets(0.5);
        let names: Vec<_> = ds.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["Wiki-Vote", "MiCo", "Patents", "LiveJournal", "Orkut"]
        );
        for d in &ds {
            assert!(d.graph.num_edges() > 100, "{} too small", d.name);
            assert!(!d.describe().is_empty());
        }
    }

    #[test]
    fn scale_changes_sizes() {
        let small = wiki_vote(0.5);
        let large = wiki_vote(2.0);
        assert!(large.graph.num_vertices() > small.graph.num_vertices());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["pattern", "time"]);
        t.row(vec!["P1", "0.123"]);
        t.row(vec!["P2-long-name", "45.6"]);
        let r = t.render();
        assert!(r.contains("pattern"));
        assert!(r.contains("P2-long-name"));
        assert_eq!(r.lines().count(), 4);
        let widths: Vec<usize> = r.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{r}");
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn measure_returns_value_and_time() {
        let (v, d) = measure(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d.as_secs_f64() >= 0.0);
        assert!(!secs(d).is_empty());
    }

    #[test]
    fn env_scale_defaults_to_one() {
        // The environment variable is normally unset in tests.
        let s = scale_from_env();
        assert!((0.1..=20.0).contains(&s));
    }

    #[test]
    fn bench_records_serialise_to_json() {
        let records = vec![
            BenchRecord::new("intersect/merge", 123.456, "-", 1),
            BenchRecord::new("parallel_count/chase_lev", 9.5e6, "LiveJournal", 8),
        ];
        let json = bench_records_to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"op\": \"intersect/merge\""));
        assert!(json.contains("\"graph\": \"LiveJournal\""));
        assert!(json.contains("\"threads\": 8"));
        // Exactly one separating comma between the two objects.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        let r = vec![BenchRecord::new("weird\"op\\\n", 1.0, "-", 1)];
        let json = bench_records_to_json(&r);
        assert!(json.contains("weird\\\"op\\\\\\u000a"));
    }

    #[test]
    fn mutex_baseline_matches_the_real_runtime() {
        use graphpi_core::config::Configuration;
        use graphpi_core::exec::parallel::{count_parallel, ParallelOptions};
        use graphpi_core::schedule::efficient_schedules;
        use graphpi_pattern::restriction::{generate_restriction_sets, GenerationOptions};

        let g = generators::power_law(150, 5, 42);
        let pattern = graphpi_pattern::prefab::house();
        let sets = generate_restriction_sets(&pattern, GenerationOptions::default());
        let schedules = efficient_schedules(&pattern);
        let plan = Configuration::new(pattern, schedules[0].clone(), sets[0].clone()).compile();
        let baseline = count_parallel_mutex_baseline(&plan, &g, 4, 2);
        let rewritten = count_parallel(
            &plan,
            &g,
            ParallelOptions {
                threads: 4,
                prefix_depth: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(baseline, rewritten);
        assert_eq!(
            baseline,
            graphpi_core::exec::interp::count_embeddings(&plan, &g)
        );
    }
}
