//! The GraphPi network server binary.
//!
//! ```text
//! graphpi-server --graph edges.txt [--listen 127.0.0.1:7431] [--threads N]
//!                [--cache-capacity N] [--max-in-flight N]
//!                [--max-connections N] [--queue-depth N]
//!                [--persist plans.gppc] [--snapshot-interval-ms N]
//!                [--wal graph.wal]
//! ```
//!
//! Loads the data graph once (text edge list or the checksummed binary
//! format, auto-sniffed; binary opens zero-copy via mmap), binds the
//! listener, prints one `listening on <addr>` line to stdout, and serves
//! the wire protocol documented in `docs/protocol.md` until a client sends
//! the `SHUTDOWN` opcode or the process receives SIGTERM/SIGINT. Both
//! shutdown paths are graceful: in-flight queries finish and, with
//! `--persist`, the plan cache's keys are written so the next start
//! re-plans them (warm start) before the first query arrives. With
//! `--snapshot-interval-ms`, the cache is additionally re-snapshotted in
//! the background while serving, so even `kill -9` loses at most one
//! interval of warmth.
//!
//! With `--wal <path>` the graph is **mutable and durable**: the v2
//! `UPDATE` opcode commits edge batches that are fsync'd to the
//! write-ahead log before they become visible, queries pin generation
//! snapshots, and a restart with the same `--graph` and `--wal` replays
//! the log back to a bit-identical graph (see the module docs of
//! `graphpi_graph::wal`). Without `--wal` the graph is immutable and
//! updates are refused with the `ReadOnly` error code.
//! `--checkpoint-interval-ms N` runs a background maintenance thread
//! that periodically folds the WAL into a checkpoint and compacts the
//! delta overlay, off the committing thread.
//!
//! With `--replica-of <addr>` (requires `--wal`) the server starts as a
//! **read replica**: it subscribes to the primary's replicated WAL
//! stream, applies every committed batch through its own durable engine
//! (so the replica is itself crash-safe), answers `COUNT`/`STATS`/
//! `HEALTH` (reporting its role and replication lag), and refuses
//! `UPDATE` with `NOT_PRIMARY` carrying the primary's address. `SIGUSR1`
//! or the v2 `PROMOTE` opcode (`graphpi-cli promote`) promotes it: the
//! subscription is sealed and the server flips to read-write primary.

use graphpi_core::config::{PoolOptions, ServeOptions};
use graphpi_core::engine::GraphPi;
use graphpi_core::net::{run_replication, ReplState, Server};
use graphpi_core::DynamicEngine;
use graphpi_graph::csr::CsrGraph;
use graphpi_graph::io;
use graphpi_graph::DurableGraphOptions;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: graphpi-server --graph <path> [--listen <addr:port>] \
[--threads N] [--cache-capacity N] [--max-in-flight N] [--max-connections N] \
[--queue-depth N] [--persist <path>] [--snapshot-interval-ms N] [--wal <path>] \
[--checkpoint-interval-ms N] [--replica-of <addr:port>]";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ServerArgs {
    graph_path: String,
    listen: String,
    threads: usize,
    cache_capacity: usize,
    max_in_flight: usize,
    max_connections: usize,
    queue_depth: usize,
    persist: Option<String>,
    snapshot_interval_ms: u64,
    wal: Option<String>,
    checkpoint_interval_ms: u64,
    replica_of: Option<String>,
}

fn parse_args(args: &[String]) -> Result<ServerArgs, String> {
    let mut graph_path = None;
    let mut listen = "127.0.0.1:7431".to_string();
    let mut threads = 0usize;
    let mut cache_capacity = 64usize;
    let mut max_in_flight = 0usize;
    let mut max_connections = 64usize;
    let mut queue_depth = 0usize;
    let mut persist = None;
    let mut snapshot_interval_ms = 0u64;
    let mut wal = None;
    let mut checkpoint_interval_ms = 0u64;
    let mut replica_of = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--graph" => graph_path = Some(iter.next().ok_or("--graph needs a value")?.clone()),
            "--listen" => listen = iter.next().ok_or("--listen needs a value")?.clone(),
            "--persist" => persist = Some(iter.next().ok_or("--persist needs a value")?.clone()),
            "--wal" => wal = Some(iter.next().ok_or("--wal needs a value")?.clone()),
            "--threads" => {
                threads = iter
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?
            }
            "--cache-capacity" => {
                cache_capacity = iter
                    .next()
                    .ok_or("--cache-capacity needs a value")?
                    .parse()
                    .map_err(|_| "--cache-capacity must be an integer".to_string())?
            }
            "--max-in-flight" => {
                max_in_flight = iter
                    .next()
                    .ok_or("--max-in-flight needs a value")?
                    .parse()
                    .map_err(|_| "--max-in-flight must be an integer".to_string())?
            }
            "--max-connections" => {
                max_connections = iter
                    .next()
                    .ok_or("--max-connections needs a value")?
                    .parse()
                    .map_err(|_| "--max-connections must be an integer".to_string())?
            }
            "--queue-depth" => {
                queue_depth = iter
                    .next()
                    .ok_or("--queue-depth needs a value")?
                    .parse()
                    .map_err(|_| "--queue-depth must be an integer".to_string())?
            }
            "--snapshot-interval-ms" => {
                snapshot_interval_ms = iter
                    .next()
                    .ok_or("--snapshot-interval-ms needs a value")?
                    .parse()
                    .map_err(|_| "--snapshot-interval-ms must be an integer".to_string())?
            }
            "--checkpoint-interval-ms" => {
                checkpoint_interval_ms = iter
                    .next()
                    .ok_or("--checkpoint-interval-ms needs a value")?
                    .parse()
                    .map_err(|_| "--checkpoint-interval-ms must be an integer".to_string())?
            }
            "--replica-of" => {
                replica_of = Some(iter.next().ok_or("--replica-of needs a value")?.clone())
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if wal.is_none() {
        if replica_of.is_some() {
            return Err(format!(
                "--replica-of needs --wal: the replica re-logs the stream it applies\n{USAGE}"
            ));
        }
        if checkpoint_interval_ms > 0 {
            return Err(format!(
                "--checkpoint-interval-ms needs --wal: only a durable graph checkpoints\n{USAGE}"
            ));
        }
    }
    Ok(ServerArgs {
        graph_path: graph_path.ok_or_else(|| format!("--graph is required\n{USAGE}"))?,
        listen,
        threads,
        cache_capacity,
        max_in_flight,
        max_connections,
        queue_depth,
        persist,
        snapshot_interval_ms,
        wal,
        checkpoint_interval_ms,
        replica_of,
    })
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    if io::sniff_is_binary(path) {
        io::load_binary_mmap(path).map_err(|e| format!("failed to load {path}: {e}"))
    } else {
        io::load_edge_list(path).map_err(|e| format!("failed to load {path}: {e}"))
    }
}

/// SIGTERM/SIGINT handling, in raw libc-less FFI (the same idiom as the
/// mmap loader). The handler itself only flips an atomic — the only
/// async-signal-safe thing it may do — and a watcher thread polls the
/// flag and triggers the normal graceful drain, so a plain `kill` gets
/// the exact same final-snapshot path as the SHUTDOWN opcode.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGNALLED: AtomicBool = AtomicBool::new(false);
    pub static PROMOTE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGUSR1: i32 = 10;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::Release);
    }

    extern "C" fn on_promote(_signum: i32) {
        PROMOTE.store(true, Ordering::Release);
    }

    /// Installs the flag-flipping handlers: SIGTERM/SIGINT drain,
    /// SIGUSR1 requests a replica promotion.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGUSR1, on_promote as *const () as usize);
        }
    }

    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::Acquire)
    }

    pub fn promote_signalled() -> bool {
        PROMOTE.load(Ordering::Acquire)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn signalled() -> bool {
        false
    }
    pub fn promote_signalled() -> bool {
        false
    }
}

fn run(args: ServerArgs) -> Result<(), String> {
    let load_start = std::time::Instant::now();
    let graph = load_graph(&args.graph_path)?;
    eprintln!(
        "graph: {} vertices, {} edges (loaded in {:?})",
        graph.num_vertices(),
        graph.num_edges(),
        load_start.elapsed()
    );
    // Open the serving engine: static (immutable) without --wal, durable
    // dynamic with it. The WAL opens before the listener binds, so
    // "listening on" is only printed once recovery has fully replayed.
    let mut static_engine = None;
    let mut dynamic_engine = None;
    match &args.wal {
        None => static_engine = Some(GraphPi::new(graph)),
        Some(wal_path) => {
            let (engine, recovery) =
                DynamicEngine::durable(graph, wal_path, DurableGraphOptions::default())
                    .map_err(|e| format!("failed to open WAL {wal_path}: {e}"))?;
            eprintln!(
                "wal: generation {} ({} batches replayed, checkpoint {}, {} torn bytes dropped)",
                recovery.generation,
                recovery.replayed_batches,
                if recovery.checkpoint_loaded {
                    "loaded"
                } else {
                    "absent"
                },
                recovery.truncated_bytes
            );
            dynamic_engine = Some(engine);
        }
    }

    let options = ServeOptions {
        pool: PoolOptions {
            threads: args.threads,
            cache_capacity: args.cache_capacity,
            max_in_flight: args.max_in_flight,
        },
        max_connections: args.max_connections,
        max_queue_depth: args.queue_depth,
        persist_path: args.persist.as_ref().map(std::path::PathBuf::from),
        snapshot_interval: (args.snapshot_interval_ms > 0)
            .then(|| Duration::from_millis(args.snapshot_interval_ms)),
        checkpoint_interval: (args.checkpoint_interval_ms > 0)
            .then(|| Duration::from_millis(args.checkpoint_interval_ms)),
        ..ServeOptions::default()
    };
    let server = Server::bind(&args.listen, options).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle().map_err(|e| e.to_string())?;
    // The one stdout line scripts wait for (the port matters when binding
    // to port 0).
    println!("listening on {addr}");
    eprintln!(
        "pool: {} workers, max {} jobs in flight, plan cache capacity {}",
        server.pool().threads(),
        server.pool().max_in_flight(),
        args.cache_capacity
    );

    signals::install();
    let watcher = std::thread::spawn(move || {
        while !signals::signalled() {
            if handle.is_draining() {
                // Drained by other means (SHUTDOWN opcode); stop watching.
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        eprintln!("signal received; draining");
        handle.shutdown();
    });

    let report = match (&static_engine, &dynamic_engine) {
        (Some(engine), _) => server.serve(engine).map_err(|e| e.to_string())?,
        (None, Some(engine)) => {
            let repl = match &args.replica_of {
                Some(primary) => {
                    eprintln!("replica: following primary {primary}");
                    ReplState::replica(primary)
                }
                None => ReplState::primary(),
            };
            let stop = AtomicBool::new(false);
            let result = std::thread::scope(|scope| {
                if let Some(primary) = &args.replica_of {
                    // The apply loop: subscribe, apply, reconnect, and
                    // (on SIGUSR1 or a PROMOTE frame) seal and flip.
                    let apply_repl = Arc::clone(&repl);
                    let stop = &stop;
                    scope.spawn(move || {
                        let report = run_replication(primary.as_str(), engine, &apply_repl, stop);
                        eprintln!(
                            "replication: {} batches applied, {} checkpoints installed, \
                             {} reconnects{}",
                            report.batches_applied,
                            report.checkpoints_installed,
                            report.reconnects,
                            if report.promoted { "; promoted" } else { "" }
                        );
                    });
                    // SIGUSR1 cannot touch the shared state from the
                    // handler; this poller forwards it as a promote
                    // request the apply loop observes between frames.
                    let signal_repl = Arc::clone(&repl);
                    scope.spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            if signals::promote_signalled() {
                                signal_repl.request_promote();
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    });
                }
                let result = server.serve_dynamic_with_repl(engine, Arc::clone(&repl));
                stop.store(true, Ordering::Release);
                result
            });
            result.map_err(|e| e.to_string())?
        }
        (None, None) => unreachable!("one engine is always constructed"),
    };
    let _ = watcher.join();
    eprintln!(
        "drained: {} connections, {} queries, {} updates; warm start {}/{} keys, \
         {} plan keys persisted, {} background snapshots",
        report.connections,
        report.queries,
        report.updates,
        report.warm_start.warmed,
        report.warm_start.applicable,
        report.saved_plans,
        report.snapshots_written
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_invocation() {
        let args = parse_args(&strings(&[
            "--graph",
            "g.txt",
            "--listen",
            "0.0.0.0:9000",
            "--threads",
            "4",
            "--cache-capacity",
            "16",
            "--max-in-flight",
            "2",
            "--max-connections",
            "8",
            "--queue-depth",
            "5",
            "--persist",
            "plans.gppc",
            "--snapshot-interval-ms",
            "250",
            "--wal",
            "graph.wal",
            "--checkpoint-interval-ms",
            "400",
            "--replica-of",
            "127.0.0.1:7431",
        ]))
        .unwrap();
        assert_eq!(args.graph_path, "g.txt");
        assert_eq!(args.listen, "0.0.0.0:9000");
        assert_eq!(args.threads, 4);
        assert_eq!(args.cache_capacity, 16);
        assert_eq!(args.max_in_flight, 2);
        assert_eq!(args.max_connections, 8);
        assert_eq!(args.queue_depth, 5);
        assert_eq!(args.persist.as_deref(), Some("plans.gppc"));
        assert_eq!(args.snapshot_interval_ms, 250);
        assert_eq!(args.wal.as_deref(), Some("graph.wal"));
        assert_eq!(args.checkpoint_interval_ms, 400);
        assert_eq!(args.replica_of.as_deref(), Some("127.0.0.1:7431"));
    }

    #[test]
    fn defaults_and_errors() {
        let args = parse_args(&strings(&["--graph", "g.txt"])).unwrap();
        assert_eq!(args.listen, "127.0.0.1:7431");
        assert_eq!(args.threads, 0);
        assert_eq!(args.cache_capacity, 64);
        assert_eq!(args.queue_depth, 0);
        assert_eq!(args.snapshot_interval_ms, 0);
        assert!(args.persist.is_none());
        assert!(args.wal.is_none());
        assert_eq!(args.checkpoint_interval_ms, 0);
        assert!(args.replica_of.is_none());
        // Replication and background checkpointing both need a WAL.
        assert!(
            parse_args(&strings(&["--graph", "g", "--replica-of", "h:1"])).is_err(),
            "--replica-of without --wal"
        );
        assert!(parse_args(&strings(&[
            "--graph",
            "g",
            "--checkpoint-interval-ms",
            "100"
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "--graph",
            "g",
            "--wal",
            "w",
            "--replica-of",
            "h:1",
            "--checkpoint-interval-ms",
            "100",
        ]))
        .is_ok());
        assert!(parse_args(&strings(&[])).is_err(), "--graph is required");
        assert!(parse_args(&strings(&["--graph"])).is_err());
        assert!(parse_args(&strings(&["--graph", "g", "--wal"])).is_err());
        assert!(parse_args(&strings(&["--graph", "g", "--threads", "x"])).is_err());
        assert!(parse_args(&strings(&["--bogus"])).is_err());
        assert!(parse_args(&strings(&["--graph", "g", "--snapshot-interval-ms", "x"])).is_err());
    }
}
