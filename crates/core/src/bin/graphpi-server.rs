//! The GraphPi network server binary.
//!
//! ```text
//! graphpi-server --graph edges.txt [--listen 127.0.0.1:7431] [--threads N]
//!                [--cache-capacity N] [--max-in-flight N]
//!                [--max-connections N] [--persist plans.gppc]
//! ```
//!
//! Loads the data graph once (text edge list or the checksummed binary
//! format, auto-sniffed; binary opens zero-copy via mmap), binds the
//! listener, prints one `listening on <addr>` line to stdout, and serves
//! the wire protocol documented in `docs/protocol.md` until a client sends
//! the `SHUTDOWN` opcode. Shutdown is graceful: in-flight queries finish
//! and, with `--persist`, the plan cache's keys are written so the next
//! start re-plans them (warm start) before the first query arrives.

use graphpi_core::config::{PoolOptions, ServeOptions};
use graphpi_core::engine::GraphPi;
use graphpi_core::net::Server;
use graphpi_graph::csr::CsrGraph;
use graphpi_graph::io;
use std::process::ExitCode;

const USAGE: &str = "usage: graphpi-server --graph <path> [--listen <addr:port>] \
[--threads N] [--cache-capacity N] [--max-in-flight N] [--max-connections N] \
[--persist <path>]";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ServerArgs {
    graph_path: String,
    listen: String,
    threads: usize,
    cache_capacity: usize,
    max_in_flight: usize,
    max_connections: usize,
    persist: Option<String>,
}

fn parse_args(args: &[String]) -> Result<ServerArgs, String> {
    let mut graph_path = None;
    let mut listen = "127.0.0.1:7431".to_string();
    let mut threads = 0usize;
    let mut cache_capacity = 64usize;
    let mut max_in_flight = 0usize;
    let mut max_connections = 64usize;
    let mut persist = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--graph" => graph_path = Some(iter.next().ok_or("--graph needs a value")?.clone()),
            "--listen" => listen = iter.next().ok_or("--listen needs a value")?.clone(),
            "--persist" => persist = Some(iter.next().ok_or("--persist needs a value")?.clone()),
            "--threads" => {
                threads = iter
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?
            }
            "--cache-capacity" => {
                cache_capacity = iter
                    .next()
                    .ok_or("--cache-capacity needs a value")?
                    .parse()
                    .map_err(|_| "--cache-capacity must be an integer".to_string())?
            }
            "--max-in-flight" => {
                max_in_flight = iter
                    .next()
                    .ok_or("--max-in-flight needs a value")?
                    .parse()
                    .map_err(|_| "--max-in-flight must be an integer".to_string())?
            }
            "--max-connections" => {
                max_connections = iter
                    .next()
                    .ok_or("--max-connections needs a value")?
                    .parse()
                    .map_err(|_| "--max-connections must be an integer".to_string())?
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(ServerArgs {
        graph_path: graph_path.ok_or_else(|| format!("--graph is required\n{USAGE}"))?,
        listen,
        threads,
        cache_capacity,
        max_in_flight,
        max_connections,
        persist,
    })
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    if io::sniff_is_binary(path) {
        io::load_binary_mmap(path).map_err(|e| format!("failed to load {path}: {e}"))
    } else {
        io::load_edge_list(path).map_err(|e| format!("failed to load {path}: {e}"))
    }
}

fn run(args: ServerArgs) -> Result<(), String> {
    let load_start = std::time::Instant::now();
    let graph = load_graph(&args.graph_path)?;
    eprintln!(
        "graph: {} vertices, {} edges (loaded in {:?})",
        graph.num_vertices(),
        graph.num_edges(),
        load_start.elapsed()
    );
    let engine = GraphPi::new(graph);

    let options = ServeOptions {
        pool: PoolOptions {
            threads: args.threads,
            cache_capacity: args.cache_capacity,
            max_in_flight: args.max_in_flight,
        },
        max_connections: args.max_connections,
        persist_path: args.persist.as_ref().map(std::path::PathBuf::from),
        ..ServeOptions::default()
    };
    let server = Server::bind(&args.listen, options).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The one stdout line scripts wait for (the port matters when binding
    // to port 0).
    println!("listening on {addr}");
    eprintln!(
        "pool: {} workers, max {} jobs in flight, plan cache capacity {}",
        server.pool().threads(),
        server.pool().max_in_flight(),
        args.cache_capacity
    );

    let report = server.serve(&engine).map_err(|e| e.to_string())?;
    eprintln!(
        "drained: {} connections, {} queries; warm start {}/{} keys, {} plan keys persisted",
        report.connections,
        report.queries,
        report.warm_start.warmed,
        report.warm_start.applicable,
        report.saved_plans
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_invocation() {
        let args = parse_args(&strings(&[
            "--graph",
            "g.txt",
            "--listen",
            "0.0.0.0:9000",
            "--threads",
            "4",
            "--cache-capacity",
            "16",
            "--max-in-flight",
            "2",
            "--max-connections",
            "8",
            "--persist",
            "plans.gppc",
        ]))
        .unwrap();
        assert_eq!(args.graph_path, "g.txt");
        assert_eq!(args.listen, "0.0.0.0:9000");
        assert_eq!(args.threads, 4);
        assert_eq!(args.cache_capacity, 16);
        assert_eq!(args.max_in_flight, 2);
        assert_eq!(args.max_connections, 8);
        assert_eq!(args.persist.as_deref(), Some("plans.gppc"));
    }

    #[test]
    fn defaults_and_errors() {
        let args = parse_args(&strings(&["--graph", "g.txt"])).unwrap();
        assert_eq!(args.listen, "127.0.0.1:7431");
        assert_eq!(args.threads, 0);
        assert_eq!(args.cache_capacity, 64);
        assert!(args.persist.is_none());
        assert!(parse_args(&strings(&[])).is_err(), "--graph is required");
        assert!(parse_args(&strings(&["--graph"])).is_err());
        assert!(parse_args(&strings(&["--graph", "g", "--threads", "x"])).is_err());
        assert!(parse_args(&strings(&["--bogus"])).is_err());
    }
}
