//! Command-line front end for the GraphPi engine.
//!
//! ```text
//! graphpi-cli stats   --graph edges.txt
//! graphpi-cli plan    --graph edges.txt --pattern p3
//! graphpi-cli count   --graph edges.txt --pattern house [--threads 8] [--no-iep] [--hubs] [--list 5]
//! graphpi-cli count   --graph graph.bin --format binary --pattern house --repeat 50 --session
//! graphpi-cli convert edges.txt graph.bin
//! graphpi-cli update  --graph edges.txt --wal graph.wal --insert 0 9 --delete 3 4 [--ops ops.txt]
//! graphpi-cli remote  --addr 127.0.0.1:7431 --pattern house --clients 4 --repeat 8 --stats
//! graphpi-cli remote  --addr 127.0.0.1:7431 --mutate ops.txt
//! ```
//!
//! Graphs load from a whitespace-separated edge list (`#`/`%` comments
//! allowed) or from the checksummed binary format written by `convert`
//! (`--format text|binary|auto`; `auto`, the default, sniffs the magic
//! bytes). Binary graphs open **zero-copy** via `mmap` where the platform
//! supports it — the fast path for repeated runs on large datasets.
//!
//! Patterns are named (`triangle`, `rectangle`, `house`, `cycle6tri`,
//! `p1`..`p6`, `cliqueK`, `cycleK`, `pathK`, `starK`) or given explicitly as
//! `adj:<0/1 adjacency matrix string>` in row-major order.
//!
//! `--repeat N` runs the count N times. Without `--session` every
//! iteration pays the full cold path (re-plan + spawn/join worker
//! threads); with `--session` the query runs on a persistent worker pool
//! with a compiled-plan cache, so iterations after the first are the warm
//! serving path. The reported cold/warm split is the amortization this
//! distinction buys.
//!
//! `--clients N` (requires `--session`) is the concurrent-load mode: N
//! client threads share one session and each runs `--repeat` queries
//! simultaneously, exercising the pool's multi-job scheduler. The report is
//! aggregate throughput plus the plan-cache counters (which must satisfy
//! hits + misses = total queries). `--max-in-flight N` caps how many of
//! those jobs the pool runs at once (0 = automatic); extra clients block,
//! which is the pool's backpressure.
//!
//! `--scalar-kernels` pins the sorted-set intersection kernels to the
//! portable scalar reference (process-wide) instead of the runtime-detected
//! SIMD family; counts are bit-identical either way.
//!
//! `--mode` selects what `count` computes: `count` (default, the exact
//! global count), `orbit` (per-vertex participation counts),
//! `sample` (a seeded Horvitz–Thompson estimate; `--sample-rate R` in
//! `(0, 1]`, default 0.1, and `--sample-seed N`, default 0 — the same
//! seed replays the same estimate), or `enumerate` (the embeddings
//! themselves, up to `--limit N`, default 100). The non-count modes run a
//! single query stream, so they reject `--clients`; `--list` stays the
//! count-mode preview.
//!
//! `remote` talks to a running `graphpi-server` over the wire protocol
//! (`docs/protocol.md`): `--pattern` counts remotely (`--clients N` opens N
//! concurrent connections, each running `--repeat` queries, and verifies
//! every observed count is bit-identical), `--stats` prints the server's
//! counters and latency histogram, `--ping` is a liveness probe,
//! `--probe-malformed` sends a garbage frame and verifies the server
//! answers with a typed error and keeps serving, and `--shutdown` asks the
//! server to drain gracefully. `--retries N` and `--backoff-ms N` run the
//! counts through the resilient retrying client (automatic reconnect,
//! request-ID idempotency, exponential backoff with jitter), and
//! `--chaos-seed N` additionally routes each connection through the
//! in-process seeded fault injector — a manual probe of the same machinery
//! the chaos tests drive.
//!
//! `remote --mode=orbit|sample` sends the same mode queries over the wire
//! (protocol v2's `CountRequest` mode byte), and `remote --enumerate
//! --limit N` streams the embeddings themselves as paged `ENUM_PAGE`
//! frames (`--page-size` caps embeddings per page). Enumeration carries
//! no idempotency key: the retrying client re-issues it only while zero
//! pages have arrived.
//!
//! `remote --endpoints a,b,c` is the failover mode for a replicated
//! deployment: counts rotate across every endpoint (with read-your-writes
//! generation floors after a `--mutate`), writes route to the primary and
//! follow `NOT_PRIMARY` redirects, and the run ends with a `replication:`
//! summary (reads per endpoint, failovers, the worst replication lag any
//! endpoint reports). `promote --addr <replica>` asks a replica to become
//! the primary — the manual half of a failover drill.
//!
//! `chaos-proxy` runs the standalone byte-level fault-injecting TCP proxy
//! between real clients and a real server (prints one
//! `proxying on <addr>` line to stdout, then serves until killed).
//!
//! `update` commits edge batches to a **local** WAL-backed graph: the
//! base graph comes from `--graph`, the durable state from `--wal`
//! (created on first use, replayed on every run), and the batch from
//! repeated `--insert u v` / `--delete u v` flags and/or an `--ops` file
//! of `+ u v` / `- u v` lines (file order is preserved: an insert
//! following a delete starts a new batch, because within one batch all
//! inserts apply before all deletes). `remote --mutate <ops-file>` sends
//! the same ops format to a running `graphpi-server --wal`, split into
//! frame-sized batches, and prints the final generation.

use graphpi_core::codegen::{generate, Language};
use graphpi_core::config::PoolOptions;
use graphpi_core::engine::{CountOptions, GraphPi, PlanOptions};
use graphpi_core::net::protocol::{self, LatencyHistogram};
use graphpi_core::net::{
    ChaosConfig, ChaosConnector, ChaosProxy, Client, CountExt, FailoverClient, NetError, QueryMode,
    RemoteCountOptions, RemoteEnumerateOptions, RemoteEnumeration, RemoteUpdateOptions,
    RetryPolicy, RetryStats, RetryingClient, Transport, UpdateOk,
};
use graphpi_graph::csr::CsrGraph;
use graphpi_graph::wal::DurableGraph;
use graphpi_graph::DurableGraphOptions;
use graphpi_graph::{io, vertex_set, EdgeBatch};
use graphpi_pattern::{prefab, Pattern};
use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::time::Duration;

/// How to interpret the `--graph` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GraphFormat {
    /// Sniff the magic bytes: binary if they match, else text.
    Auto,
    /// Whitespace-separated edge list.
    Text,
    /// The checksummed binary format (opened zero-copy via mmap).
    Binary,
}

/// What the `count` command computes (`--mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum CliMode {
    /// The exact global embedding count (the default).
    #[default]
    Count,
    /// Per-vertex orbit counts (how many embeddings each vertex joins).
    Orbit,
    /// A sampled Horvitz–Thompson estimate (`--sample-rate`, `--sample-seed`).
    Sample,
    /// The embeddings themselves, up to `--limit`.
    Enumerate,
}

/// Parsed command-line invocation.
#[derive(Debug, Clone, PartialEq)]
struct CliArgs {
    command: Command,
    graph_path: String,
    format: GraphFormat,
    pattern: Option<String>,
    threads: usize,
    use_iep: bool,
    hub_bitsets: bool,
    scalar_kernels: bool,
    list: usize,
    repeat: usize,
    session: bool,
    clients: usize,
    max_in_flight: usize,
    mode: CliMode,
    /// Subtree sampling probability for `--mode=sample` (in `(0, 1]`).
    sample_rate: f64,
    /// Sampling seed for `--mode=sample` (default 0: runs are reproducible
    /// unless a seed is given explicitly).
    sample_seed: u64,
    /// Embedding budget for `--mode=enumerate` (must be at least 1).
    limit: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum Command {
    Stats,
    Plan,
    Count,
    /// Convert an edge list into the binary format (`input` → `output`).
    Convert {
        output: String,
    },
    /// Talk to a running `graphpi-server` over the wire protocol.
    Remote(RemoteArgs),
    /// Promote a running replica to primary.
    Promote {
        addr: String,
    },
    /// Run the byte-level fault-injecting TCP proxy.
    ChaosProxy(ChaosProxyArgs),
    /// Commit edge batches to a local WAL-backed graph.
    Update(UpdateArgs),
}

/// `update` subcommand invocation (the graph path and format live on
/// [`CliArgs`] like every other graph-loading command).
#[derive(Debug, Clone, PartialEq, Eq)]
struct UpdateArgs {
    wal: String,
    inserts: Vec<(u32, u32)>,
    deletes: Vec<(u32, u32)>,
    ops: Option<String>,
    checkpoint: bool,
}

/// `remote` subcommand invocation: which server to talk to and what to do.
#[derive(Debug, Clone, PartialEq)]
struct RemoteArgs {
    addr: String,
    /// Failover mode: the replicated deployment's endpoint list
    /// (empty = classic single-address mode via `addr`).
    endpoints: Vec<String>,
    pattern: Option<String>,
    clients: usize,
    repeat: usize,
    no_iep: bool,
    hubs: bool,
    deadline_ms: u32,
    retries: u32,
    backoff_ms: u64,
    chaos_seed: Option<u64>,
    ping: bool,
    stats: bool,
    shutdown: bool,
    probe_malformed: bool,
    mutate: Option<String>,
    /// Remote count mode (`--mode=count|orbit|sample`; enumeration is the
    /// separate paged `--enumerate` request, not a count mode).
    mode: CliMode,
    sample_rate: f64,
    /// Sampling seed for `--mode=sample` (default 0, documented: the same
    /// seed replays the same estimate on an unchanged graph).
    sample_seed: u64,
    /// Stream embeddings (`ENUMERATE`/`ENUM_PAGE`) instead of counting.
    enumerate: bool,
    /// Embedding budget for `--enumerate`.
    limit: u64,
    /// Requested embeddings per page (0 = server default).
    page_size: u32,
}

/// `chaos-proxy` subcommand invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChaosProxyArgs {
    listen: String,
    upstream: String,
    seed: u64,
    stall_per_mille: u32,
    stall_ms: u64,
    reset_per_mille: u32,
    partial_per_mille: u32,
}

const USAGE: &str = "usage: graphpi-cli <stats|plan|count> --graph <path> \
[--format auto|text|binary] [--pattern <name|adj:...>] [--threads N] [--no-iep] [--hubs] \
[--scalar-kernels] [--list N] [--repeat N] [--session] [--clients N] [--max-in-flight N] \
[--mode count|orbit|sample|enumerate] [--sample-rate R] [--sample-seed N (default 0)] [--limit N]\n\
       graphpi-cli convert <edge-list> <binary-out>\n\
       graphpi-cli update --graph <path> --wal <path> [--format auto|text|binary] \
[--insert U V]... [--delete U V]... [--ops <file>] [--checkpoint]\n\
       graphpi-cli remote [--addr host:port | --endpoints a,b,c] [--pattern <name>] \
[--clients N] [--repeat N] [--no-iep] [--hubs] [--deadline-ms N] [--retries N] [--backoff-ms N] \
[--chaos-seed N] [--ping] [--stats] [--probe-malformed] [--shutdown] [--mutate <ops-file>] \
[--mode count|orbit|sample] [--sample-rate R] [--sample-seed N] \
[--enumerate] [--limit N] [--page-size N]\n\
       graphpi-cli promote [--addr host:port]\n\
       graphpi-cli chaos-proxy --upstream host:port [--listen host:port] [--seed N] \
[--stall-per-mille N] [--stall-ms N] [--reset-per-mille N] [--partial-per-mille N]";

/// A [`CliArgs`] with every count-path knob at its default — the shape
/// the non-counting subcommands (convert, update, remote, ...) return.
fn base_args(command: Command, graph_path: String, format: GraphFormat) -> CliArgs {
    CliArgs {
        command,
        graph_path,
        format,
        pattern: None,
        threads: 0,
        use_iep: true,
        hub_bitsets: false,
        scalar_kernels: false,
        list: 0,
        repeat: 1,
        session: false,
        clients: 1,
        max_in_flight: 0,
        mode: CliMode::Count,
        sample_rate: DEFAULT_SAMPLE_RATE,
        sample_seed: 0,
        limit: DEFAULT_ENUM_LIMIT,
    }
}

/// Default subtree sampling probability for `--mode=sample`.
const DEFAULT_SAMPLE_RATE: f64 = 0.1;
/// Default embedding budget for `--mode=enumerate`.
const DEFAULT_ENUM_LIMIT: u64 = 100;

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    // `--flag=value` is sugar for `--flag value`, everywhere a flag takes
    // a value (`--mode=enumerate` reads better than `--mode enumerate`).
    let expanded: Vec<String> = args
        .iter()
        .flat_map(|arg| {
            match arg
                .strip_prefix("--")
                .and_then(|stripped| stripped.split_once('='))
            {
                Some((flag, value)) => vec![format!("--{flag}"), value.to_string()],
                None => vec![arg.clone()],
            }
        })
        .collect();
    let args = &expanded;
    let mut iter = args.iter();
    let command = match iter.next().map(String::as_str) {
        Some("stats") => Command::Stats,
        Some("plan") => Command::Plan,
        Some("count") => Command::Count,
        Some("convert") => {
            let input = iter
                .next()
                .ok_or(format!("convert needs <edge-list> <binary-out>\n{USAGE}"))?;
            let output = iter
                .next()
                .ok_or(format!("convert needs <edge-list> <binary-out>\n{USAGE}"))?;
            if let Some(extra) = iter.next() {
                return Err(format!("unexpected argument {extra:?}\n{USAGE}"));
            }
            return Ok(base_args(
                Command::Convert {
                    output: output.clone(),
                },
                input.clone(),
                GraphFormat::Auto,
            ));
        }
        Some("chaos-proxy") => {
            let proxy = parse_chaos_proxy_args(iter.as_slice())?;
            return Ok(base_args(
                Command::ChaosProxy(proxy),
                String::new(),
                GraphFormat::Auto,
            ));
        }
        Some("update") => {
            let (graph_path, format, update) = parse_update_args(iter.as_slice())?;
            return Ok(base_args(Command::Update(update), graph_path, format));
        }
        Some("promote") => {
            let mut addr = "127.0.0.1:7431".to_string();
            let mut promote_iter = iter.clone();
            while let Some(flag) = promote_iter.next() {
                match flag.as_str() {
                    "--addr" => addr = promote_iter.next().ok_or("--addr needs a value")?.clone(),
                    other => return Err(format!("unknown flag {other}\n{USAGE}")),
                }
            }
            return Ok(base_args(
                Command::Promote { addr },
                String::new(),
                GraphFormat::Auto,
            ));
        }
        Some("remote") => {
            let remote = parse_remote_args(iter.as_slice())?;
            return Ok(base_args(
                Command::Remote(remote),
                String::new(),
                GraphFormat::Auto,
            ));
        }
        other => return Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    let mut graph_path = None;
    let mut format = GraphFormat::Auto;
    let mut pattern = None;
    let mut threads = 0usize;
    let mut use_iep = true;
    let mut hub_bitsets = false;
    let mut scalar_kernels = false;
    let mut list = 0usize;
    let mut repeat = 1usize;
    let mut session = false;
    let mut clients = 1usize;
    let mut max_in_flight = 0usize;
    let mut mode = CliMode::Count;
    let mut sample_rate: Option<f64> = None;
    let mut sample_seed: Option<u64> = None;
    let mut limit: Option<u64> = None;
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--graph" => graph_path = Some(iter.next().ok_or("--graph needs a value")?.clone()),
            "--format" => {
                format = match iter.next().ok_or("--format needs a value")?.as_str() {
                    "auto" => GraphFormat::Auto,
                    "text" => GraphFormat::Text,
                    "binary" => GraphFormat::Binary,
                    other => return Err(format!("unknown format {other:?} (auto|text|binary)")),
                }
            }
            "--pattern" => pattern = Some(iter.next().ok_or("--pattern needs a value")?.clone()),
            "--threads" => {
                threads = iter
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?
            }
            "--no-iep" => use_iep = false,
            "--hubs" => hub_bitsets = true,
            "--scalar-kernels" => scalar_kernels = true,
            "--session" => session = true,
            "--repeat" => {
                repeat = iter
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|_| "--repeat must be an integer".to_string())?;
                if repeat == 0 {
                    return Err("--repeat must be at least 1".to_string());
                }
            }
            "--list" => {
                list = iter
                    .next()
                    .ok_or("--list needs a value")?
                    .parse()
                    .map_err(|_| "--list must be an integer".to_string())?
            }
            "--clients" => {
                clients = iter
                    .next()
                    .ok_or("--clients needs a value")?
                    .parse()
                    .map_err(|_| "--clients must be an integer".to_string())?;
                if clients == 0 {
                    return Err("--clients must be at least 1".to_string());
                }
            }
            "--max-in-flight" => {
                max_in_flight = iter
                    .next()
                    .ok_or("--max-in-flight needs a value")?
                    .parse()
                    .map_err(|_| "--max-in-flight must be an integer".to_string())?
            }
            "--mode" => {
                mode = parse_mode(iter.next().ok_or("--mode needs a value")?)?;
            }
            "--sample-rate" => {
                sample_rate = Some(parse_sample_rate(
                    iter.next().ok_or("--sample-rate needs a value")?,
                )?);
            }
            "--sample-seed" => {
                sample_seed = Some(
                    iter.next()
                        .ok_or("--sample-seed needs a value")?
                        .parse()
                        .map_err(|_| "--sample-seed must be an integer".to_string())?,
                );
            }
            "--limit" => {
                let value: u64 = iter
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|_| "--limit must be an integer".to_string())?;
                if value == 0 {
                    return Err(
                        "--limit must be at least 1 (an empty enumeration is a no-op)".to_string(),
                    );
                }
                limit = Some(value);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let graph_path = graph_path.ok_or_else(|| format!("--graph is required\n{USAGE}"))?;
    if !matches!(command, Command::Stats) && pattern.is_none() {
        return Err(format!("--pattern is required for this command\n{USAGE}"));
    }
    if clients > 1 && !session {
        return Err("--clients requires --session (the concurrent-load mode \
                    runs on the shared session pool)"
            .to_string());
    }
    if max_in_flight > 0 && !session {
        return Err(
            "--max-in-flight requires --session (only the session pool schedules jobs)".to_string(),
        );
    }
    if mode != CliMode::Count {
        if command != Command::Count {
            return Err("--mode applies to the count command".to_string());
        }
        if clients > 1 {
            return Err(format!(
                "--clients is the count-mode concurrent-load harness; --mode={} runs a \
                 single query stream",
                mode_name(mode)
            ));
        }
        if list > 0 {
            return Err(
                "--list is the count-mode embedding preview; use --mode=enumerate --limit N \
                 to list embeddings"
                    .to_string(),
            );
        }
    }
    if mode != CliMode::Sample && (sample_rate.is_some() || sample_seed.is_some()) {
        return Err(
            "--sample-rate/--sample-seed only apply to --mode=sample (the other modes are exact)"
                .to_string(),
        );
    }
    if mode != CliMode::Enumerate && limit.is_some() {
        return Err("--limit only applies to --mode=enumerate".to_string());
    }
    Ok(CliArgs {
        command,
        graph_path,
        format,
        pattern,
        threads,
        use_iep,
        hub_bitsets,
        scalar_kernels,
        list,
        repeat,
        session,
        clients,
        max_in_flight,
        mode,
        sample_rate: sample_rate.unwrap_or(DEFAULT_SAMPLE_RATE),
        sample_seed: sample_seed.unwrap_or(0),
        limit: limit.unwrap_or(DEFAULT_ENUM_LIMIT),
    })
}

/// Parses a `--mode` value.
fn parse_mode(value: &str) -> Result<CliMode, String> {
    match value {
        "count" => Ok(CliMode::Count),
        "orbit" => Ok(CliMode::Orbit),
        "sample" => Ok(CliMode::Sample),
        "enumerate" => Ok(CliMode::Enumerate),
        other => Err(format!(
            "unknown mode {other:?} (count|orbit|sample|enumerate)"
        )),
    }
}

/// The `--mode` spelling of a [`CliMode`], for error messages.
fn mode_name(mode: CliMode) -> &'static str {
    match mode {
        CliMode::Count => "count",
        CliMode::Orbit => "orbit",
        CliMode::Sample => "sample",
        CliMode::Enumerate => "enumerate",
    }
}

/// Parses and range-checks a `--sample-rate` value.
fn parse_sample_rate(value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|_| "--sample-rate must be a number".to_string())?;
    if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
        return Err("--sample-rate must be in (0, 1]".to_string());
    }
    Ok(rate)
}

/// Parses the flags after `remote`.
fn parse_remote_args(args: &[String]) -> Result<RemoteArgs, String> {
    let mut remote = RemoteArgs {
        addr: "127.0.0.1:7431".to_string(),
        endpoints: Vec::new(),
        pattern: None,
        clients: 1,
        repeat: 1,
        no_iep: false,
        hubs: false,
        deadline_ms: 0,
        retries: 1,
        backoff_ms: 10,
        chaos_seed: None,
        ping: false,
        stats: false,
        shutdown: false,
        probe_malformed: false,
        mutate: None,
        mode: CliMode::Count,
        sample_rate: DEFAULT_SAMPLE_RATE,
        sample_seed: 0,
        enumerate: false,
        limit: DEFAULT_ENUM_LIMIT,
        page_size: 0,
    };
    let mut sample_rate: Option<f64> = None;
    let mut sample_seed: Option<u64> = None;
    let mut limit: Option<u64> = None;
    let mut page_size: Option<u32> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--addr" => remote.addr = iter.next().ok_or("--addr needs a value")?.clone(),
            "--endpoints" => {
                remote.endpoints = iter
                    .next()
                    .ok_or("--endpoints needs a comma-separated address list")?
                    .split(',')
                    .map(str::trim)
                    .filter(|part| !part.is_empty())
                    .map(str::to_string)
                    .collect();
                if remote.endpoints.is_empty() {
                    return Err("--endpoints needs at least one address".to_string());
                }
            }
            "--pattern" => {
                remote.pattern = Some(iter.next().ok_or("--pattern needs a value")?.clone())
            }
            "--clients" => {
                remote.clients = iter
                    .next()
                    .ok_or("--clients needs a value")?
                    .parse()
                    .map_err(|_| "--clients must be an integer".to_string())?;
                if remote.clients == 0 {
                    return Err("--clients must be at least 1".to_string());
                }
            }
            "--repeat" => {
                remote.repeat = iter
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|_| "--repeat must be an integer".to_string())?;
                if remote.repeat == 0 {
                    return Err("--repeat must be at least 1".to_string());
                }
            }
            "--deadline-ms" => {
                remote.deadline_ms = iter
                    .next()
                    .ok_or("--deadline-ms needs a value")?
                    .parse()
                    .map_err(|_| "--deadline-ms must be an integer".to_string())?
            }
            "--retries" => {
                remote.retries = iter
                    .next()
                    .ok_or("--retries needs a value")?
                    .parse()
                    .map_err(|_| "--retries must be an integer".to_string())?;
                if remote.retries == 0 {
                    return Err("--retries must be at least 1 (the first attempt)".to_string());
                }
            }
            "--backoff-ms" => {
                remote.backoff_ms = iter
                    .next()
                    .ok_or("--backoff-ms needs a value")?
                    .parse()
                    .map_err(|_| "--backoff-ms must be an integer".to_string())?
            }
            "--chaos-seed" => {
                remote.chaos_seed = Some(
                    iter.next()
                        .ok_or("--chaos-seed needs a value")?
                        .parse()
                        .map_err(|_| "--chaos-seed must be an integer".to_string())?,
                )
            }
            "--mutate" => {
                remote.mutate = Some(iter.next().ok_or("--mutate needs a value")?.clone())
            }
            "--no-iep" => remote.no_iep = true,
            "--hubs" => remote.hubs = true,
            "--ping" => remote.ping = true,
            "--stats" => remote.stats = true,
            "--shutdown" => remote.shutdown = true,
            "--probe-malformed" => remote.probe_malformed = true,
            "--mode" => {
                remote.mode = parse_mode(iter.next().ok_or("--mode needs a value")?)?;
                if remote.mode == CliMode::Enumerate {
                    return Err(
                        "remote enumeration is the paged --enumerate request, not a --mode value"
                            .to_string(),
                    );
                }
            }
            "--sample-rate" => {
                sample_rate = Some(parse_sample_rate(
                    iter.next().ok_or("--sample-rate needs a value")?,
                )?);
            }
            "--sample-seed" => {
                sample_seed = Some(
                    iter.next()
                        .ok_or("--sample-seed needs a value")?
                        .parse()
                        .map_err(|_| "--sample-seed must be an integer".to_string())?,
                );
            }
            "--enumerate" => remote.enumerate = true,
            "--limit" => {
                let value: u64 = iter
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|_| "--limit must be an integer".to_string())?;
                if value == 0 {
                    return Err(
                        "--limit must be at least 1 (an empty enumeration is a no-op)".to_string(),
                    );
                }
                limit = Some(value);
            }
            "--page-size" => {
                page_size = Some(
                    iter.next()
                        .ok_or("--page-size needs a value")?
                        .parse()
                        .map_err(|_| "--page-size must be an integer".to_string())?,
                );
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    remote.sample_rate = sample_rate.unwrap_or(DEFAULT_SAMPLE_RATE);
    remote.sample_seed = sample_seed.unwrap_or(0);
    remote.limit = limit.unwrap_or(DEFAULT_ENUM_LIMIT);
    remote.page_size = page_size.unwrap_or(0);
    if remote.enumerate {
        if remote.pattern.is_none() {
            return Err("--enumerate needs a --pattern to enumerate".to_string());
        }
        if remote.mode != CliMode::Count {
            return Err(format!(
                "--enumerate streams embeddings; it cannot combine with --mode={}",
                mode_name(remote.mode)
            ));
        }
        if remote.clients > 1 {
            return Err(
                "--enumerate streams one non-idempotent response; it cannot combine with \
                 --clients (each stream would race for the shared limit)"
                    .to_string(),
            );
        }
    }
    if remote.pattern.is_none()
        && remote.mutate.is_none()
        && !(remote.ping || remote.stats || remote.shutdown || remote.probe_malformed)
    {
        return Err(format!(
            "remote needs something to do: --pattern, --mutate, --ping, --stats, \
             --probe-malformed or --shutdown\n{USAGE}"
        ));
    }
    if remote.mode != CliMode::Sample && (sample_rate.is_some() || sample_seed.is_some()) {
        return Err(
            "--sample-rate/--sample-seed only apply to --mode=sample (the other modes are exact)"
                .to_string(),
        );
    }
    if !remote.enumerate && (limit.is_some() || page_size.is_some()) {
        return Err("--limit/--page-size only apply to --enumerate".to_string());
    }
    if remote.chaos_seed.is_some() && remote.retries == 1 {
        return Err(
            "--chaos-seed without --retries would fail on the first injected fault; \
             give the client retries (e.g. --retries 8)"
                .to_string(),
        );
    }
    if !remote.endpoints.is_empty() {
        // Failover mode drives counts and mutations through the
        // multi-endpoint client; the single-connection probes have no
        // meaningful target in a rotation.
        if remote.ping || remote.stats || remote.shutdown || remote.probe_malformed {
            return Err(
                "--endpoints is for counts and mutations; use --addr for --ping, --stats, \
                 --probe-malformed and --shutdown"
                    .to_string(),
            );
        }
        if remote.chaos_seed.is_some() {
            return Err(
                "--chaos-seed routes one address; it cannot combine with --endpoints".to_string(),
            );
        }
        if remote.clients > 1 {
            return Err(
                "--endpoints runs one failover client; drop --clients or use --addr".to_string(),
            );
        }
        if remote.enumerate {
            return Err(
                "--enumerate is non-idempotent and cannot fail over; use --addr".to_string(),
            );
        }
        if remote.mode != CliMode::Count {
            return Err(format!(
                "--mode={} is --addr territory; the failover client verifies exact counts",
                mode_name(remote.mode)
            ));
        }
    }
    Ok(remote)
}

/// Parses the flags after `update`.
fn parse_update_args(args: &[String]) -> Result<(String, GraphFormat, UpdateArgs), String> {
    let mut graph_path = None;
    let mut format = GraphFormat::Auto;
    let mut update = UpdateArgs {
        wal: String::new(),
        inserts: Vec::new(),
        deletes: Vec::new(),
        ops: None,
        checkpoint: false,
    };
    fn edge(flag: &str, iter: &mut std::slice::Iter<'_, String>) -> Result<(u32, u32), String> {
        let u = iter
            .next()
            .ok_or(format!("{flag} needs two vertex ids"))?
            .parse()
            .map_err(|_| format!("{flag} vertices must be integers"))?;
        let v = iter
            .next()
            .ok_or(format!("{flag} needs two vertex ids"))?
            .parse()
            .map_err(|_| format!("{flag} vertices must be integers"))?;
        Ok((u, v))
    }
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--graph" => graph_path = Some(iter.next().ok_or("--graph needs a value")?.clone()),
            "--wal" => update.wal = iter.next().ok_or("--wal needs a value")?.clone(),
            "--ops" => update.ops = Some(iter.next().ok_or("--ops needs a value")?.clone()),
            "--insert" => update.inserts.push(edge("--insert", &mut iter)?),
            "--delete" => update.deletes.push(edge("--delete", &mut iter)?),
            "--checkpoint" => update.checkpoint = true,
            "--format" => {
                format = match iter.next().ok_or("--format needs a value")?.as_str() {
                    "auto" => GraphFormat::Auto,
                    "text" => GraphFormat::Text,
                    "binary" => GraphFormat::Binary,
                    other => return Err(format!("unknown format {other:?} (auto|text|binary)")),
                }
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let graph_path = graph_path.ok_or_else(|| format!("--graph is required\n{USAGE}"))?;
    if update.wal.is_empty() {
        return Err(format!("update requires --wal <path>\n{USAGE}"));
    }
    if update.inserts.is_empty()
        && update.deletes.is_empty()
        && update.ops.is_none()
        && !update.checkpoint
    {
        return Err(format!(
            "update needs something to commit: --insert, --delete, --ops or --checkpoint\n{USAGE}"
        ));
    }
    Ok((graph_path, format, update))
}

/// One mutation from an ops file: `true` = insert, `false` = delete.
type Op = (bool, (u32, u32));

/// One wire-sized batch: the insert list, then the delete list.
type OpBatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Parses the `+ u v` / `- u v` ops format (`#`/`%` comments and blank
/// lines allowed), keeping file order.
fn parse_ops_text(text: &str) -> Result<Vec<Op>, String> {
    let mut ops = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let insert = match parts.next() {
            Some("+") => true,
            Some("-") => false,
            _ => {
                return Err(format!(
                    "ops line {}: must be '+ u v' or '- u v', got {line:?}",
                    index + 1
                ))
            }
        };
        let mut vertex = || -> Result<u32, String> {
            parts
                .next()
                .ok_or(format!("ops line {}: missing vertex id", index + 1))?
                .parse()
                .map_err(|_| format!("ops line {}: vertex ids must be integers", index + 1))
        };
        let edge = (vertex()?, vertex()?);
        if parts.next().is_some() {
            return Err(format!("ops line {}: trailing tokens", index + 1));
        }
        ops.push((insert, edge));
    }
    Ok(ops)
}

/// Groups an ordered op sequence into batches that preserve its
/// semantics: within one batch all inserts apply before all deletes, so
/// an insert *following* a delete must start a new batch. `cap` bounds
/// the edges per batch (for the wire's frame limit); `usize::MAX` means
/// unbounded.
fn ops_to_batches(ops: &[Op], cap: usize) -> Vec<OpBatch> {
    let cap = cap.max(1);
    let mut batches = Vec::new();
    let mut inserts: Vec<(u32, u32)> = Vec::new();
    let mut deletes: Vec<(u32, u32)> = Vec::new();
    for &(insert, edge) in ops {
        let full = inserts.len() + deletes.len() >= cap;
        let order_break = insert && !deletes.is_empty();
        if (full || order_break) && (!inserts.is_empty() || !deletes.is_empty()) {
            batches.push((std::mem::take(&mut inserts), std::mem::take(&mut deletes)));
        }
        if insert {
            inserts.push(edge);
        } else {
            deletes.push(edge);
        }
    }
    if !inserts.is_empty() || !deletes.is_empty() {
        batches.push((inserts, deletes));
    }
    batches
}

/// Runs the `update` subcommand: open (replay) the durable graph, commit
/// the requested batches, optionally checkpoint.
fn run_update(graph_path: &str, format: GraphFormat, args: &UpdateArgs) -> Result<(), String> {
    let graph = load_graph(graph_path, format)?;
    let (durable, recovery) = DurableGraph::open(graph, &args.wal, DurableGraphOptions::default())
        .map_err(|e| format!("failed to open WAL {}: {e}", args.wal))?;
    eprintln!(
        "wal: generation {} ({} batches replayed, checkpoint {})",
        recovery.generation,
        recovery.replayed_batches,
        if recovery.checkpoint_loaded {
            "loaded"
        } else {
            "absent"
        },
    );
    let mut ops: Vec<Op> = Vec::new();
    if let Some(path) = &args.ops {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        ops.extend(parse_ops_text(&text)?);
    }
    ops.extend(args.inserts.iter().map(|&edge| (true, edge)));
    ops.extend(args.deletes.iter().map(|&edge| (false, edge)));
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    for (batch_inserts, batch_deletes) in ops_to_batches(&ops, usize::MAX) {
        let mut batch = EdgeBatch::new();
        for (u, v) in batch_inserts {
            batch.insert(u, v);
        }
        for (u, v) in batch_deletes {
            batch.delete(u, v);
        }
        let report = durable
            .commit(&batch)
            .map_err(|e| format!("commit failed: {e}"))?;
        inserted += u64::from(report.inserted);
        deleted += u64::from(report.deleted);
    }
    if args.checkpoint {
        let generation = durable
            .checkpoint()
            .map_err(|e| format!("checkpoint failed: {e}"))?;
        eprintln!(
            "checkpoint: generation {generation} folded into {}",
            durable.checkpoint_path().display()
        );
    }
    let snapshot = durable.snapshot();
    println!(
        "committed: generation {}, +{inserted} -{deleted} edges ({} vertices, {} edges)",
        snapshot.generation(),
        snapshot.graph().num_vertices(),
        snapshot.graph().num_edges()
    );
    Ok(())
}

/// Parses the flags after `chaos-proxy`.
fn parse_chaos_proxy_args(args: &[String]) -> Result<ChaosProxyArgs, String> {
    let mut proxy = ChaosProxyArgs {
        listen: "127.0.0.1:0".to_string(),
        upstream: String::new(),
        seed: 0,
        stall_per_mille: 50,
        stall_ms: 2,
        reset_per_mille: 20,
        partial_per_mille: 20,
    };
    fn per_mille(name: &str, value: Option<&String>) -> Result<u32, String> {
        let value: u32 = value
            .ok_or(format!("{name} needs a value"))?
            .parse()
            .map_err(|_| format!("{name} must be an integer"))?;
        if value > 1000 {
            return Err(format!("{name} is per mille (0..=1000)"));
        }
        Ok(value)
    }
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--listen" => proxy.listen = iter.next().ok_or("--listen needs a value")?.clone(),
            "--upstream" => proxy.upstream = iter.next().ok_or("--upstream needs a value")?.clone(),
            "--seed" => {
                proxy.seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--stall-ms" => {
                proxy.stall_ms = iter
                    .next()
                    .ok_or("--stall-ms needs a value")?
                    .parse()
                    .map_err(|_| "--stall-ms must be an integer".to_string())?
            }
            "--stall-per-mille" => {
                proxy.stall_per_mille = per_mille("--stall-per-mille", iter.next())?
            }
            "--reset-per-mille" => {
                proxy.reset_per_mille = per_mille("--reset-per-mille", iter.next())?
            }
            "--partial-per-mille" => {
                proxy.partial_per_mille = per_mille("--partial-per-mille", iter.next())?
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if proxy.upstream.is_empty() {
        return Err(format!(
            "chaos-proxy requires --upstream <host:port>\n{USAGE}"
        ));
    }
    Ok(proxy)
}

/// Resolves `host:port` to a socket address.
fn resolve_addr(addr: &str) -> Result<std::net::SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolved to no addresses"))
}

/// Runs the chaos proxy until the process is killed.
fn run_chaos_proxy(args: &ChaosProxyArgs) -> Result<(), String> {
    let upstream = resolve_addr(&args.upstream)?;
    let config = ChaosConfig {
        seed: args.seed,
        stall_per_mille: args.stall_per_mille,
        stall_ms: args.stall_ms,
        reset_per_mille: args.reset_per_mille,
        partial_write_per_mille: args.partial_per_mille,
        ..ChaosConfig::default()
    };
    let proxy = ChaosProxy::bind(&args.listen, upstream, config)
        .map_err(|e| format!("failed to bind {}: {e}", args.listen))?;
    let addr = proxy.local_addr().map_err(|e| e.to_string())?;
    // The one stdout line scripts wait for.
    println!("proxying on {addr}");
    eprintln!(
        "chaos: seed {} stall {}‰ x{}ms reset {}‰ partial {}‰ -> upstream {upstream}",
        args.seed,
        args.stall_per_mille,
        args.stall_ms,
        args.reset_per_mille,
        args.partial_per_mille
    );
    proxy.run().map_err(|e| e.to_string())
}

/// Sends a deliberately malformed frame (wrong magic) on a raw socket and
/// verifies the server answers with a typed error (or cleanly drops the
/// connection) and keeps serving afterwards.
fn probe_malformed(addr: &str) -> Result<(), String> {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("failed to connect to {addr}: {e}"))?;
    // Valid length prefix, corrupt magic: the server must not crash.
    let mut garbage = Vec::new();
    garbage.extend_from_slice(&8u32.to_le_bytes());
    garbage.extend_from_slice(b"XXxx\x01\x02\x03\x04");
    stream
        .write_all(&garbage)
        .map_err(|e| format!("probe write failed: {e}"))?;
    match protocol::read_frame(&mut stream) {
        Ok(frame) if frame.opcode == protocol::op::ERROR => {
            let detail = protocol::WireError::decode(&frame.payload)
                .map(|e| e.code.to_string())
                .unwrap_or_else(|| "undecodable".to_string());
            println!("probe: malformed frame answered with typed error ({detail})");
        }
        Ok(frame) => {
            return Err(format!(
                "probe: unexpected reply opcode {:#04x} to a malformed frame",
                frame.opcode
            ))
        }
        Err(NetError::Closed) => println!("probe: malformed frame dropped the connection cleanly"),
        Err(e) => return Err(format!("probe: unexpected failure: {e}")),
    }
    // The server must still be alive for everyone else.
    Client::connect(addr)
        .and_then(|mut c| c.ping())
        .map_err(|e| format!("probe: server unreachable after malformed frame: {e}"))?;
    println!("probe: server still answers ping after the malformed frame");
    Ok(())
}

/// Prints a `STATS_OK` snapshot in human-readable form.
fn print_remote_stats(stats: &protocol::StatsOk) {
    println!(
        "server: {} live workers, {}/{} jobs in flight, {} queued, {} active-era connections",
        stats.live_workers,
        stats.in_flight,
        stats.max_in_flight,
        stats.queued,
        stats.connections_total
    );
    println!(
        "queries: {} executed, {} deadline-exceeded, {} protocol errors",
        stats.queries_total, stats.deadline_exceeded, stats.protocol_errors
    );
    if stats.enumerations_total > 0 {
        println!(
            "enumerations: {} streamed in {} page(s)",
            stats.enumerations_total, stats.pages_sent
        );
    }
    println!(
        "plan cache: {} hit(s) / {} miss(es), {} eviction(s), {}/{} plans, {} warm-started",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_len,
        stats.cache_capacity,
        stats.warm_started
    );
    if stats.latency.total() > 0 {
        let p50 = stats.latency.percentile_upper_bound_micros(0.50).unwrap();
        let p99 = stats.latency.percentile_upper_bound_micros(0.99).unwrap();
        println!(
            "latency: {} samples, p50 < {}us, p99 < {}us",
            stats.latency.total(),
            p50,
            p99
        );
        let buckets: Vec<String> = stats
            .latency
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, count)| {
                format!(
                    ">={}us: {count}",
                    LatencyHistogram::bucket_floor_micros(index)
                )
            })
            .collect();
        println!("latency histogram: {}", buckets.join("  "));
    }
}

/// Runs `remote --endpoints a,b,c`: mutations and counts through the
/// multi-endpoint failover client, with a `replication:` summary of
/// where the traffic landed and how far the replicas trail.
fn run_remote_failover(args: &RemoteArgs) -> Result<(), String> {
    let endpoints: Vec<std::net::SocketAddr> = args
        .endpoints
        .iter()
        .map(|addr| resolve_addr(addr))
        .collect::<Result<_, _>>()?;
    let policy = RetryPolicy {
        max_attempts: args.retries.max(2),
        initial_backoff: Duration::from_millis(args.backoff_ms),
        ..RetryPolicy::default()
    };
    // Read-your-writes on: counts after a mutation carry the committed
    // generation as a floor, so a lagging replica waits or sheds.
    let mut client = FailoverClient::connect(endpoints, policy, true);
    if let Some(ops_path) = &args.mutate {
        let text = std::fs::read_to_string(ops_path)
            .map_err(|e| format!("cannot read {ops_path}: {e}"))?;
        let ops = parse_ops_text(&text)?;
        let batches = ops_to_batches(&ops, protocol::MAX_UPDATE_EDGES);
        let mut inserted = 0u64;
        let mut deleted = 0u64;
        let mut last: Option<UpdateOk> = None;
        for (ins, del) in &batches {
            let options = RemoteUpdateOptions {
                deadline_ms: args.deadline_ms,
                request_id: 0,
            };
            let ok = client
                .update_with(ins, del, options)
                .map_err(|e| format!("mutate failed: {e}"))?;
            inserted += u64::from(ok.inserted);
            deleted += u64::from(ok.deleted);
            last = Some(ok);
        }
        match last {
            Some(ok) => println!(
                "mutate: {} batch(es) applied, +{inserted} -{deleted} edges, generation {} \
                 (primary {})",
                batches.len(),
                ok.generation,
                client.primary_endpoint()
            ),
            None => println!("mutate: {ops_path} contained no operations"),
        }
    }
    if let Some(name) = &args.pattern {
        let pattern = resolve_pattern(name)?;
        // Non-count modes are rejected at parse time for --endpoints, so
        // the failover path always runs plain counts.
        let options = RemoteCountOptions {
            no_iep: args.no_iep,
            hub_bitsets: args.hubs,
            deadline_ms: args.deadline_ms,
            request_id: 0,
            min_generation: 0,
            mode: QueryMode::Count,
        };
        let start = std::time::Instant::now();
        let mut observed = Vec::with_capacity(args.repeat);
        for query in 0..args.repeat {
            // Reads are sticky per connection; rotating between queries
            // spreads the burst across the endpoint list.
            if query > 0 {
                client.rotate_reads();
            }
            let result = client
                .count_with(&pattern, options)
                .map_err(|e| format!("count failed: {e}"))?;
            observed.push(result.count);
        }
        let elapsed = start.elapsed();
        let first = observed[0];
        if observed.iter().any(|&c| c != first) {
            return Err("failover reads observed diverging counts".to_string());
        }
        println!(
            "remote count {name}: {first} embeddings  ({} queries across {} endpoint(s) in {:?})",
            observed.len(),
            client.endpoints().len(),
            elapsed
        );
    }
    // The summary line: who answered the reads, how often writes had to
    // re-route, and the worst replication lag any endpoint admits to.
    let stats = client.stats().clone();
    let reads: Vec<String> = client
        .endpoints()
        .iter()
        .zip(&stats.reads_per_endpoint)
        .map(|(addr, count)| format!("{addr}={count}"))
        .collect();
    let mut max_lag = 0u64;
    let mut unreachable = 0usize;
    for (_, health) in client.health_all() {
        match health {
            Some(health) => max_lag = max_lag.max(health.replication_lag),
            None => unreachable += 1,
        }
    }
    println!(
        "replication: reads [{}], {} failover(s) ({} redirected), max lag {} generation(s), \
         {} unreachable, primary {}",
        reads.join(" "),
        stats.failovers,
        stats.redirects,
        max_lag,
        unreachable,
        client.primary_endpoint()
    );
    Ok(())
}

/// Runs `promote`: asks the replica at `addr` to become primary.
fn run_promote(addr: &str) -> Result<(), String> {
    let ok = Client::connect(addr)
        .and_then(|mut c| c.promote())
        .map_err(|e| format!("promote failed: {e}"))?;
    println!(
        "promoted: {addr} is primary at generation {}",
        ok.generation
    );
    Ok(())
}

/// Runs the `remote` subcommand against a live `graphpi-server`.
fn run_remote(args: &RemoteArgs) -> Result<(), String> {
    if !args.endpoints.is_empty() {
        return run_remote_failover(args);
    }
    if args.probe_malformed {
        probe_malformed(&args.addr)?;
    }
    if args.ping {
        Client::connect(&args.addr)
            .and_then(|mut c| c.ping())
            .map_err(|e| format!("ping failed: {e}"))?;
        println!("ping: ok ({})", args.addr);
    }
    if let Some(ops_path) = &args.mutate {
        // Mutations run before any counting, so `--mutate ops.txt
        // --pattern house` counts the post-update graph.
        let text = std::fs::read_to_string(ops_path)
            .map_err(|e| format!("cannot read {ops_path}: {e}"))?;
        let ops = parse_ops_text(&text)?;
        let batches = ops_to_batches(&ops, protocol::MAX_UPDATE_EDGES);
        let options = RemoteUpdateOptions {
            deadline_ms: args.deadline_ms,
            request_id: 0,
        };
        let mut inserted = 0u64;
        let mut deleted = 0u64;
        let mut last: Option<UpdateOk> = None;
        if args.retries > 1 {
            // The retrying client tags every batch with a request ID, so
            // a resend after an ambiguous failure replays from the
            // server's ledger instead of committing twice.
            let policy = RetryPolicy {
                max_attempts: args.retries,
                initial_backoff: Duration::from_millis(args.backoff_ms),
                ..RetryPolicy::default()
            };
            let mut client = RetryingClient::connect_tcp(resolve_addr(&args.addr)?, policy);
            for (ins, del) in &batches {
                let ok = client
                    .update_with(ins, del, options)
                    .map_err(|e| format!("mutate failed: {e}"))?;
                inserted += u64::from(ok.inserted);
                deleted += u64::from(ok.deleted);
                last = Some(ok);
            }
        } else {
            let mut client =
                Client::connect(&args.addr).map_err(|e| format!("mutate: connect failed: {e}"))?;
            for (ins, del) in &batches {
                let ok = client
                    .update_with(ins, del, options)
                    .map_err(|e| format!("mutate failed: {e}"))?;
                inserted += u64::from(ok.inserted);
                deleted += u64::from(ok.deleted);
                last = Some(ok);
            }
        }
        match last {
            Some(ok) => println!(
                "mutate: {} batch(es) applied, +{inserted} -{deleted} edges, generation {}",
                batches.len(),
                ok.generation
            ),
            None => println!("mutate: {ops_path} contained no operations"),
        }
    }
    if let Some(name) = &args.pattern {
        let pattern = resolve_pattern(name)?;
        if args.enumerate {
            run_remote_enumerate(args, name, &pattern)?;
        } else {
            run_remote_counts(args, name, &pattern)?;
        }
    }
    if args.stats {
        let stats = Client::connect(&args.addr)
            .and_then(|mut c| c.stats())
            .map_err(|e| format!("stats failed: {e}"))?;
        print_remote_stats(&stats);
    }
    if args.shutdown {
        Client::connect(&args.addr)
            .and_then(|mut c| c.shutdown_server())
            .map_err(|e| format!("shutdown failed: {e}"))?;
        println!("shutdown: server is draining");
    }
    Ok(())
}

/// The wire [`QueryMode`] a `remote` invocation's count requests carry.
fn remote_query_mode(args: &RemoteArgs) -> QueryMode {
    match args.mode {
        CliMode::Orbit => QueryMode::Orbit,
        CliMode::Sample => QueryMode::sample(args.sample_seed, args.sample_rate),
        _ => QueryMode::Count,
    }
}

/// Runs the remote counting loop (all `--mode`s; enumeration is
/// [`run_remote_enumerate`]): every client thread opens its own
/// connection and runs `--repeat` queries, and all observed headline
/// counts must be bit-identical — sample mode included, because a fixed
/// seed replays the same estimate on an unchanged graph.
fn run_remote_counts(args: &RemoteArgs, name: &str, pattern: &Pattern) -> Result<(), String> {
    let options = RemoteCountOptions {
        no_iep: args.no_iep,
        hub_bitsets: args.hubs,
        deadline_ms: args.deadline_ms,
        request_id: 0,
        min_generation: 0,
        mode: remote_query_mode(args),
    };
    // With --retries or --chaos-seed the counts run through the
    // resilient retrying client (which needs a resolved address for
    // its reconnect loop) instead of the plain one-shot client.
    let use_retry = args.retries > 1 || args.chaos_seed.is_some();
    let resolved = if use_retry {
        Some(resolve_addr(&args.addr)?)
    } else {
        None
    };
    let start = std::time::Instant::now();
    type ClientResult = Result<(Vec<u64>, CountExt, RetryStats), String>;
    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client_index| {
                let addr = &args.addr;
                scope.spawn(move || {
                    let mut observed = Vec::with_capacity(args.repeat);
                    let mut ext = CountExt::None;
                    if let Some(resolved) = resolved {
                        let policy = RetryPolicy {
                            max_attempts: args.retries,
                            initial_backoff: Duration::from_millis(args.backoff_ms),
                            ..RetryPolicy::default()
                        }
                        .with_seed(client_index as u64);
                        let mut client = match args.chaos_seed {
                            Some(seed) => {
                                let config = ChaosConfig::gentle(seed ^ client_index as u64);
                                let connector = ChaosConnector::new(resolved, config);
                                RetryingClient::new(
                                    move || {
                                        let transport = connector.connect()?;
                                        Ok(Box::new(transport) as Box<dyn Transport + Send>)
                                    },
                                    policy,
                                )
                            }
                            None => RetryingClient::connect_tcp(resolved, policy),
                        };
                        for _ in 0..args.repeat {
                            let result = client
                                .count_with(pattern, options)
                                .map_err(|e| format!("client {client_index}: {e}"))?;
                            observed.push(result.count);
                            ext = result.ext;
                        }
                        Ok((observed, ext, client.stats()))
                    } else {
                        let mut client = Client::connect(addr)
                            .map_err(|e| format!("client {client_index}: connect: {e}"))?;
                        for _ in 0..args.repeat {
                            let result = client
                                .count_with(pattern, options)
                                .map_err(|e| format!("client {client_index}: {e}"))?;
                            observed.push(result.count);
                            ext = result.ext;
                        }
                        Ok((observed, ext, RetryStats::default()))
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("remote client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut all_counts = Vec::new();
    let mut mode_ext = CountExt::None;
    let mut retry = RetryStats::default();
    for result in results {
        let (counts, ext, stats) = result?;
        all_counts.extend(counts);
        if !matches!(ext, CountExt::None) {
            mode_ext = ext;
        }
        retry.attempts += stats.attempts;
        retry.connects += stats.connects;
        retry.retries += stats.retries;
        retry.hints_honored += stats.hints_honored;
    }
    let first = all_counts[0];
    if all_counts.iter().any(|&c| c != first) {
        return Err("remote clients observed diverging counts".to_string());
    }
    let queries = all_counts.len() as u32;
    println!(
        "remote count {name}: {first} embeddings  ({queries} queries x{} client(s) in {:?}, \
         {:.0} queries/s)",
        args.clients,
        elapsed,
        f64::from(queries) / elapsed.as_secs_f64()
    );
    match mode_ext {
        CountExt::None => {}
        CountExt::Orbit(orbit) => println!(
            "orbit: counts sum {} across {} participating vertices, max {} at vertex {}",
            orbit.sum, orbit.nonzero_vertices, orbit.max_count, orbit.max_vertex
        ),
        CountExt::Sample(sample) => println!(
            "sample: estimate {:.1} +- {:.1} stderr (seed {}, rate {}, {}/{} tasks sampled)",
            f64::from_bits(sample.estimate_bits),
            f64::from_bits(sample.stderr_bits),
            args.sample_seed,
            args.sample_rate,
            sample.sampled_tasks,
            sample.total_tasks
        ),
    }
    if use_retry {
        println!(
            "resilience: {} attempts, {} connects, {} retries, {} server hints honored",
            retry.attempts, retry.connects, retry.retries, retry.hints_honored
        );
    }
    Ok(())
}

/// Runs `remote --enumerate`: one paged `ENUMERATE` stream (non-idempotent
/// — retried automatically only while zero pages have arrived), printing a
/// short embedding preview and the page/total summary.
fn run_remote_enumerate(args: &RemoteArgs, name: &str, pattern: &Pattern) -> Result<(), String> {
    let options = RemoteEnumerateOptions {
        hub_bitsets: args.hubs,
        deadline_ms: args.deadline_ms,
        page_size: args.page_size,
    };
    let start = std::time::Instant::now();
    let result: RemoteEnumeration = if args.retries > 1 || args.chaos_seed.is_some() {
        let resolved = resolve_addr(&args.addr)?;
        let policy = RetryPolicy {
            max_attempts: args.retries,
            initial_backoff: Duration::from_millis(args.backoff_ms),
            ..RetryPolicy::default()
        };
        let mut client = match args.chaos_seed {
            Some(seed) => {
                let config = ChaosConfig::gentle(seed);
                let connector = ChaosConnector::new(resolved, config);
                RetryingClient::new(
                    move || {
                        let transport = connector.connect()?;
                        Ok(Box::new(transport) as Box<dyn Transport + Send>)
                    },
                    policy,
                )
            }
            None => RetryingClient::connect_tcp(resolved, policy),
        };
        client
            .enumerate_with(pattern, args.limit, options)
            .map_err(|e| format!("enumerate failed: {e}"))?
    } else {
        let mut client = Client::connect(&args.addr)
            .map_err(|e| format!("enumerate: connect failed: {e}"))?;
        client
            .enumerate_with(pattern, args.limit, options)
            .map_err(|e| format!("enumerate failed: {e}"))?
    };
    let elapsed = start.elapsed();
    const PREVIEW: usize = 5;
    for embedding in result.embeddings.iter().take(PREVIEW) {
        println!("  {embedding:?}");
    }
    if result.embeddings.len() > PREVIEW {
        println!("  ... {} more", result.embeddings.len() - PREVIEW);
    }
    println!(
        "remote enumerate {name}: {} embeddings in {} page(s) (limit {}) in {elapsed:?}",
        result.embeddings.len(),
        result.pages,
        args.limit
    );
    Ok(())
}

/// Resolves a pattern name (or `adj:` string, or `cliqueK`/`cycleK`/...).
fn resolve_pattern(name: &str) -> Result<Pattern, String> {
    let lower = name.to_ascii_lowercase();
    if let Some(matrix) = lower.strip_prefix("adj:") {
        return std::panic::catch_unwind(|| Pattern::from_adjacency_string(matrix))
            .map_err(|_| format!("invalid adjacency string {matrix:?}"));
    }
    let sized = |prefix: &str| -> Option<usize> {
        lower
            .strip_prefix(prefix)
            .and_then(|rest| rest.parse::<usize>().ok())
    };
    if let Some(k) = sized("clique") {
        return Ok(prefab::clique(k));
    }
    if let Some(k) = sized("cycle") {
        return Ok(prefab::cycle_pattern(k));
    }
    if let Some(k) = sized("path") {
        return Ok(prefab::path_pattern(k));
    }
    if let Some(k) = sized("star") {
        return Ok(prefab::star_pattern(k));
    }
    match lower.as_str() {
        "triangle" => Ok(prefab::triangle()),
        "rectangle" | "square" => Ok(prefab::rectangle()),
        "house" => Ok(prefab::house()),
        "cycle6tri" | "cycle-6-tri" => Ok(prefab::cycle_6_tri()),
        "p1" => Ok(prefab::p1()),
        "p2" => Ok(prefab::p2()),
        "p3" => Ok(prefab::p3()),
        "p4" => Ok(prefab::p4()),
        "p5" => Ok(prefab::p5()),
        "p6" => Ok(prefab::p6()),
        other => Err(format!(
            "unknown pattern {other:?}; use a named pattern, cliqueK/cycleK/pathK/starK, or adj:<matrix>"
        )),
    }
}

/// Loads the data graph honoring `--format` (binary opens zero-copy).
fn load_graph(path: &str, format: GraphFormat) -> Result<CsrGraph, String> {
    let binary = match format {
        GraphFormat::Binary => true,
        GraphFormat::Text => false,
        GraphFormat::Auto => io::sniff_is_binary(path),
    };
    if binary {
        io::load_binary_mmap(path).map_err(|e| format!("failed to load {path}: {e}"))
    } else {
        io::load_edge_list(path).map_err(|e| format!("failed to load {path}: {e}"))
    }
}

/// Runs `convert <edge-list> <binary-out>` and verifies the round trip.
fn run_convert(input: &str, output: &str) -> Result<(), String> {
    let start = std::time::Instant::now();
    let graph = load_graph(input, GraphFormat::Auto)?;
    let loaded = start.elapsed();
    io::save_binary(&graph, output).map_err(|e| format!("failed to write {output}: {e}"))?;
    // Re-open through the mmap path: proves the file round-trips before
    // anyone depends on it.
    let reopened =
        io::load_binary_mmap(output).map_err(|e| format!("verification reload failed: {e}"))?;
    if reopened != graph {
        return Err("verification reload produced a different graph".to_string());
    }
    let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!(
        "converted {} -> {} ({} vertices, {} edges, {} bytes, loaded in {:?})",
        input,
        output,
        graph.num_vertices(),
        graph.num_edges(),
        bytes,
        loaded,
    );
    Ok(())
}

fn run(args: CliArgs) -> Result<(), String> {
    if args.scalar_kernels {
        vertex_set::set_force_scalar(true);
    }
    if let Command::Convert { output } = &args.command {
        return run_convert(&args.graph_path, output);
    }
    if let Command::Remote(remote) = &args.command {
        return run_remote(remote);
    }
    if let Command::Promote { addr } = &args.command {
        return run_promote(addr);
    }
    if let Command::ChaosProxy(proxy) = &args.command {
        return run_chaos_proxy(proxy);
    }
    if let Command::Update(update) = &args.command {
        return run_update(&args.graph_path, args.format, update);
    }
    let load_start = std::time::Instant::now();
    let graph = load_graph(&args.graph_path, args.format)?;
    println!(
        "graph: {} vertices, {} edges ({}loaded in {:?})",
        graph.num_vertices(),
        graph.num_edges(),
        if graph.is_memory_mapped() {
            "mmap, "
        } else {
            ""
        },
        load_start.elapsed(),
    );
    let engine = GraphPi::new(graph);
    let stats = engine.stats();
    println!(
        "stats: triangles={} max_degree={} avg_degree={:.2} p1={:.3e} p2={:.3e}",
        stats.triangle_count, stats.max_degree, stats.avg_degree, stats.p1, stats.p2
    );
    if args.command == Command::Stats {
        return Ok(());
    }

    let pattern = resolve_pattern(args.pattern.as_deref().unwrap())?;
    let plan = engine
        .plan(&pattern, PlanOptions::default())
        .map_err(|e| e.to_string())?;
    println!(
        "plan: {} restriction sets x {} schedules -> {} candidates in {:?}",
        plan.restriction_sets_generated,
        plan.schedules_generated,
        plan.candidates_considered,
        plan.preprocessing_time
    );
    println!(
        "selected schedule {:?}, restrictions {:?}, predicted cost {:.3e}",
        plan.plan.config.schedule.order(),
        plan.plan.config.restrictions.restrictions(),
        plan.predicted_cost
    );
    if args.command == Command::Plan {
        println!("\n{}", generate(&plan.plan, Language::Cpp));
        return Ok(());
    }

    let count_options = CountOptions {
        use_iep: args.use_iep,
        threads: args.threads,
        prefix_depth: None,
        hub_bitsets: args.hub_bitsets,
        scalar_kernels: args.scalar_kernels,
    };
    println!("kernels: {}", vertex_set::active_kernel().name());
    if args.mode != CliMode::Count {
        return run_local_mode(&engine, &pattern, &args, count_options);
    }
    let mut timings: Vec<std::time::Duration> = Vec::with_capacity(args.repeat);
    let mut count = 0u64;
    if args.session {
        // Warm serving path: persistent pool + compiled-plan cache. The
        // first iteration pays planning (a cache miss); the rest are warm.
        let session = engine.session_with(
            PoolOptions {
                threads: args.threads,
                max_in_flight: args.max_in_flight,
                ..PoolOptions::default()
            },
            PlanOptions::default(),
            count_options,
        );
        if args.clients > 1 {
            // Concurrent-load mode: N clients share the session, each
            // running `repeat` queries as simultaneous jobs on the pool.
            // One cold query first so the comparison below is warm-path.
            let cold_start = std::time::Instant::now();
            count = session.count(&pattern).map_err(|e| e.to_string())?;
            let cold = cold_start.elapsed();
            let expected = count;
            let start = std::time::Instant::now();
            std::thread::scope(|scope| {
                for client in 0..args.clients {
                    let session = &session;
                    let pattern = &pattern;
                    scope.spawn(move || {
                        for _ in 0..args.repeat {
                            let got = session
                                .count(pattern)
                                .unwrap_or_else(|e| panic!("client {client}: {e}"));
                            assert_eq!(got, expected, "client {client} observed a diverging count");
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let queries = (args.clients * args.repeat) as u32;
            let stats = session.cache_stats();
            println!(
                "session: {} workers, max {} jobs in flight, plan cache {} hit(s) / {} miss(es)",
                session.pool().threads(),
                session.pool().max_in_flight(),
                stats.hits,
                stats.misses
            );
            println!(
                "clients x{}: cold {:?}; {} warm queries in {:?} -> {:.0} queries/s aggregate \
                 ({:?}/query)",
                args.clients,
                cold,
                queries,
                elapsed,
                queries as f64 / elapsed.as_secs_f64(),
                elapsed / queries,
            );
            debug_assert_eq!(stats.hits + stats.misses, u64::from(queries) + 1);
            println!("embeddings: {count}  (bit-identical across all clients)");
            return Ok(());
        }
        for _ in 0..args.repeat {
            let start = std::time::Instant::now();
            count = session.count(&pattern).map_err(|e| e.to_string())?;
            timings.push(start.elapsed());
        }
        let stats = session.cache_stats();
        println!(
            "session: {} workers, plan cache {} hit(s) / {} miss(es)",
            session.pool().threads(),
            stats.hits,
            stats.misses
        );
    } else {
        // Cold path: every iteration re-plans and spawns/joins a fresh set
        // of worker threads, like independent CLI invocations would.
        for _ in 0..args.repeat {
            let start = std::time::Instant::now();
            let iter_plan = engine
                .plan(&pattern, PlanOptions::default())
                .map_err(|e| e.to_string())?;
            count = engine.execute_count(&iter_plan.plan, count_options);
            timings.push(start.elapsed());
        }
    }
    println!("embeddings: {count}  ({:?})", timings[0]);
    if args.repeat > 1 {
        let rest = &timings[1..];
        let rest_min = rest.iter().min().expect("repeat > 1");
        let rest_avg = rest.iter().sum::<std::time::Duration>() / rest.len() as u32;
        if args.session {
            // Iterations after the first hit the plan cache and warm pool.
            println!(
                "repeat x{}: cold {:?}, warm avg {:?}, warm min {:?}",
                args.repeat, timings[0], rest_avg, rest_min
            );
        } else {
            // Every iteration re-plans and re-spawns: all cold.
            println!(
                "repeat x{}: first {:?}, avg {:?}, min {:?} (every iteration cold; use --session for the warm path)",
                args.repeat, timings[0], rest_avg, rest_min
            );
        }
    }
    if args.list > 0 {
        let embeddings = graphpi_core::exec::interp::list_embeddings(&plan.plan, engine.graph());
        for emb in embeddings.iter().take(args.list) {
            println!("  {emb:?}");
        }
    }
    Ok(())
}

/// Runs the non-count local execution modes (`--mode=orbit|sample|enumerate`).
///
/// Mode queries always run on a session (the pooled serving path): the
/// pool schedules them on its low-priority lane and the mode-plan cache
/// amortizes planning, which is exactly how a server would execute them.
fn run_local_mode(
    engine: &GraphPi,
    pattern: &Pattern,
    args: &CliArgs,
    count_options: CountOptions,
) -> Result<(), String> {
    let session = engine.session_with(
        PoolOptions {
            threads: args.threads,
            max_in_flight: args.max_in_flight,
            ..PoolOptions::default()
        },
        PlanOptions::default(),
        count_options,
    );
    let start = std::time::Instant::now();
    match args.mode {
        CliMode::Count => unreachable!("dispatched for non-count modes only"),
        CliMode::Enumerate => {
            let embeddings = session
                .enumerate(pattern, args.limit)
                .map_err(|e| e.to_string())?;
            let elapsed = start.elapsed();
            for embedding in &embeddings {
                println!("  {embedding:?}");
            }
            let truncated = embeddings.len() as u64 >= args.limit;
            println!(
                "enumerated: {} embeddings (limit {}{}) in {elapsed:?}",
                embeddings.len(),
                args.limit,
                if truncated { ", truncated" } else { "" },
            );
        }
        CliMode::Orbit => {
            let counts = session
                .count_per_vertex(pattern)
                .map_err(|e| e.to_string())?;
            let elapsed = start.elapsed();
            let sum: u64 = counts.iter().sum();
            let nonzero = counts.iter().filter(|&&c| c > 0).count();
            let (max_vertex, max_count) = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(v, &c)| (v, c))
                .unwrap_or((0, 0));
            let size = pattern.num_vertices() as u64;
            println!(
                "orbit: counts sum {sum} = {size} x {} embeddings, {nonzero}/{} vertices \
                 participate, max {max_count} at vertex {max_vertex} ({elapsed:?})",
                sum / size.max(1),
                counts.len(),
            );
        }
        CliMode::Sample => {
            let approx = session
                .count_approx(pattern, args.sample_rate, args.sample_seed)
                .map_err(|e| e.to_string())?;
            let elapsed = start.elapsed();
            println!(
                "sample: estimate {:.1} +- {:.1} stderr (rate {}, seed {}, {}/{} tasks sampled) \
                 in {elapsed:?}",
                approx.estimate,
                approx.stderr,
                args.sample_rate,
                args.sample_seed,
                approx.sampled_tasks,
                approx.total_tasks
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("graphpi_cli_{label}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parses_count_invocation() {
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--threads",
            "4",
            "--no-iep",
            "--list",
            "3",
        ]))
        .unwrap();
        assert_eq!(args.command, Command::Count);
        assert_eq!(args.graph_path, "g.txt");
        assert_eq!(args.pattern.as_deref(), Some("house"));
        assert_eq!(args.threads, 4);
        assert!(!args.use_iep);
        assert_eq!(args.list, 3);
        assert_eq!(args.format, GraphFormat::Auto);
        assert!(!args.scalar_kernels);
    }

    #[test]
    fn parses_format_and_kernel_flags() {
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.bin",
            "--format",
            "binary",
            "--pattern",
            "house",
            "--scalar-kernels",
        ]))
        .unwrap();
        assert_eq!(args.format, GraphFormat::Binary);
        assert!(args.scalar_kernels);
        assert_eq!(
            parse_args(&strings(&["stats", "--graph", "g.txt", "--format", "text"]))
                .unwrap()
                .format,
            GraphFormat::Text
        );
        assert!(parse_args(&strings(&["stats", "--graph", "g.txt", "--format", "tsv"])).is_err());
    }

    #[test]
    fn parses_convert_invocation() {
        let args = parse_args(&strings(&["convert", "in.txt", "out.bin"])).unwrap();
        assert_eq!(args.graph_path, "in.txt");
        assert_eq!(
            args.command,
            Command::Convert {
                output: "out.bin".to_string()
            }
        );
        assert!(parse_args(&strings(&["convert", "in.txt"])).is_err());
        assert!(parse_args(&strings(&["convert", "a", "b", "c"])).is_err());
    }

    #[test]
    fn parses_repeat_and_session_flags() {
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--repeat",
            "20",
            "--session",
        ]))
        .unwrap();
        assert_eq!(args.repeat, 20);
        assert!(args.session);
        // Defaults: one iteration, no session.
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
        ]))
        .unwrap();
        assert_eq!(args.repeat, 1);
        assert!(!args.session);
        // Zero repeats is rejected.
        assert!(parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--repeat",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn parses_and_validates_clients_flags() {
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--session",
            "--clients",
            "4",
            "--max-in-flight",
            "2",
        ]))
        .unwrap();
        assert_eq!(args.clients, 4);
        assert_eq!(args.max_in_flight, 2);
        assert!(args.session);
        // Defaults.
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
        ]))
        .unwrap();
        assert_eq!(args.clients, 1);
        assert_eq!(args.max_in_flight, 0);
        // Zero clients and clients-without-session are rejected.
        for bad in [
            vec![
                "count",
                "--graph",
                "g.txt",
                "--pattern",
                "house",
                "--session",
                "--clients",
                "0",
            ],
            vec![
                "count",
                "--graph",
                "g.txt",
                "--pattern",
                "house",
                "--clients",
                "2",
            ],
            // --max-in-flight only means something on the session pool.
            vec![
                "count",
                "--graph",
                "g.txt",
                "--pattern",
                "house",
                "--max-in-flight",
                "2",
            ],
        ] {
            assert!(parse_args(&strings(&bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parses_mode_flags_and_equals_sugar() {
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--mode=sample",
            "--sample-rate=0.25",
            "--sample-seed=7",
        ]))
        .unwrap();
        assert_eq!(args.mode, CliMode::Sample);
        assert_eq!(args.sample_rate, 0.25);
        assert_eq!(args.sample_seed, 7);
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
            "--mode",
            "enumerate",
            "--limit",
            "12",
        ]))
        .unwrap();
        assert_eq!(args.mode, CliMode::Enumerate);
        assert_eq!(args.limit, 12);
        // Defaults: exact count; seed 0, rate 0.1 and limit 100 documented.
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            "g.txt",
            "--pattern",
            "house",
        ]))
        .unwrap();
        assert_eq!(args.mode, CliMode::Count);
        assert_eq!(args.sample_seed, 0);
        assert_eq!(args.sample_rate, DEFAULT_SAMPLE_RATE);
        assert_eq!(args.limit, DEFAULT_ENUM_LIMIT);
    }

    #[test]
    fn rejects_nonsensical_mode_combinations() {
        let base = ["count", "--graph", "g.txt", "--pattern", "house"];
        let rejected: &[(&[&str], &str)] = &[
            (&["--mode", "turbo"], "unknown mode"),
            (
                &["--mode=enumerate", "--limit", "0"],
                "--limit must be at least 1",
            ),
            (
                &["--mode=enumerate", "--session", "--clients", "2"],
                "single query stream",
            ),
            (
                &["--mode=enumerate", "--list", "3"],
                "--list is the count-mode",
            ),
            (&["--limit", "5"], "--limit only applies to --mode=enumerate"),
            (&["--sample-rate", "0.5"], "only apply to --mode=sample"),
            (&["--sample-seed", "9"], "only apply to --mode=sample"),
            (
                &["--mode=sample", "--sample-rate", "0"],
                "--sample-rate must be in (0, 1]",
            ),
            (
                &["--mode=sample", "--sample-rate", "1.5"],
                "--sample-rate must be in (0, 1]",
            ),
            // `"nan"` parses as a float; the range check must still veto it.
            (
                &["--mode=sample", "--sample-rate", "nan"],
                "--sample-rate must be in (0, 1]",
            ),
        ];
        for (extra, needle) in rejected {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend_from_slice(extra);
            let error = parse_args(&strings(&argv)).unwrap_err();
            assert!(error.contains(needle), "{argv:?}: {error}");
        }
        // --mode is a count-command flag.
        assert!(
            parse_args(&strings(&["stats", "--graph", "g.txt", "--mode", "orbit"]))
                .unwrap_err()
                .contains("--mode applies to the count command")
        );
    }

    #[test]
    fn parses_remote_mode_and_enumerate_flags() {
        let args = parse_args(&strings(&["remote", "--pattern", "house", "--mode=orbit"])).unwrap();
        let Command::Remote(remote) = args.command else {
            panic!("expected a remote command");
        };
        assert_eq!(remote.mode, CliMode::Orbit);
        assert!(!remote.enumerate);
        let args = parse_args(&strings(&[
            "remote",
            "--pattern",
            "house",
            "--enumerate",
            "--limit",
            "64",
            "--page-size",
            "16",
        ]))
        .unwrap();
        let Command::Remote(remote) = args.command else {
            panic!("expected a remote command");
        };
        assert!(remote.enumerate);
        assert_eq!(remote.limit, 64);
        assert_eq!(remote.page_size, 16);
        assert_eq!(remote.mode, CliMode::Count);
        for (argv, needle) in [
            (
                vec!["remote", "--pattern", "p1", "--mode=enumerate"],
                "paged --enumerate",
            ),
            (vec!["remote", "--enumerate"], "--enumerate needs a --pattern"),
            (
                vec!["remote", "--pattern", "p1", "--enumerate", "--clients", "2"],
                "cannot combine with",
            ),
            (
                vec!["remote", "--pattern", "p1", "--enumerate", "--mode=orbit"],
                "cannot combine with --mode=orbit",
            ),
            (
                vec!["remote", "--pattern", "p1", "--enumerate", "--limit", "0"],
                "--limit must be at least 1",
            ),
            (
                vec!["remote", "--pattern", "p1", "--limit", "9"],
                "only apply to --enumerate",
            ),
            (
                vec!["remote", "--pattern", "p1", "--sample-seed", "3"],
                "only apply to --mode=sample",
            ),
            (
                vec![
                    "remote",
                    "--endpoints",
                    "h:1,h:2",
                    "--pattern",
                    "p1",
                    "--enumerate",
                ],
                "cannot fail over",
            ),
            (
                vec![
                    "remote",
                    "--endpoints",
                    "h:1,h:2",
                    "--pattern",
                    "p1",
                    "--mode=sample",
                ],
                "--addr territory",
            ),
        ] {
            let error = parse_args(&strings(&argv)).unwrap_err();
            assert!(error.contains(needle), "{argv:?}: {error}");
        }
    }

    #[test]
    fn session_repeat_end_to_end_on_a_temporary_graph() {
        // Unique per process so concurrent test runs on a shared machine
        // cannot race on the same file.
        let dir = temp_dir("session");
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "0 1\n1 2\n0 2\n2 3\n1 3\n").unwrap();
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            path.to_str().unwrap(),
            "--pattern",
            "triangle",
            "--threads",
            "2",
            "--repeat",
            "3",
            "--session",
        ]))
        .unwrap();
        assert!(run(args).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parses_remote_invocation() {
        let args = parse_args(&strings(&[
            "remote",
            "--addr",
            "127.0.0.1:9000",
            "--pattern",
            "house",
            "--clients",
            "4",
            "--repeat",
            "8",
            "--deadline-ms",
            "250",
            "--no-iep",
            "--stats",
        ]))
        .unwrap();
        let Command::Remote(remote) = args.command else {
            panic!("expected a remote command");
        };
        assert_eq!(remote.addr, "127.0.0.1:9000");
        assert_eq!(remote.pattern.as_deref(), Some("house"));
        assert_eq!(remote.clients, 4);
        assert_eq!(remote.repeat, 8);
        assert_eq!(remote.deadline_ms, 250);
        assert!(remote.no_iep);
        assert!(remote.stats);
        assert!(!remote.shutdown);

        // --mutate alone is an action.
        let parsed = parse_args(&strings(&["remote", "--mutate", "ops.txt"])).unwrap();
        let Command::Remote(remote) = parsed.command else {
            panic!("expected a remote command");
        };
        assert_eq!(remote.mutate.as_deref(), Some("ops.txt"));

        // Action-free remote invocations are rejected; action flags alone
        // are fine (default address).
        assert!(parse_args(&strings(&["remote"])).is_err());
        assert!(parse_args(&strings(&["remote", "--addr", "h:1"])).is_err());
        for solo in ["--ping", "--stats", "--shutdown", "--probe-malformed"] {
            let parsed = parse_args(&strings(&["remote", solo])).unwrap();
            assert!(matches!(parsed.command, Command::Remote(_)), "{solo}");
        }
        assert!(parse_args(&strings(&["remote", "--clients", "0", "--ping"])).is_err());
        assert!(parse_args(&strings(&["remote", "--repeat", "0", "--ping"])).is_err());
        assert!(parse_args(&strings(&["remote", "--bogus"])).is_err());
    }

    #[test]
    fn parses_remote_resilience_flags() {
        let args = parse_args(&strings(&[
            "remote",
            "--pattern",
            "house",
            "--retries",
            "8",
            "--backoff-ms",
            "5",
            "--chaos-seed",
            "42",
        ]))
        .unwrap();
        let Command::Remote(remote) = args.command else {
            panic!("expected a remote command");
        };
        assert_eq!(remote.retries, 8);
        assert_eq!(remote.backoff_ms, 5);
        assert_eq!(remote.chaos_seed, Some(42));
        // Defaults: one attempt, no chaos.
        let args = parse_args(&strings(&["remote", "--ping"])).unwrap();
        let Command::Remote(remote) = args.command else {
            panic!("expected a remote command");
        };
        assert_eq!(remote.retries, 1);
        assert_eq!(remote.backoff_ms, 10);
        assert_eq!(remote.chaos_seed, None);
        // Zero retries is rejected; chaos without retries is rejected
        // (the first injected fault would fail the run).
        assert!(parse_args(&strings(&["remote", "--ping", "--retries", "0"])).is_err());
        assert!(parse_args(&strings(&["remote", "--ping", "--chaos-seed", "7"])).is_err());
    }

    #[test]
    fn parses_remote_endpoints_and_promote() {
        let args = parse_args(&strings(&[
            "remote",
            "--endpoints",
            "127.0.0.1:7431, 127.0.0.1:7432,127.0.0.1:7433",
            "--pattern",
            "house",
            "--repeat",
            "6",
        ]))
        .unwrap();
        let Command::Remote(remote) = args.command else {
            panic!("expected a remote command");
        };
        assert_eq!(
            remote.endpoints,
            vec!["127.0.0.1:7431", "127.0.0.1:7432", "127.0.0.1:7433"]
        );
        assert_eq!(remote.repeat, 6);
        // Mutate-only failover runs are fine.
        assert!(parse_args(&strings(&[
            "remote",
            "--endpoints",
            "h:1,h:2",
            "--mutate",
            "o"
        ]))
        .is_ok());
        // The single-connection probes, chaos injection and multi-client
        // mode are all --addr territory.
        for bad in [
            vec!["remote", "--endpoints", "h:1", "--ping"],
            vec!["remote", "--endpoints", "h:1", "--pattern", "p1", "--stats"],
            vec![
                "remote",
                "--endpoints",
                "h:1",
                "--pattern",
                "p1",
                "--shutdown",
            ],
            vec![
                "remote",
                "--endpoints",
                "h:1",
                "--pattern",
                "p1",
                "--probe-malformed",
            ],
            vec![
                "remote",
                "--endpoints",
                "h:1",
                "--pattern",
                "p1",
                "--retries",
                "4",
                "--chaos-seed",
                "9",
            ],
            vec![
                "remote",
                "--endpoints",
                "h:1",
                "--pattern",
                "p1",
                "--clients",
                "2",
            ],
            vec!["remote", "--endpoints", ",", "--pattern", "p1"],
        ] {
            assert!(parse_args(&strings(&bad)).is_err(), "{bad:?}");
        }

        let args = parse_args(&strings(&["promote", "--addr", "127.0.0.1:7432"])).unwrap();
        assert_eq!(
            args.command,
            Command::Promote {
                addr: "127.0.0.1:7432".to_string()
            }
        );
        // Default address, like remote.
        let args = parse_args(&strings(&["promote"])).unwrap();
        assert_eq!(
            args.command,
            Command::Promote {
                addr: "127.0.0.1:7431".to_string()
            }
        );
        assert!(parse_args(&strings(&["promote", "--bogus"])).is_err());
    }

    #[test]
    fn parses_chaos_proxy_invocation() {
        let args = parse_args(&strings(&[
            "chaos-proxy",
            "--upstream",
            "127.0.0.1:7431",
            "--listen",
            "127.0.0.1:7500",
            "--seed",
            "9",
            "--stall-per-mille",
            "100",
            "--stall-ms",
            "3",
            "--reset-per-mille",
            "15",
            "--partial-per-mille",
            "25",
        ]))
        .unwrap();
        let Command::ChaosProxy(proxy) = args.command else {
            panic!("expected a chaos-proxy command");
        };
        assert_eq!(proxy.upstream, "127.0.0.1:7431");
        assert_eq!(proxy.listen, "127.0.0.1:7500");
        assert_eq!(proxy.seed, 9);
        assert_eq!(proxy.stall_per_mille, 100);
        assert_eq!(proxy.stall_ms, 3);
        assert_eq!(proxy.reset_per_mille, 15);
        assert_eq!(proxy.partial_per_mille, 25);
        // Defaults (gentle chaos, ephemeral listen port).
        let args = parse_args(&strings(&["chaos-proxy", "--upstream", "h:1"])).unwrap();
        let Command::ChaosProxy(proxy) = args.command else {
            panic!("expected a chaos-proxy command");
        };
        assert_eq!(proxy.listen, "127.0.0.1:0");
        assert_eq!(proxy.stall_per_mille, 50);
        // --upstream is required; per-mille rates are capped at 1000.
        assert!(parse_args(&strings(&["chaos-proxy"])).is_err());
        assert!(parse_args(&strings(&[
            "chaos-proxy",
            "--upstream",
            "h:1",
            "--reset-per-mille",
            "1001",
        ]))
        .is_err());
    }

    #[test]
    fn parses_update_invocation() {
        let args = parse_args(&strings(&[
            "update",
            "--graph",
            "g.txt",
            "--wal",
            "g.wal",
            "--insert",
            "0",
            "9",
            "--insert",
            "1",
            "8",
            "--delete",
            "2",
            "3",
            "--ops",
            "ops.txt",
            "--checkpoint",
        ]))
        .unwrap();
        assert_eq!(args.graph_path, "g.txt");
        let Command::Update(update) = args.command else {
            panic!("expected an update command");
        };
        assert_eq!(update.wal, "g.wal");
        assert_eq!(update.inserts, vec![(0, 9), (1, 8)]);
        assert_eq!(update.deletes, vec![(2, 3)]);
        assert_eq!(update.ops.as_deref(), Some("ops.txt"));
        assert!(update.checkpoint);
        // --graph, --wal, and at least one action are all required;
        // --insert needs both endpoints.
        assert!(parse_args(&strings(&["update", "--wal", "w", "--insert", "0", "1"])).is_err());
        assert!(parse_args(&strings(&["update", "--graph", "g", "--insert", "0", "1"])).is_err());
        assert!(parse_args(&strings(&["update", "--graph", "g", "--wal", "w"])).is_err());
        assert!(parse_args(&strings(&[
            "update", "--graph", "g", "--wal", "w", "--insert", "0"
        ]))
        .is_err());
    }

    #[test]
    fn ops_text_parses_and_batches_in_order() {
        let ops = parse_ops_text("# comment\n+ 0 1\n+ 2 3\n- 0 1\n\n+ 4 5\n").unwrap();
        assert_eq!(
            ops,
            vec![
                (true, (0, 1)),
                (true, (2, 3)),
                (false, (0, 1)),
                (true, (4, 5)),
            ]
        );
        // The insert after the delete starts a new batch (inserts apply
        // before deletes within one batch, so merging would reorder).
        let batches = ops_to_batches(&ops, usize::MAX);
        assert_eq!(
            batches,
            vec![(vec![(0, 1), (2, 3)], vec![(0, 1)]), (vec![(4, 5)], vec![]),]
        );
        // The cap splits oversized runs.
        let many: Vec<Op> = (0..5).map(|i| (true, (i, i + 10))).collect();
        let capped = ops_to_batches(&many, 2);
        assert_eq!(capped.len(), 3);
        assert!(capped
            .iter()
            .all(|(ins, del)| ins.len() <= 2 && del.is_empty()));
        // Malformed lines are rejected with their line number.
        assert!(parse_ops_text("+ 0\n").unwrap_err().contains("line 1"));
        assert!(parse_ops_text("x 0 1\n").unwrap_err().contains("line 1"));
        assert!(parse_ops_text("+ 0 1 2\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn update_then_count_round_trips_through_the_wal() {
        let dir = temp_dir("update");
        let graph = dir.join("graph.txt");
        let wal = dir.join("graph.wal");
        let ops = dir.join("ops.txt");
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(dir.join("graph.wal.ckpt")).ok();
        // A path 0-1-2-3: no triangles.
        std::fs::write(&graph, "0 1\n1 2\n2 3\n").unwrap();
        std::fs::write(&ops, "+ 0 2\n+ 1 3\n- 2 3\n").unwrap();
        let run_args = |argv: &[&str]| run(parse_args(&strings(argv)).unwrap());
        // Commit: closes triangle 0-1-2, opens 1-3, drops 2-3.
        run_args(&[
            "update",
            "--graph",
            graph.to_str().unwrap(),
            "--wal",
            wal.to_str().unwrap(),
            "--ops",
            ops.to_str().unwrap(),
        ])
        .unwrap();
        // A second run replays the WAL and commits a further edge.
        run_args(&[
            "update",
            "--graph",
            graph.to_str().unwrap(),
            "--wal",
            wal.to_str().unwrap(),
            "--insert",
            "0",
            "3",
            "--checkpoint",
        ])
        .unwrap();
        // The recovered graph: edges 01 12 02 13 03 -> triangles 012, 013.
        let base = load_graph(graph.to_str().unwrap(), GraphFormat::Auto).unwrap();
        let (durable, recovery) =
            DurableGraph::open(base, &wal, DurableGraphOptions::default()).unwrap();
        assert!(recovery.checkpoint_loaded, "second run checkpointed");
        let engine = GraphPi::new(durable.snapshot().graph().as_ref().clone());
        assert_eq!(engine.count(&prefab::triangle()).unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_needs_no_pattern_but_count_does() {
        assert!(parse_args(&strings(&["stats", "--graph", "g.txt"])).is_ok());
        assert!(parse_args(&strings(&["count", "--graph", "g.txt"])).is_err());
        assert!(parse_args(&strings(&["bogus"])).is_err());
        assert!(parse_args(&strings(&["count", "--pattern", "p1"])).is_err());
    }

    #[test]
    fn pattern_resolution() {
        assert_eq!(resolve_pattern("house").unwrap(), prefab::house());
        assert_eq!(resolve_pattern("P3").unwrap(), prefab::p3());
        assert_eq!(resolve_pattern("clique4").unwrap(), prefab::clique(4));
        assert_eq!(resolve_pattern("cycle5").unwrap(), prefab::cycle_pattern(5));
        assert_eq!(
            resolve_pattern("adj:011101110").unwrap(),
            prefab::triangle()
        );
        assert!(resolve_pattern("nonsense").is_err());
    }

    #[test]
    fn end_to_end_on_a_temporary_graph() {
        let dir = temp_dir("e2e");
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "0 1\n1 2\n0 2\n2 3\n").unwrap();
        let args = parse_args(&strings(&[
            "count",
            "--graph",
            path.to_str().unwrap(),
            "--pattern",
            "triangle",
            "--threads",
            "1",
        ]))
        .unwrap();
        assert!(run(args).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_then_count_binary_end_to_end() {
        let dir = temp_dir("convert");
        let text = dir.join("graph.txt");
        let bin = dir.join("graph.bin");
        std::fs::write(&text, "0 1\n1 2\n0 2\n2 3\n1 3\n3 4\n").unwrap();
        let convert = parse_args(&strings(&[
            "convert",
            text.to_str().unwrap(),
            bin.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run(convert).is_ok());
        assert!(io::sniff_is_binary(bin.to_str().unwrap()));
        assert!(!io::sniff_is_binary(text.to_str().unwrap()));
        // Explicit binary format and auto-sniffed both count identically.
        for format_args in [vec![], vec!["--format", "binary"]] {
            let mut argv = vec![
                "count",
                "--graph",
                bin.to_str().unwrap(),
                "--pattern",
                "triangle",
                "--threads",
                "1",
            ];
            argv.extend(format_args);
            assert!(run(parse_args(&strings(&argv)).unwrap()).is_ok());
        }
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&bin).ok();
    }
}
