//! Network serving: the GraphPi wire protocol, the blocking TCP server,
//! and the client library.
//!
//! The engine's [`Session`](crate::engine::Session) serves warm concurrent
//! queries to in-process callers; this module puts that session behind a
//! socket. [`protocol`] defines the length-prefixed binary frame format
//! and the [`Transport`] seam, [`server`] owns the
//! accept loop, admission control, overload shedding, deadlines and
//! graceful drain, [`client`] is the synchronous request/response
//! library (including the [`RetryPolicy`]-driven [`RetryingClient`])
//! the CLI's `remote` subcommand and the network test suites are built
//! on, and [`chaos`] is the seeded fault-injection harness that proves
//! the rest of it honest.
//!
//! The full frame layout, opcode list and error-code table are documented
//! in `docs/protocol.md`.
//!
//! ```no_run
//! use graphpi_core::config::ServeOptions;
//! use graphpi_core::engine::GraphPi;
//! use graphpi_core::net::{Client, Server};
//! use graphpi_graph::generators;
//! use graphpi_pattern::prefab;
//!
//! let engine = GraphPi::new(generators::power_law(300, 5, 7));
//! let server = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::scope(|scope| {
//!     scope.spawn(|| server.serve(&engine).unwrap());
//!     let mut client = Client::connect(addr).unwrap();
//!     let houses = client.count(&prefab::house()).unwrap();
//!     println!("{} houses", houses.count);
//!     client.shutdown_server().unwrap();
//! });
//! ```

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod replica;
pub mod server;

pub use chaos::{ChaosConfig, ChaosConnector, ChaosProxy, ChaosStats, ChaosTransport};
pub use client::{
    Client, FailoverClient, FailoverStats, RemoteCount, RemoteCountOptions, RemoteEnumerateOptions,
    RemoteEnumeration, RemoteUpdateOptions, RetryPolicy, RetryStats, RetryingClient,
};
pub use protocol::{
    CountExt, ErrorCode, Frame, HealthOk, HealthState, NetError, OrbitSummary, PromoteOk,
    QueryMode, ReplAck, ReplBatch, ReplPayload, ReplRole, ReplSubscribe, SampleSummary, StatsOk,
    TcpTransport, Transport, UpdateOk, UpdateRequest,
};
pub use replica::{run_replication, ReplicaReport};
pub use server::{ReplState, Server, ServerHandle, ServerReport};
