//! The blocking TCP server: one [`crate::engine::Session`] served to many
//! connections over the [`super::protocol`] wire format.
//!
//! # Architecture
//!
//! One thread (the caller of [`Server::serve`]) runs a non-blocking accept
//! loop; every accepted connection gets a scoped handler thread that speaks
//! strict request/response framing. Handlers never touch each other's
//! state, so **a bad frame kills its connection, never the server**:
//! framing errors (bad magic, wrong version, oversized length, mid-frame
//! truncation) answer with a typed error frame and close that one
//! connection, while content errors inside a well-formed frame (unknown
//! opcode, bad payload, rejected pattern, expired deadline) answer and keep
//! the connection open.
//!
//! Queries execute on the shared multi-tenant
//! [`WorkerPool`] through an **admission
//! gate** sized to the pool's `max_in_flight`. The gate, not the pool, is
//! where excess queries wait — unlike the pool's own blocking submit path,
//! a gated wait can observe the query's deadline, so a queued query whose
//! deadline expires is cancelled *without ever executing* (true
//! cancellation, not post-hoc reporting). Deadlines are also re-checked
//! after execution, so a reply never claims to have met a deadline it
//! missed. A query that panics inside the engine is isolated twice: the
//! pool contains it to the job's slot, and the handler's `catch_unwind`
//! converts it into an [`ErrorCode::Internal`] response.
//!
//! Graceful shutdown (the `SHUTDOWN` opcode or [`ServerHandle::shutdown`])
//! flips the draining flag: the accept loop stops and **closes the
//! listener** (new connects are refused at the OS level), in-flight queries
//! run to completion and their replies are delivered, idle connections are
//! told [`ErrorCode::ShuttingDown`] and closed, and — when a persistence
//! path is configured — the plan cache's keys are saved for the next
//! process's warm start ([`crate::persist`]).

use crate::config::{PoolOptions, ServeOptions};
use crate::dynamic::DynamicEngine;
use crate::engine::{
    CacheStats, CountOptions, GraphPi, PlanCache, PlanOptions, SavedPlanKey, Session,
    WarmStartReport,
};
use crate::exec::pool::WorkerPool;
use crate::net::protocol::{
    max_embeddings_per_page, op, CountExt, CountOk, CountRequest, EnumPage, EnumerateRequest,
    ErrorCode, Frame, HealthOk, HealthState, LatencyHistogram, NetError, OrbitSummary, PromoteOk,
    QueryMode, ReplAck, ReplBatch, ReplPayload, ReplRole, ReplSubscribe, SampleSummary, StatsOk,
    TcpTransport, Transport, UpdateOk, UpdateRequest, HISTOGRAM_BUCKETS, REPL_CHUNK_BYTES,
};
use crate::persist;
use graphpi_graph::delta::{DeltaError, EdgeBatch};
use graphpi_graph::wal::{DurableError, ShipPoint, WalReader};
use graphpi_pattern::Pattern;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long the accept loop naps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// How often the snapshot thread wakes to check the drain flag (the
/// snapshot interval itself is user-configured and usually much longer).
const SNAPSHOT_POLL: Duration = Duration::from_millis(20);

/// Completed COUNT requests remembered per server for idempotent
/// retries. Bounded FIFO; old entries fall out once a retry can no
/// longer plausibly arrive.
const LEDGER_CAPACITY: usize = 1024;

/// Retry-after hint when the latency histogram is still empty.
const DEFAULT_RETRY_HINT_MS: u32 = 50;

/// How long a `COUNT` carrying a generation floor waits for replication
/// to catch up before answering `RETRY_LATER`.
const MIN_GENERATION_WAIT: Duration = Duration::from_millis(250);

/// Poll granularity while waiting out a generation floor.
const MIN_GENERATION_POLL: Duration = Duration::from_millis(5);

/// How long a caught-up replication stream naps between heartbeats.
const REPL_HEARTBEAT_PAUSE: Duration = Duration::from_millis(25);

/// How long a `PROMOTE` request waits for the replica's apply loop to
/// seal the stream and flip the role before reporting failure.
const PROMOTE_WAIT: Duration = Duration::from_secs(5);

/// Server counters, shared between the accept loop, the connection
/// handlers, and `STATS` replies. Plain relaxed atomics: these are
/// monotonic counters and gauges, not synchronization.
#[derive(Default)]
struct Metrics {
    connections_total: AtomicU64,
    active_connections: AtomicUsize,
    queries_total: AtomicU64,
    updates_total: AtomicU64,
    enumerations_total: AtomicU64,
    pages_sent: AtomicU64,
    deadline_exceeded: AtomicU64,
    protocol_errors: AtomicU64,
    overload_rejections: AtomicU64,
    warm_started: AtomicUsize,
    latency: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Metrics {
    fn record_latency(&self, micros: u64) {
        self.latency[LatencyHistogram::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    fn latency_snapshot(&self) -> LatencyHistogram {
        let mut hist = LatencyHistogram::default();
        for (bucket, counter) in hist.buckets.iter_mut().zip(self.latency.iter()) {
            *bucket = counter.load(Ordering::Relaxed);
        }
        hist
    }
}

/// Shared replication role and telemetry for one serving process:
/// written by the serve loop (primary side), the replica apply loop
/// ([`crate::net::replica`]), and signal handlers; read by every
/// connection handler. Atomics and one tiny mutex — nothing here blocks
/// the request path.
pub struct ReplState {
    role: AtomicU8,
    /// On a replica: the primary's generation as of the last
    /// `REPL_BATCH` heard (the minuend of the lag gauge).
    primary_generation: AtomicU64,
    /// On a replica: where writes should go, handed to clients inside
    /// `NOT_PRIMARY` errors. Empty when unknown.
    primary_addr: Mutex<String>,
    promote_requested: AtomicBool,
    subscribers: AtomicUsize,
    /// Primary side: the freshest subscriber lag observed at an ack.
    subscriber_lag: AtomicU64,
    batches_shipped: AtomicU64,
}

impl ReplState {
    /// A read-write primary (also the default for servers that never
    /// heard of replication).
    pub fn primary() -> Arc<ReplState> {
        Arc::new(ReplState {
            role: AtomicU8::new(ReplRole::Primary.code()),
            primary_generation: AtomicU64::new(0),
            primary_addr: Mutex::new(String::new()),
            promote_requested: AtomicBool::new(false),
            subscribers: AtomicUsize::new(0),
            subscriber_lag: AtomicU64::new(0),
            batches_shipped: AtomicU64::new(0),
        })
    }

    /// A read replica following the primary at `primary_addr`.
    pub fn replica(primary_addr: &str) -> Arc<ReplState> {
        let state = Self::primary();
        state.set_role(ReplRole::Replica);
        *state
            .primary_addr
            .lock()
            .expect("replication state poisoned") = primary_addr.to_string();
        state
    }

    /// The current role.
    pub fn role(&self) -> ReplRole {
        ReplRole::from_code(self.role.load(Ordering::Acquire)).unwrap_or(ReplRole::Primary)
    }

    /// Flips the role (the replica apply loop moves Replica → Promoting
    /// → Primary; nothing ever demotes a primary in-process).
    pub fn set_role(&self, role: ReplRole) {
        self.role.store(role.code(), Ordering::Release);
    }

    /// Where writes should go when this node is not the primary (empty
    /// when unknown).
    pub fn primary_addr(&self) -> String {
        self.primary_addr
            .lock()
            .expect("replication state poisoned")
            .clone()
    }

    /// Asks the replica's apply loop to seal the stream and flip this
    /// node to primary (`graphpi-cli promote` and `SIGUSR1` both land
    /// here). Harmless on a primary.
    pub fn request_promote(&self) {
        self.promote_requested.store(true, Ordering::Release);
    }

    /// Whether a promotion has been requested and not yet completed.
    pub fn promote_requested(&self) -> bool {
        self.promote_requested.load(Ordering::Acquire)
    }

    /// Records the primary's generation heard in a `REPL_BATCH`.
    pub fn note_primary_generation(&self, generation: u64) {
        self.primary_generation.store(generation, Ordering::Release);
    }

    fn note_shipment(&self, lag: u64) {
        self.subscriber_lag.store(lag, Ordering::Relaxed);
        self.batches_shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Connected replication subscribers (primary side).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.load(Ordering::Relaxed)
    }

    /// `REPL_BATCH` frames shipped over this process's lifetime.
    pub fn batches_shipped(&self) -> u64 {
        self.batches_shipped.load(Ordering::Relaxed)
    }

    /// The lag gauge served in `HEALTH`/`STATS`: on a primary, the
    /// freshest subscriber lag; on a replica, how many generations the
    /// primary is known to be ahead of `local_generation`.
    pub fn replication_lag(&self, local_generation: u64) -> u64 {
        match self.role() {
            ReplRole::Primary => self.subscriber_lag.load(Ordering::Relaxed),
            _ => self
                .primary_generation
                .load(Ordering::Acquire)
                .saturating_sub(local_generation),
        }
    }
}

/// The outcome of asking the admission gate for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admit {
    /// A permit was taken; the caller must `release()` after executing.
    Admitted,
    /// The query's deadline expired while queued; no permit consumed.
    DeadlineExpired,
    /// The wait queue is at its bound; the caller should answer
    /// [`ErrorCode::RetryLater`] *immediately* instead of queueing.
    Overloaded,
}

/// Waiters and permits behind the admission gate's one lock.
struct AdmissionState {
    permits: usize,
    waiting: usize,
}

/// A counting gate in front of the worker pool, sized to the pool's
/// `max_in_flight`, with a *bounded* wait queue. Handlers wait *here*
/// instead of inside the pool's blocking submit path because a gate wait
/// can time out: that is what turns a queued query's deadline into real
/// cancellation. The queue bound is what turns overload into immediate,
/// typed shedding ([`Admit::Overloaded`]) instead of unbounded queueing:
/// by construction the `queued` gauge can never exceed `max_waiting`.
struct Admission {
    state: Mutex<AdmissionState>,
    available: Condvar,
    max_waiting: usize,
}

impl Admission {
    fn new(permits: usize, max_waiting: usize) -> Self {
        Self {
            state: Mutex::new(AdmissionState {
                permits: permits.max(1),
                waiting: 0,
            }),
            available: Condvar::new(),
            max_waiting: max_waiting.max(1),
        }
    }

    /// Acquires a permit, giving up at `deadline`, refusing outright when
    /// the wait queue is full.
    fn acquire_until(&self, deadline: Option<Instant>) -> Admit {
        let mut state = self.state.lock().expect("admission gate poisoned");
        if state.permits > 0 {
            state.permits -= 1;
            return Admit::Admitted;
        }
        if state.waiting >= self.max_waiting {
            return Admit::Overloaded;
        }
        state.waiting += 1;
        loop {
            if state.permits > 0 {
                state.permits -= 1;
                state.waiting -= 1;
                return Admit::Admitted;
            }
            match deadline {
                None => {
                    state = self.available.wait(state).expect("admission gate poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        state.waiting -= 1;
                        return Admit::DeadlineExpired;
                    }
                    state = self
                        .available
                        .wait_timeout(state, deadline - now)
                        .expect("admission gate poisoned")
                        .0;
                }
            }
        }
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("admission gate poisoned");
        state.permits += 1;
        self.available.notify_one();
    }

    /// Current wait-queue depth (the `queued` stat).
    fn waiting(&self) -> usize {
        self.state.lock().expect("admission gate poisoned").waiting
    }

    /// Whether a new query would be shed right now.
    fn is_full(&self) -> bool {
        let state = self.state.lock().expect("admission gate poisoned");
        state.permits == 0 && state.waiting >= self.max_waiting
    }
}

/// FNV-1a over the request fields that determine the answer. Ledger
/// entries only replay for the *same* logical query, so an id collision
/// between two different clients can never serve the wrong count.
fn request_fingerprint(request: &CountRequest) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    };
    eat(u8::from(request.no_iep));
    eat(u8::from(request.hub_bitsets));
    // The execution mode changes the answer, so orbit/sample replies can
    // never replay for a plain count retry (or vice versa).
    match request.mode {
        QueryMode::Count => eat(0),
        QueryMode::Orbit => eat(1),
        QueryMode::Sample { seed, rate_bits } => {
            eat(2);
            for byte in seed.to_le_bytes().into_iter().chain(rate_bits.to_le_bytes()) {
                eat(byte);
            }
        }
    }
    for byte in &request.pattern {
        eat(*byte);
    }
    hash
}

/// FNV-1a over an update's edge lists. The leading tag byte separates the
/// update domain from [`request_fingerprint`]'s count domain, so a count
/// retry can never replay an update reply (or vice versa) even if the two
/// requests reused one ID.
fn update_fingerprint(request: &UpdateRequest) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    };
    eat(0xD5);
    for side in [&request.inserts, &request.deletes] {
        for &(a, b) in side.iter() {
            for byte in a.to_le_bytes().into_iter().chain(b.to_le_bytes()) {
                eat(byte);
            }
        }
        eat(0xFE);
    }
    hash
}

/// A reply the ledger can replay: counts and updates share the ID space
/// but never each other's entries (the fingerprint domains differ, and
/// the variant is re-checked on lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LedgerReply {
    Count(CountOk),
    Update(UpdateOk),
}

/// Completed-request ledger: request ID → (fingerprint, reply). A retry
/// carrying a known ID is answered from here without re-executing (or
/// double-counting) the query — that is what makes resending after an
/// ambiguous failure safe. For updates this is the idempotency mechanism:
/// a replayed `UPDATE` reports the generation it originally produced
/// instead of committing twice. Bounded FIFO eviction.
struct RequestLedger {
    inner: Mutex<LedgerInner>,
    capacity: usize,
}

struct LedgerInner {
    replies: HashMap<u64, (u64, LedgerReply)>,
    order: VecDeque<u64>,
}

impl RequestLedger {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LedgerInner {
                replies: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// The recorded reply for `id`, if it exists *and* belongs to the
    /// same logical request.
    fn lookup(&self, id: u64, fingerprint: u64) -> Option<LedgerReply> {
        let inner = self.inner.lock().expect("ledger poisoned");
        match inner.replies.get(&id) {
            Some((stored, reply)) if *stored == fingerprint => Some(*reply),
            _ => None,
        }
    }

    fn record(&self, id: u64, fingerprint: u64, reply: LedgerReply) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        if inner.replies.insert(id, (fingerprint, reply)).is_none() {
            inner.order.push_back(id);
            if inner.order.len() > self.capacity {
                if let Some(evict) = inner.order.pop_front() {
                    inner.replies.remove(&evict);
                }
            }
        }
    }
}

/// What a server is serving: one immutable engine behind a long-lived
/// [`Session`], or a [`DynamicEngine`] whose generations come and go.
///
/// The static arm keeps the original zero-overhead path: one session,
/// planned options resolved once. The dynamic arm pins the current
/// generation *per query* and builds a transient session against the
/// pinned engine — the pin is what guarantees a query sees exactly one
/// generation even while batches commit mid-flight, and the shared pool
/// and plan cache are what keep a re-pinned query as cheap as a static
/// one (same workers, warm plans keyed by the generation's stats
/// fingerprint).
enum ServeBackend<'a> {
    Static(Session<'a>),
    Dynamic {
        engine: &'a DynamicEngine,
        pool: Arc<WorkerPool>,
        cache: Arc<PlanCache>,
    },
}

impl ServeBackend<'_> {
    /// Runs `f` against a session pinned to a single consistent
    /// generation: the long-lived session on a static backend, a transient
    /// session over the pinned current generation on a dynamic one (the
    /// shared pool and plan cache keep the transient session as cheap as
    /// the static path).
    fn with_session<R>(&self, f: impl FnOnce(&Session<'_>) -> R) -> R {
        match self {
            ServeBackend::Static(session) => f(session),
            ServeBackend::Dynamic {
                engine,
                pool,
                cache,
            } => {
                let pin = engine.pin();
                let session = pin.engine().session_shared(
                    Arc::clone(pool),
                    Arc::clone(cache),
                    PlanOptions::default(),
                    CountOptions::default(),
                );
                f(&session)
            }
        }
    }

    /// Runs one count-family query in the requested execution mode,
    /// returning the wire reply body: the headline count plus the
    /// mode-specific extension (orbit summary / sample estimate).
    ///
    /// Orbit replies summarise the per-vertex vector instead of shipping
    /// it — a full vector over a large graph exceeds the frame cap; the
    /// full vector stays a local-API affordance
    /// ([`Session::count_per_vertex`]).
    fn count_mode(
        &self,
        pattern: &Pattern,
        options: CountOptions,
        mode: QueryMode,
    ) -> Result<(u64, CountExt), crate::error::EngineError> {
        self.with_session(|session| match mode {
            QueryMode::Count => session
                .count_with(pattern, options)
                .map(|count| (count, CountExt::None)),
            QueryMode::Orbit => {
                let counts = session.count_per_vertex_with(pattern, options)?;
                let sum: u64 = counts.iter().sum();
                let nonzero_vertices = counts.iter().filter(|&&c| c > 0).count() as u64;
                let (max_vertex, max_count) = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(v, &c)| (v as u32, c))
                    .unwrap_or((0, 0));
                // Every embedding touches pattern-size vertices, so the
                // headline count is the exact global count.
                let size = pattern.num_vertices() as u64;
                Ok((
                    sum / size.max(1),
                    CountExt::Orbit(OrbitSummary {
                        sum,
                        nonzero_vertices,
                        max_count,
                        max_vertex,
                    }),
                ))
            }
            QueryMode::Sample { seed, rate_bits } => {
                let rate = f64::from_bits(rate_bits);
                let approx = session.count_approx_with(pattern, rate, seed, options)?;
                Ok((
                    approx.estimate.round().max(0.0) as u64,
                    CountExt::Sample(SampleSummary {
                        estimate_bits: approx.estimate.to_bits(),
                        stderr_bits: approx.stderr.to_bits(),
                        sampled_tasks: approx.sampled_tasks,
                        total_tasks: approx.total_tasks,
                    }),
                ))
            }
        })
    }

    /// Enumerates up to `limit` embeddings against a single consistent
    /// generation (flattened page source for the `ENUMERATE` stream).
    fn enumerate_with(
        &self,
        pattern: &Pattern,
        limit: u64,
        options: CountOptions,
    ) -> Result<Vec<Vec<u32>>, crate::error::EngineError> {
        self.with_session(|session| session.enumerate_with(pattern, limit, options))
    }

    /// The dynamic engine, when updates are accepted.
    fn dynamic(&self) -> Option<&DynamicEngine> {
        match self {
            ServeBackend::Static(_) => None,
            ServeBackend::Dynamic { engine, .. } => Some(engine),
        }
    }

    /// The serving generation (0 for a static, immutable graph).
    fn generation(&self) -> u64 {
        match self {
            ServeBackend::Static(_) => 0,
            ServeBackend::Dynamic { engine, .. } => engine.generation(),
        }
    }

    fn pool(&self) -> &WorkerPool {
        match self {
            ServeBackend::Static(session) => session.pool(),
            ServeBackend::Dynamic { pool, .. } => pool,
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            ServeBackend::Static(session) => session.cache_stats(),
            ServeBackend::Dynamic { cache, .. } => cache.stats(),
        }
    }

    /// Warm-starts the plan cache against the engine serving right now
    /// (for a dynamic backend: the recovered generation).
    fn warm_start(&self, keys: &[SavedPlanKey]) -> WarmStartReport {
        match self {
            ServeBackend::Static(session) => session.warm_start(keys),
            ServeBackend::Dynamic {
                engine,
                pool,
                cache,
            } => {
                let pin = engine.pin();
                let session = pin.engine().session_shared(
                    Arc::clone(pool),
                    Arc::clone(cache),
                    PlanOptions::default(),
                    CountOptions::default(),
                );
                session.warm_start(keys)
            }
        }
    }
}

/// Remote control for a running [`Server`]: clonable, valid across
/// threads, obtained from [`Server::handle`] before `serve` consumes the
/// server.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    draining: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on (with the OS-assigned port
    /// when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting, finish in-flight
    /// queries, persist the plan cache, return from `serve`.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

/// What [`Server::serve`] reports after draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Count queries that entered execution.
    pub queries: u64,
    /// Update batches that committed (always zero for a static server).
    pub updates: u64,
    /// The warm-start outcome at boot (zero when no persistence path or no
    /// snapshot existed).
    pub warm_start: WarmStartReport,
    /// Plan-cache keys persisted at shutdown (zero without a path).
    pub saved_plans: usize,
    /// Periodic background snapshots written while serving (zero without
    /// a path or a snapshot interval).
    pub snapshots_written: u64,
}

/// A bound-but-not-yet-serving GraphPi TCP server. Construction binds the
/// listener (so the OS-assigned port is known and a [`ServerHandle`] can
/// be taken); [`Server::serve`] then consumes the server and blocks until
/// drained.
pub struct Server {
    listener: TcpListener,
    pool: Arc<WorkerPool>,
    cache: Arc<PlanCache>,
    options: ServeOptions,
    draining: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// Binds `addr` with a fresh pool and plan cache per
    /// `options.pool`.
    pub fn bind(addr: impl ToSocketAddrs, options: ServeOptions) -> Result<Server, NetError> {
        let PoolOptions {
            threads,
            cache_capacity,
            max_in_flight,
        } = options.pool;
        Self::bind_shared(
            addr,
            Arc::new(WorkerPool::with_max_in_flight(threads, max_in_flight)),
            Arc::new(PlanCache::new(cache_capacity)),
            options,
        )
    }

    /// Binds `addr` on an existing pool and cache — the constructor tests
    /// use to keep their own handle on the pool (e.g. to assert
    /// `live_workers()` across fault injection), and the one that lets
    /// several servers share one pool.
    pub fn bind_shared(
        addr: impl ToSocketAddrs,
        pool: Arc<WorkerPool>,
        cache: Arc<PlanCache>,
        options: ServeOptions,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            pool,
            cache,
            options,
            draining: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(Metrics::default()),
        })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// A clonable remote control (take it before [`Server::serve`]).
    pub fn handle(&self) -> Result<ServerHandle, NetError> {
        Ok(ServerHandle {
            draining: Arc::clone(&self.draining),
            addr: self.listener.local_addr()?,
        })
    }

    /// The worker pool queries execute on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Serves `engine` until drained (via the `SHUTDOWN` opcode or
    /// [`ServerHandle::shutdown`]), then returns lifetime totals. Consumes
    /// the server so the listener is provably closed when this returns.
    /// The graph is immutable: `UPDATE` requests are refused with
    /// [`ErrorCode::ReadOnly`].
    pub fn serve(self, engine: &GraphPi) -> Result<ServerReport, NetError> {
        let session = engine.session_shared(
            Arc::clone(&self.pool),
            Arc::clone(&self.cache),
            PlanOptions::default(),
            CountOptions::default(),
        );
        self.serve_backend(ServeBackend::Static(session), ReplState::primary())
    }

    /// Serves a [`DynamicEngine`] until drained: counts pin the current
    /// generation per query, and the v2 `UPDATE` opcode commits edge
    /// batches (durably, when the engine was opened with a WAL).
    pub fn serve_dynamic(self, engine: &DynamicEngine) -> Result<ServerReport, NetError> {
        self.serve_dynamic_with_repl(engine, ReplState::primary())
    }

    /// Serves a [`DynamicEngine`] with an explicit replication role: the
    /// primary side answers `REPL_SUBSCRIBE` with WAL fan-out, and a
    /// replica whose apply loop shares `repl` refuses `UPDATE` with
    /// `NOT_PRIMARY` until promotion flips the role.
    pub fn serve_dynamic_with_repl(
        self,
        engine: &DynamicEngine,
        repl: Arc<ReplState>,
    ) -> Result<ServerReport, NetError> {
        let backend = ServeBackend::Dynamic {
            engine,
            pool: Arc::clone(&self.pool),
            cache: Arc::clone(&self.cache),
        };
        self.serve_backend(backend, repl)
    }

    fn serve_backend(
        self,
        backend: ServeBackend<'_>,
        repl: Arc<ReplState>,
    ) -> Result<ServerReport, NetError> {
        let Server {
            listener,
            pool,
            cache,
            options,
            draining,
            metrics,
        } = self;

        // Warm start: re-plan the previous process's working set so its
        // patterns are cache hits from the first query. A missing snapshot
        // is a cold start; a corrupt one is ignored (it must never prevent
        // serving) and will be overwritten at shutdown.
        let mut warm = WarmStartReport::default();
        if let Some(path) = &options.persist_path {
            if let Some(snapshot) = persist::try_load_plan_cache(path) {
                warm = backend.warm_start(&snapshot.keys);
                metrics.warm_started.store(warm.warmed, Ordering::Relaxed);
            }
        }

        // The wait queue is bounded: beyond it, queries are shed with
        // RETRY_LATER instead of queueing without limit. 0 = auto-size.
        let max_waiting = if options.max_queue_depth > 0 {
            options.max_queue_depth
        } else {
            (4 * pool.max_in_flight()).max(16)
        };
        let admission = Admission::new(pool.max_in_flight(), max_waiting);
        let ledger = RequestLedger::new(LEDGER_CAPACITY);
        let snapshots_written = AtomicU64::new(0);
        std::thread::scope(|scope| {
            // Crash safety: a background thread re-snapshots the plan
            // cache every `snapshot_interval`, so a `kill -9` loses at
            // most one interval of cache warmth, not the whole set.
            if let (Some(path), Some(interval)) = (&options.persist_path, options.snapshot_interval)
            {
                let cache = &cache;
                let draining = &draining;
                let snapshots_written = &snapshots_written;
                scope.spawn(move || {
                    let mut last = Instant::now();
                    while !draining.load(Ordering::Acquire) {
                        std::thread::sleep(SNAPSHOT_POLL);
                        if last.elapsed() >= interval {
                            if persist::save_plan_cache(cache, path).is_ok() {
                                snapshots_written.fetch_add(1, Ordering::Relaxed);
                            }
                            last = Instant::now();
                        }
                    }
                });
            }
            // Background maintenance: WAL checkpointing and overlay
            // compaction run here, off the committing thread, so a large
            // checkpoint stalls neither commits (the commit lock is held
            // only for the final swap) nor queries.
            if let (Some(interval), Some(engine)) = (options.checkpoint_interval, backend.dynamic())
            {
                let draining = &draining;
                scope.spawn(move || {
                    let mut last = Instant::now();
                    while !draining.load(Ordering::Acquire) {
                        std::thread::sleep(SNAPSHOT_POLL);
                        if last.elapsed() >= interval {
                            if engine.is_durable() {
                                let _ = engine.checkpoint();
                            }
                            engine.compact();
                            last = Instant::now();
                        }
                    }
                });
            }
            // The accept loop owns the listener; dropping it on drain is
            // what makes "rejects new connections" an OS-level refusal
            // rather than an unanswered socket.
            let listener = listener;
            loop {
                if draining.load(Ordering::Acquire) {
                    drop(listener);
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                        let limit = options.max_connections;
                        if limit > 0 && metrics.active_connections.load(Ordering::Relaxed) >= limit
                        {
                            let mut transport = TcpTransport::new(stream);
                            let _ = transport.send(&Frame::error(
                                ErrorCode::TooManyConnections,
                                &format!("connection limit {limit} reached"),
                            ));
                            continue;
                        }
                        metrics.active_connections.fetch_add(1, Ordering::Relaxed);
                        let backend = &backend;
                        let metrics = &metrics;
                        let admission = &admission;
                        let ledger = &ledger;
                        let draining = &draining;
                        let repl = &repl;
                        let read_timeout = options.read_timeout;
                        scope.spawn(move || {
                            handle_connection(
                                stream,
                                backend,
                                metrics,
                                admission,
                                ledger,
                                draining,
                                repl,
                                read_timeout,
                            );
                            metrics.active_connections.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // Transient per-connection accept failures (e.g. the
                    // peer reset before accept) must not stop the server.
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // Scope exit waits for every handler: that wait IS the drain.
        });

        let saved_plans = match &options.persist_path {
            Some(path) => persist::save_plan_cache(&cache, path).unwrap_or(0),
            None => 0,
        };
        Ok(ServerReport {
            connections: metrics.connections_total.load(Ordering::Relaxed),
            queries: metrics.queries_total.load(Ordering::Relaxed),
            updates: metrics.updates_total.load(Ordering::Relaxed),
            warm_start: warm,
            saved_plans,
            snapshots_written: snapshots_written.load(Ordering::Relaxed),
        })
    }
}

/// Speaks the protocol with one client until EOF, a framing error, or
/// drain. Never panics outward and never takes the server down.
///
/// Version negotiation is per-frame: each reply echoes the request's
/// version byte, so a v1 client talks v1 end to end (and never sees
/// v2-only payload extensions like retry-after hints) while a v2 client
/// on the same server gets the full protocol.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    backend: &ServeBackend<'_>,
    metrics: &Metrics,
    admission: &Admission,
    ledger: &RequestLedger,
    draining: &AtomicBool,
    repl: &ReplState,
    read_timeout: Duration,
) {
    // The read timeout is the handler's poll granularity: an idle wait
    // wakes up this often to notice a drain. Zero would mean non-blocking
    // reads (a busy loop), so it is clamped away.
    let timeout = if read_timeout.is_zero() {
        Duration::from_millis(50)
    } else {
        read_timeout
    };
    stream.set_read_timeout(Some(timeout)).ok();
    let mut transport = TcpTransport::new(stream);
    loop {
        if draining.load(Ordering::Acquire) {
            let _ = transport.send(&Frame::error(
                ErrorCode::ShuttingDown,
                "server is draining; reconnect later",
            ));
            return;
        }
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(NetError::Idle) => continue,
            Err(NetError::Closed) => return,
            Err(error) => {
                // Framing is broken: answer with the matching typed code
                // (best-effort — the peer may already be gone) and drop
                // this one connection.
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let code = match &error {
                    NetError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
                    NetError::FrameTooLarge(_) => ErrorCode::FrameTooLarge,
                    _ => ErrorCode::BadFrame,
                };
                let _ = transport.send(&Frame::error(code, &error.to_string()));
                return;
            }
        };
        let peer = frame.version;
        let keep_alive = match frame.opcode {
            op::PING => transport
                .send(&Frame::with_version(peer, op::PONG, frame.payload))
                .is_ok(),
            op::STATS => {
                let reply = stats_frame(peer, backend, metrics, admission, repl);
                transport.send(&reply).is_ok()
            }
            op::HEALTH => {
                let reply = health_frame(peer, backend, metrics, admission, draining, repl);
                transport.send(&reply).is_ok()
            }
            op::COUNT => handle_count(
                &mut transport,
                peer,
                &frame.payload,
                backend,
                metrics,
                admission,
                ledger,
            ),
            // ENUMERATE is a v2 opcode: the paged reply stream does not
            // exist in protocol v1.
            op::ENUMERATE if peer >= 2 => handle_enumerate(
                &mut transport,
                peer,
                &frame.payload,
                backend,
                metrics,
                admission,
            ),
            // UPDATE is a v2 opcode: a v1 peer sending it gets the same
            // UnknownOpcode a v1 server would have answered, so mixed
            // fleets fail loudly instead of half-applying.
            op::UPDATE if peer >= 2 => handle_update(
                &mut transport,
                peer,
                &frame.payload,
                backend,
                metrics,
                admission,
                ledger,
                repl,
            ),
            // Subscribing hands the whole connection over to the
            // replication stream; it never returns to request/response
            // framing, so the handler closes it when shipping ends.
            op::REPL_SUBSCRIBE if peer >= 2 => {
                handle_replication(
                    &mut transport,
                    peer,
                    &frame.payload,
                    backend,
                    repl,
                    metrics,
                    draining,
                );
                false
            }
            op::PROMOTE if peer >= 2 => {
                handle_promote(&mut transport, peer, &frame.payload, backend, repl, metrics)
            }
            op::SHUTDOWN => {
                draining.store(true, Ordering::Release);
                let _ = transport.send(&Frame::with_version(peer, op::SHUTDOWN_OK, vec![]));
                false
            }
            other => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                transport
                    .send(&error_frame(
                        peer,
                        ErrorCode::UnknownOpcode,
                        &format!(
                            "opcode {other:#04x} is not part of protocol v{}",
                            super::protocol::VERSION
                        ),
                        None,
                    ))
                    .is_ok()
            }
        };
        if !keep_alive {
            return;
        }
    }
}

/// Builds an error reply for a peer speaking protocol `version`. The
/// retry-after hint is a v2 payload extension, so it is dropped (not
/// mis-encoded) for v1 peers.
fn error_frame(version: u8, code: ErrorCode, message: &str, retry_after_ms: Option<u32>) -> Frame {
    let frame = match retry_after_ms {
        Some(ms) if version >= 2 => Frame::error_with_hint(code, message, ms),
        _ => Frame::error(code, message),
    };
    Frame::with_version(version, frame.opcode, frame.payload)
}

/// The retry-after hint for shed queries: the observed median execution
/// latency (one queue "turn"), clamped to a sane band. An empty
/// histogram (cold server under a thundering herd) falls back to a flat
/// default.
fn retry_after_hint_ms(metrics: &Metrics) -> u32 {
    let histogram = metrics.latency_snapshot();
    let median_us = histogram
        .percentile_upper_bound_micros(0.5)
        .unwrap_or(u64::from(DEFAULT_RETRY_HINT_MS) * 1000);
    (median_us / 1000).clamp(1, 5_000) as u32
}

/// Runs one `COUNT` request end to end. Returns whether the connection
/// stays open (false only when the reply could not be sent).
#[allow(clippy::too_many_arguments)]
fn handle_count(
    transport: &mut TcpTransport,
    peer: u8,
    payload: &[u8],
    backend: &ServeBackend<'_>,
    metrics: &Metrics,
    admission: &Admission,
    ledger: &RequestLedger,
) -> bool {
    let request = match CountRequest::decode(payload) {
        Some(request) => request,
        None => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::BadPayload,
                    "count payload must be [flags u8][deadline_ms u32][id u64?][pattern bytes]",
                    None,
                ))
                .is_ok();
        }
    };
    // Idempotent retry: a request ID we have already answered replays
    // the recorded reply — no admission, no execution, no double count.
    let fingerprint = request_fingerprint(&request);
    if request.request_id != 0 {
        if let Some(LedgerReply::Count(recorded)) = ledger.lookup(request.request_id, fingerprint) {
            return transport
                .send(&Frame::with_version(peer, op::COUNT_OK, recorded.encode()))
                .is_ok();
        }
    }
    let pattern = match Pattern::from_canonical_bytes(&request.pattern) {
        Some(pattern) => pattern,
        None => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::BadPayload,
                    "pattern bytes are not a valid canonical pattern",
                    None,
                ))
                .is_ok();
        }
    };
    // Execution modes are a v2 feature: the mode-extended reply would not
    // parse on a v1 peer, so a v1 frame carrying a mode is refused.
    if peer < 2 && request.mode != QueryMode::Count {
        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return transport
            .send(&error_frame(
                peer,
                ErrorCode::BadPayload,
                "execution modes (orbit/sample) require protocol v2",
                None,
            ))
            .is_ok();
    }
    // A nonsensical sample rate is a content error in a well-formed
    // frame: typed reply, connection stays open, nothing executes.
    if let Some(rate) = request.mode.sample_rate() {
        if !rate.is_finite() || rate <= 0.0 {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::InvalidArgument,
                    "sample rate must be a finite value in (0, 1]",
                    None,
                ))
                .is_ok();
        }
    }
    let deadline = (request.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(u64::from(request.deadline_ms)));

    // Read-your-writes: a v2 client may set a generation floor. Small
    // replication lag is absorbed by waiting briefly (before admission,
    // so the wait burns no pool slot); past the wait budget the client
    // is told RETRY_LATER — retrying another replica beats pinning a
    // handler thread here.
    if request.min_generation > 0 {
        let Some(engine) = backend.dynamic() else {
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::BadPayload,
                    "a generation floor needs a dynamic server; this graph is immutable",
                    None,
                ))
                .is_ok();
        };
        let wait_until = {
            let cap = Instant::now() + MIN_GENERATION_WAIT;
            deadline.map_or(cap, |d| d.min(cap))
        };
        while engine.generation() < request.min_generation {
            if Instant::now() >= wait_until {
                let current = engine.generation();
                return transport
                    .send(&error_frame(
                        peer,
                        ErrorCode::RetryLater,
                        &format!(
                            "graph is at generation {current}, below the requested floor {}",
                            request.min_generation
                        ),
                        Some(MIN_GENERATION_WAIT.as_millis() as u32),
                    ))
                    .is_ok();
            }
            std::thread::sleep(MIN_GENERATION_POLL);
        }
    }

    // Queue for admission. On expiry the query is cancelled having
    // consumed no pool slot and no worker time; a full wait queue sheds
    // the query immediately with a typed RETRY_LATER and a hint.
    match admission.acquire_until(deadline) {
        Admit::Admitted => {}
        Admit::DeadlineExpired => {
            metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::DeadlineExceeded,
                    "deadline expired while queued; the query was not executed",
                    None,
                ))
                .is_ok();
        }
        Admit::Overloaded => {
            metrics.overload_rejections.fetch_add(1, Ordering::Relaxed);
            let hint = retry_after_hint_ms(metrics);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::RetryLater,
                    "admission queue is full; the query was not executed",
                    Some(hint),
                ))
                .is_ok();
        }
    }

    metrics.queries_total.fetch_add(1, Ordering::Relaxed);
    let count_options = CountOptions {
        use_iep: !request.no_iep,
        hub_bitsets: request.hub_bitsets,
        ..CountOptions::default()
    };
    let start = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        backend.count_mode(&pattern, count_options, request.mode)
    }));
    let elapsed = start.elapsed();
    admission.release();

    let reply = match outcome {
        Err(_) => error_frame(
            peer,
            ErrorCode::Internal,
            "query panicked; the worker pool isolated it",
            None,
        ),
        Ok(Err(engine_error)) => error_frame(
            peer,
            ErrorCode::PatternRejected,
            &engine_error.to_string(),
            None,
        ),
        Ok(Ok((count, ext))) => {
            let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
            metrics.record_latency(micros);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                error_frame(
                    peer,
                    ErrorCode::DeadlineExceeded,
                    "query completed after its deadline",
                    None,
                )
            } else {
                let ok = CountOk {
                    count,
                    elapsed_micros: micros,
                    ext,
                };
                if request.request_id != 0 {
                    ledger.record(request.request_id, fingerprint, LedgerReply::Count(ok));
                }
                Frame::with_version(peer, op::COUNT_OK, ok.encode())
            }
        }
    };
    transport.send(&reply).is_ok()
}

/// Runs one `ENUMERATE` request end to end: decode, admit, enumerate up
/// to the limit, then stream the embeddings as `ENUM_PAGE` frames.
/// Returns whether the connection stays open.
///
/// The admission permit covers only the matching itself — page streaming
/// is network-bound and must not hold a pool slot hostage to a slow
/// reader. The deadline is re-checked **between pages**, so a client can
/// bound how long a huge stream occupies its connection: an expired
/// deadline mid-stream answers a typed `DEADLINE_EXCEEDED` frame in
/// place of the next page (clients treat any error frame as terminating
/// the stream).
///
/// Enumeration is **not idempotent at the wire level** — there is no
/// request ID and no ledger entry: replaying pages after an ambiguous
/// failure could interleave two streams, and a truncated-limit re-run may
/// legitimately return different embeddings. Clients resume by issuing a
/// fresh request.
fn handle_enumerate(
    transport: &mut TcpTransport,
    peer: u8,
    payload: &[u8],
    backend: &ServeBackend<'_>,
    metrics: &Metrics,
    admission: &Admission,
) -> bool {
    let request = match EnumerateRequest::decode(payload) {
        Some(request) => request,
        None => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::BadPayload,
                    "enumerate payload must be [flags u8][deadline_ms u32][limit u64]\
                     [page_size u32][pattern bytes] with a nonzero limit",
                    None,
                ))
                .is_ok();
        }
    };
    let pattern = match Pattern::from_canonical_bytes(&request.pattern) {
        Some(pattern) => pattern,
        None => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::BadPayload,
                    "pattern bytes are not a valid canonical pattern",
                    None,
                ))
                .is_ok();
        }
    };
    let deadline = (request.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(u64::from(request.deadline_ms)));

    match admission.acquire_until(deadline) {
        Admit::Admitted => {}
        Admit::DeadlineExpired => {
            metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::DeadlineExceeded,
                    "deadline expired while queued; the enumeration was not executed",
                    None,
                ))
                .is_ok();
        }
        Admit::Overloaded => {
            metrics.overload_rejections.fetch_add(1, Ordering::Relaxed);
            let hint = retry_after_hint_ms(metrics);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::RetryLater,
                    "admission queue is full; the enumeration was not executed",
                    Some(hint),
                ))
                .is_ok();
        }
    }

    metrics.enumerations_total.fetch_add(1, Ordering::Relaxed);
    let count_options = CountOptions {
        hub_bitsets: request.hub_bitsets,
        ..CountOptions::default()
    };
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        backend.enumerate_with(&pattern, request.limit, count_options)
    }));
    admission.release();

    let embeddings = match outcome {
        Err(_) => {
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::Internal,
                    "enumeration panicked; the worker pool isolated it",
                    None,
                ))
                .is_ok();
        }
        Ok(Err(engine_error)) => {
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::PatternRejected,
                    &engine_error.to_string(),
                    None,
                ))
                .is_ok();
        }
        Ok(Ok(embeddings)) => embeddings,
    };

    // Page streaming: the requested page size is clamped to what a frame
    // can carry; 0 means "largest legal page".
    let k = pattern.num_vertices().max(1);
    let cap = max_embeddings_per_page(k).max(1);
    let per_page = match request.page_size {
        0 => cap,
        requested => (requested as usize).min(cap),
    };
    let total_pages = embeddings.len().div_ceil(per_page).max(1);
    for page_index in 0..total_pages {
        if page_index > 0 && deadline.is_some_and(|d| Instant::now() >= d) {
            metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::DeadlineExceeded,
                    "deadline expired mid-stream; remaining pages dropped",
                    None,
                ))
                .is_ok();
        }
        let start = page_index * per_page;
        let end = (start + per_page).min(embeddings.len());
        let mut vertices = Vec::with_capacity((end - start) * k);
        for embedding in &embeddings[start..end] {
            vertices.extend_from_slice(embedding);
        }
        let page = EnumPage {
            last: page_index + 1 == total_pages,
            pattern_size: k as u8,
            vertices,
        };
        if transport
            .send(&Frame::with_version(peer, op::ENUM_PAGE, page.encode()))
            .is_err()
        {
            return false;
        }
        metrics.pages_sent.fetch_add(1, Ordering::Relaxed);
    }
    true
}

/// Runs one `UPDATE` request end to end: decode, replay-check the
/// ledger, admit, commit through the dynamic engine, answer with the
/// applied generation. Returns whether the connection stays open.
///
/// Updates are **not naturally idempotent** — recommitting a batch that
/// already applied would burn a generation and, for delete-then-insert
/// mixes, can change the graph — so the ledger matters more here than
/// for counts: a retry carrying a known request ID is answered with the
/// originally applied generation without touching the graph or the WAL.
#[allow(clippy::too_many_arguments)]
fn handle_update(
    transport: &mut TcpTransport,
    peer: u8,
    payload: &[u8],
    backend: &ServeBackend<'_>,
    metrics: &Metrics,
    admission: &Admission,
    ledger: &RequestLedger,
    repl: &ReplState,
) -> bool {
    // A replica never commits client batches locally — the message field
    // carries the primary's address (possibly empty) so a
    // failover-aware client can re-route the write.
    if repl.role() != ReplRole::Primary {
        return transport
            .send(&error_frame(
                peer,
                ErrorCode::NotPrimary,
                &repl.primary_addr(),
                None,
            ))
            .is_ok();
    }
    let Some(engine) = backend.dynamic() else {
        return transport
            .send(&error_frame(
                peer,
                ErrorCode::ReadOnly,
                "this server serves an immutable graph; restart it with --wal to accept updates",
                None,
            ))
            .is_ok();
    };
    let request = match UpdateRequest::decode(payload) {
        Some(request) => request,
        None => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::BadPayload,
                    "update payload must be [flags u8][deadline_ms u32][id u64?]\
                     [n_ins u32][n_del u32][edge pairs]",
                    None,
                ))
                .is_ok();
        }
    };
    let fingerprint = update_fingerprint(&request);
    if request.request_id != 0 {
        if let Some(LedgerReply::Update(recorded)) = ledger.lookup(request.request_id, fingerprint)
        {
            return transport
                .send(&Frame::with_version(peer, op::UPDATE_OK, recorded.encode()))
                .is_ok();
        }
    }
    let deadline = (request.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(u64::from(request.deadline_ms)));

    // Updates queue at the same admission gate as counts, so a client
    // flooding commits is shed (or deadline-cancelled) exactly like a
    // client flooding queries — commit order itself is serialised inside
    // the engine.
    match admission.acquire_until(deadline) {
        Admit::Admitted => {}
        Admit::DeadlineExpired => {
            metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::DeadlineExceeded,
                    "deadline expired while queued; the update was not applied",
                    None,
                ))
                .is_ok();
        }
        Admit::Overloaded => {
            metrics.overload_rejections.fetch_add(1, Ordering::Relaxed);
            let hint = retry_after_hint_ms(metrics);
            return transport
                .send(&error_frame(
                    peer,
                    ErrorCode::RetryLater,
                    "admission queue is full; the update was not applied",
                    Some(hint),
                ))
                .is_ok();
        }
    }

    let mut batch = EdgeBatch::new();
    for &(a, b) in &request.inserts {
        batch.insert(a, b);
    }
    for &(a, b) in &request.deletes {
        batch.delete(a, b);
    }
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| engine.apply(&batch)));
    admission.release();

    let reply = match outcome {
        Err(_) => error_frame(
            peer,
            ErrorCode::Internal,
            "update panicked; the graph was not modified",
            None,
        ),
        // Validation failures (vertex beyond the growth limit) reject the
        // whole batch before anything is logged or applied.
        Ok(Err(DurableError::Delta(DeltaError::VertexOutOfRange { vertex, limit }))) => {
            error_frame(
                peer,
                ErrorCode::BadPayload,
                &format!("vertex {vertex} exceeds the growth limit {limit}; batch rejected"),
                None,
            )
        }
        // A WAL append/fsync failure means durability cannot be promised;
        // the batch was not applied in memory either.
        Ok(Err(wal_error)) => error_frame(
            peer,
            ErrorCode::Internal,
            &format!("write-ahead log failure: {wal_error}"),
            None,
        ),
        Ok(Ok(report)) => {
            metrics.updates_total.fetch_add(1, Ordering::Relaxed);
            let ok = UpdateOk {
                generation: report.generation,
                inserted: report.inserted,
                deleted: report.deleted,
            };
            if request.request_id != 0 {
                ledger.record(request.request_id, fingerprint, LedgerReply::Update(ok));
            }
            Frame::with_version(peer, op::UPDATE_OK, ok.encode())
        }
    };
    transport.send(&reply).is_ok()
}

/// Dispatches a `REPL_SUBSCRIBE`: validates the subscription, then hands
/// the connection over to [`serve_replication`].
fn handle_replication(
    transport: &mut TcpTransport,
    peer: u8,
    payload: &[u8],
    backend: &ServeBackend<'_>,
    repl: &ReplState,
    metrics: &Metrics,
    draining: &AtomicBool,
) {
    let Some(sub) = ReplSubscribe::decode(payload) else {
        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = transport.send(&error_frame(
            peer,
            ErrorCode::BadPayload,
            "subscribe payload must be [flags u8][generation u64][offset u64]",
            None,
        ));
        return;
    };
    let Some(engine) = backend.dynamic().filter(|engine| engine.is_durable()) else {
        let _ = transport.send(&error_frame(
            peer,
            ErrorCode::ReadOnly,
            "replication requires a durable (--wal) primary",
            None,
        ));
        return;
    };
    if repl.role() != ReplRole::Primary {
        let _ = transport.send(&error_frame(
            peer,
            ErrorCode::NotPrimary,
            &repl.primary_addr(),
            None,
        ));
        return;
    }
    repl.subscribers.fetch_add(1, Ordering::Relaxed);
    let _ = serve_replication(transport, peer, sub, engine, repl, draining);
    repl.subscribers.fetch_sub(1, Ordering::Relaxed);
}

/// Ships the primary's WAL to one subscribed replica until the peer goes
/// away, the server drains, or this node stops being the primary.
///
/// The shipped unit is a **byte range of the log**, not a decoded
/// record: the replica reassembles record frames with
/// [`graphpi_graph::wal::RecordStreamParser`], so a chunk boundary mid-
/// record lands exactly like a torn local WAL tail and the end-to-end
/// checksums are the original on-disk ones. Strict alternation
/// (`REPL_BATCH` → `REPL_ACK`) keeps the stream self-pacing; an empty
/// Records batch is the caught-up heartbeat.
///
/// Checkpoints reset the log in place, invalidating every raw offset.
/// The WAL epoch (bumped on every reset) makes that visible: each read
/// brackets the epoch, and a change discards the bytes and re-resolves
/// the cursor from the replica's last acknowledged generation — bytes
/// from one epoch are never shipped under another epoch's offsets.
fn serve_replication(
    transport: &mut TcpTransport,
    peer: u8,
    sub: ReplSubscribe,
    engine: &DynamicEngine,
    repl: &ReplState,
    draining: &AtomicBool,
) -> Result<(), NetError> {
    let wal_path = engine.wal_path().expect("durable engine has a WAL path");
    let mut cursor_gen = sub.generation;
    let mut offset_hint = sub.offset;
    'resolve: loop {
        if draining.load(Ordering::Acquire) {
            return transport.send(&error_frame(
                peer,
                ErrorCode::ShuttingDown,
                "server is draining; resubscribe later",
                None,
            ));
        }
        if repl.role() != ReplRole::Primary {
            return transport.send(&error_frame(
                peer,
                ErrorCode::NotPrimary,
                &repl.primary_addr(),
                None,
            ));
        }
        let epoch = engine.wal_epoch().unwrap_or(0);
        let mut reader = match WalReader::open(&wal_path) {
            Ok(reader) => reader,
            Err(error) => {
                if engine.wal_epoch() != Some(epoch) {
                    continue 'resolve;
                }
                return transport.send(&error_frame(
                    peer,
                    ErrorCode::Internal,
                    &format!("primary log unreadable: {error}"),
                    None,
                ));
            }
        };
        let point = match reader.resolve_cursor(cursor_gen, offset_hint) {
            Ok(point) => point,
            Err(error) => {
                // A reset mid-scan leaves the file momentarily at odds
                // with the cursor; retry against the new epoch instead
                // of failing the subscriber.
                if engine.wal_epoch() != Some(epoch) {
                    continue 'resolve;
                }
                return transport.send(&error_frame(
                    peer,
                    ErrorCode::Internal,
                    &format!("primary log unreadable: {error}"),
                    None,
                ));
            }
        };
        if engine.wal_epoch() != Some(epoch) {
            continue 'resolve;
        }
        match point {
            ShipPoint::NeedsCheckpoint => {
                match ship_checkpoint(transport, peer, engine, draining)? {
                    Some(generation) => {
                        // Bootstrap complete: record shipping resumes at
                        // the top of the reset log.
                        cursor_gen = generation;
                        offset_hint = 0;
                        continue 'resolve;
                    }
                    // A newer checkpoint landed mid-stream; restart the
                    // bootstrap (the replica resets its staging file on
                    // the chunk whose start offset is zero).
                    None => continue 'resolve,
                }
            }
            ShipPoint::Records { mut offset } => loop {
                if draining.load(Ordering::Acquire) {
                    return transport.send(&error_frame(
                        peer,
                        ErrorCode::ShuttingDown,
                        "server is draining; resubscribe later",
                        None,
                    ));
                }
                if repl.role() != ReplRole::Primary {
                    return transport.send(&error_frame(
                        peer,
                        ErrorCode::NotPrimary,
                        &repl.primary_addr(),
                        None,
                    ));
                }
                if engine.wal_epoch() != Some(epoch) {
                    offset_hint = 0;
                    continue 'resolve;
                }
                let end = engine.wal_len().unwrap_or(offset);
                let horizon = engine.replication_horizon().unwrap_or(0);
                let batch = if offset < end {
                    let want = usize::try_from(end - offset)
                        .map_or(REPL_CHUNK_BYTES, |remaining| {
                            remaining.min(REPL_CHUNK_BYTES)
                        });
                    let (bytes, next_offset) = match reader.read_raw(offset, want) {
                        Ok(read) => read,
                        Err(error) => {
                            if engine.wal_epoch() != Some(epoch) {
                                offset_hint = 0;
                                continue 'resolve;
                            }
                            return transport.send(&error_frame(
                                peer,
                                ErrorCode::Internal,
                                &format!("primary log unreadable: {error}"),
                                None,
                            ));
                        }
                    };
                    if engine.wal_epoch() != Some(epoch) {
                        // The bytes may straddle the reset; discard them.
                        offset_hint = 0;
                        continue 'resolve;
                    }
                    ReplBatch {
                        payload: ReplPayload::Records,
                        primary_generation: engine.generation(),
                        generation: horizon,
                        next_offset,
                        bytes,
                    }
                } else {
                    ReplBatch {
                        payload: ReplPayload::Records,
                        primary_generation: engine.generation(),
                        generation: horizon,
                        next_offset: offset,
                        bytes: Vec::new(),
                    }
                };
                let heartbeat = batch.bytes.is_empty();
                transport.send(&Frame::with_version(peer, op::REPL_BATCH, batch.encode()))?;
                let ack = recv_ack(transport, draining)?;
                repl.note_shipment(engine.generation().saturating_sub(ack.generation));
                cursor_gen = ack.generation;
                offset = ack.offset;
                if heartbeat {
                    std::thread::sleep(REPL_HEARTBEAT_PAUSE);
                }
            },
        }
    }
}

/// Streams the primary's checkpoint file to a bootstrapping replica.
/// Returns `Ok(Some(generation))` when the replica acknowledged the
/// complete file (the record cursor then restarts at that generation,
/// offset 0) and `Ok(None)` when a newer checkpoint landed mid-stream
/// and the bootstrap must restart.
///
/// The generation is captured *before* the file is opened: any
/// checkpoint completing after the capture moves the horizon and fails
/// the final check, so stale bytes can never be installed under a fresh
/// generation. The open handle pins one inode, so the streamed bytes
/// are internally consistent even while a rename replaces the file.
fn ship_checkpoint(
    transport: &mut TcpTransport,
    peer: u8,
    engine: &DynamicEngine,
    draining: &AtomicBool,
) -> Result<Option<u64>, NetError> {
    let path = engine
        .checkpoint_file()
        .expect("durable engine has a checkpoint path");
    let generation = engine.replication_horizon().unwrap_or(0);
    let mut file = match std::fs::File::open(&path) {
        Ok(file) => file,
        Err(error) => {
            transport.send(&error_frame(
                peer,
                ErrorCode::Internal,
                &format!("primary checkpoint unreadable: {error}"),
                None,
            ))?;
            return Err(NetError::Closed);
        }
    };
    let mut sent = 0u64;
    loop {
        if draining.load(Ordering::Acquire) {
            transport.send(&error_frame(
                peer,
                ErrorCode::ShuttingDown,
                "server is draining; resubscribe later",
                None,
            ))?;
            return Err(NetError::Closed);
        }
        let mut chunk = vec![0u8; REPL_CHUNK_BYTES];
        let n = match file.read(&mut chunk) {
            Ok(n) => n,
            Err(error) => {
                transport.send(&error_frame(
                    peer,
                    ErrorCode::Internal,
                    &format!("primary checkpoint unreadable: {error}"),
                    None,
                ))?;
                return Err(NetError::Closed);
            }
        };
        if n == 0 {
            break;
        }
        chunk.truncate(n);
        sent += n as u64;
        let batch = ReplBatch {
            payload: ReplPayload::Checkpoint { done: false },
            primary_generation: engine.generation(),
            generation,
            next_offset: sent,
            bytes: chunk,
        };
        transport.send(&Frame::with_version(peer, op::REPL_BATCH, batch.encode()))?;
        recv_ack(transport, draining)?;
    }
    if engine.replication_horizon() != Some(generation) {
        return Ok(None);
    }
    let done = ReplBatch {
        payload: ReplPayload::Checkpoint { done: true },
        primary_generation: engine.generation(),
        generation,
        next_offset: sent,
        bytes: Vec::new(),
    };
    transport.send(&Frame::with_version(peer, op::REPL_BATCH, done.encode()))?;
    recv_ack(transport, draining)?;
    Ok(Some(generation))
}

/// Waits for the strict-alternation `REPL_ACK` that follows every
/// `REPL_BATCH`. Idle timeouts keep polling so a drain is noticed; any
/// other frame from the replica is a protocol violation that ends the
/// subscription.
fn recv_ack(transport: &mut TcpTransport, draining: &AtomicBool) -> Result<ReplAck, NetError> {
    loop {
        match transport.recv() {
            Ok(frame) if frame.opcode == op::REPL_ACK => {
                let Some(ack) = ReplAck::decode(&frame.payload) else {
                    return Err(NetError::Closed);
                };
                return Ok(ack);
            }
            Ok(_) => return Err(NetError::Closed),
            Err(NetError::Idle) => {
                if draining.load(Ordering::Acquire) {
                    return Err(NetError::Closed);
                }
            }
            Err(error) => return Err(error),
        }
    }
}

/// Handles an explicit `PROMOTE`: idempotent on a primary; on a replica
/// it requests promotion and waits for the apply loop to seal the
/// stream and flip the role. Returns whether the connection stays open.
fn handle_promote(
    transport: &mut TcpTransport,
    peer: u8,
    payload: &[u8],
    backend: &ServeBackend<'_>,
    repl: &ReplState,
    metrics: &Metrics,
) -> bool {
    if !payload.is_empty() {
        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return transport
            .send(&error_frame(
                peer,
                ErrorCode::BadPayload,
                "promote carries no payload",
                None,
            ))
            .is_ok();
    }
    let Some(engine) = backend.dynamic() else {
        return transport
            .send(&error_frame(
                peer,
                ErrorCode::ReadOnly,
                "promotion requires a dynamic (--wal) server",
                None,
            ))
            .is_ok();
    };
    if repl.role() != ReplRole::Primary {
        repl.request_promote();
        let deadline = Instant::now() + PROMOTE_WAIT;
        while repl.role() != ReplRole::Primary {
            if Instant::now() >= deadline {
                return transport
                    .send(&error_frame(
                        peer,
                        ErrorCode::Internal,
                        "promotion did not complete in time",
                        None,
                    ))
                    .is_ok();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let ok = PromoteOk {
        generation: engine.generation(),
    };
    transport
        .send(&Frame::with_version(peer, op::PROMOTE_OK, ok.encode()))
        .is_ok()
}

/// Builds a `STATS_OK` reply from the live counters.
fn stats_frame(
    peer: u8,
    backend: &ServeBackend<'_>,
    metrics: &Metrics,
    admission: &Admission,
    repl: &ReplState,
) -> Frame {
    let pool = backend.pool();
    let cache = backend.cache_stats();
    let stats = StatsOk {
        live_workers: pool.live_workers() as u32,
        max_in_flight: pool.max_in_flight() as u32,
        in_flight: pool.in_flight() as u32,
        queued: admission.waiting() as u32,
        cache_len: cache.len as u32,
        cache_capacity: cache.capacity as u32,
        warm_started: metrics.warm_started.load(Ordering::Relaxed) as u32,
        connections_total: metrics.connections_total.load(Ordering::Relaxed),
        queries_total: metrics.queries_total.load(Ordering::Relaxed),
        deadline_exceeded: metrics.deadline_exceeded.load(Ordering::Relaxed),
        protocol_errors: metrics.protocol_errors.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        overload_rejections: metrics.overload_rejections.load(Ordering::Relaxed),
        latency: metrics.latency_snapshot(),
        replication_lag: repl.replication_lag(backend.generation()),
        repl_role: repl.role(),
        enumerations_total: metrics.enumerations_total.load(Ordering::Relaxed),
        pages_sent: metrics.pages_sent.load(Ordering::Relaxed),
    };
    Frame::with_version(peer, op::STATS_OK, stats.encode_for(peer))
}

/// Builds a `HEALTH_OK` reply: drain beats overload, overload beats
/// ready, and any not-ready state carries a retry-after hint. The v2
/// payload extension adds the replication role and lag.
fn health_frame(
    peer: u8,
    backend: &ServeBackend<'_>,
    metrics: &Metrics,
    admission: &Admission,
    draining: &AtomicBool,
    repl: &ReplState,
) -> Frame {
    let state = if draining.load(Ordering::Acquire) {
        HealthState::Draining
    } else if admission.is_full() {
        HealthState::Overloaded
    } else {
        HealthState::Ready
    };
    let retry_after_ms = match state {
        HealthState::Ready => 0,
        _ => retry_after_hint_ms(metrics),
    };
    let health = HealthOk {
        state,
        retry_after_ms,
        role: repl.role(),
        replication_lag: repl.replication_lag(backend.generation()),
    };
    Frame::with_version(peer, op::HEALTH_OK, health.encode_for(peer))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_gate_respects_deadlines() {
        let gate = Admission::new(1, 8);
        assert_eq!(gate.acquire_until(None), Admit::Admitted);
        // Second acquire with an already-expired deadline fails fast.
        let past = Instant::now();
        assert_eq!(gate.acquire_until(Some(past)), Admit::DeadlineExpired);
        // ... and with a short future deadline, fails after it passes.
        let start = Instant::now();
        assert_eq!(
            gate.acquire_until(Some(start + Duration::from_millis(20))),
            Admit::DeadlineExpired
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        // Releasing lets a waiter through.
        gate.release();
        assert_eq!(
            gate.acquire_until(Some(Instant::now() + Duration::from_secs(1))),
            Admit::Admitted
        );
    }

    #[test]
    fn zero_capacity_gate_still_admits_one() {
        let gate = Admission::new(0, 0);
        assert_eq!(gate.acquire_until(None), Admit::Admitted);
    }

    #[test]
    fn full_wait_queue_sheds_instead_of_queueing() {
        // One permit, one queue slot. Take the permit, fill the slot
        // with a waiter, then watch the third caller get shed instantly.
        let gate = Arc::new(Admission::new(1, 1));
        assert_eq!(gate.acquire_until(None), Admit::Admitted);
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.acquire_until(Some(Instant::now() + Duration::from_secs(5)))
            })
        };
        // Wait until the waiter is actually parked in the queue.
        while gate.waiting() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(gate.is_full());
        let start = Instant::now();
        assert_eq!(
            gate.acquire_until(Some(Instant::now() + Duration::from_secs(5))),
            Admit::Overloaded
        );
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "shedding must not wait out the deadline"
        );
        // Releasing admits the queued waiter, not the shed caller.
        gate.release();
        assert_eq!(waiter.join().unwrap(), Admit::Admitted);
        assert_eq!(gate.waiting(), 0);
        assert!(!gate.is_full());
    }

    #[test]
    fn ledger_replays_only_matching_fingerprints() {
        let ledger = RequestLedger::new(2);
        let reply = LedgerReply::Count(CountOk::new(42, 7));
        ledger.record(1, 0xAAAA, reply);
        assert_eq!(ledger.lookup(1, 0xAAAA), Some(reply));
        // Same ID from a different logical query: no replay.
        assert_eq!(ledger.lookup(1, 0xBBBB), None);
        assert_eq!(ledger.lookup(2, 0xAAAA), None);
        // FIFO eviction at capacity.
        ledger.record(2, 0xCCCC, LedgerReply::Count(CountOk::new(1, 1)));
        ledger.record(
            3,
            0xDDDD,
            LedgerReply::Update(UpdateOk {
                generation: 9,
                inserted: 2,
                deleted: 0,
            }),
        );
        assert_eq!(ledger.lookup(1, 0xAAAA), None, "oldest entry evicted");
        assert!(ledger.lookup(3, 0xDDDD).is_some());
    }

    #[test]
    fn update_fingerprints_separate_batches_and_domains() {
        let base = UpdateRequest {
            deadline_ms: 0,
            request_id: 5,
            inserts: vec![(1, 2), (3, 4)],
            deletes: vec![(5, 6)],
        };
        let same_but_other_id = UpdateRequest {
            request_id: 6,
            deadline_ms: 31,
            ..base.clone()
        };
        assert_eq!(
            update_fingerprint(&base),
            update_fingerprint(&same_but_other_id),
            "ids and deadlines don't change what a batch does"
        );
        let different_edges = UpdateRequest {
            inserts: vec![(1, 2), (3, 5)],
            ..base.clone()
        };
        assert_ne!(
            update_fingerprint(&base),
            update_fingerprint(&different_edges)
        );
        // Moving an edge across the insert/delete boundary changes the
        // batch even though the flat edge list is identical.
        let moved_edge = UpdateRequest {
            inserts: vec![(1, 2)],
            deletes: vec![(3, 4), (5, 6)],
            ..base.clone()
        };
        assert_ne!(update_fingerprint(&base), update_fingerprint(&moved_edge));
    }

    #[test]
    fn request_fingerprints_separate_different_queries() {
        let base = CountRequest {
            no_iep: false,
            hub_bitsets: false,
            deadline_ms: 0,
            request_id: 9,
            min_generation: 0,
            mode: QueryMode::Count,
            pattern: vec![3, 0b110, 0b101, 0b011],
        };
        let same_but_other_id = CountRequest {
            request_id: 10,
            deadline_ms: 77,
            ..base.clone()
        };
        // IDs and deadlines don't change the answer, so they are not
        // part of the fingerprint.
        assert_eq!(
            request_fingerprint(&base),
            request_fingerprint(&same_but_other_id)
        );
        let different_flags = CountRequest {
            no_iep: true,
            ..base.clone()
        };
        assert_ne!(
            request_fingerprint(&base),
            request_fingerprint(&different_flags)
        );
        let different_pattern = CountRequest {
            pattern: vec![3, 0b110, 0b101, 0b111],
            ..base.clone()
        };
        assert_ne!(
            request_fingerprint(&base),
            request_fingerprint(&different_pattern)
        );
        // The execution mode (and a sample mode's parameters) change the
        // answer, so they separate fingerprints too.
        let orbit = CountRequest {
            mode: QueryMode::Orbit,
            ..base.clone()
        };
        assert_ne!(request_fingerprint(&base), request_fingerprint(&orbit));
        let sample_a = CountRequest {
            mode: QueryMode::sample(1, 0.5),
            ..base.clone()
        };
        let sample_b = CountRequest {
            mode: QueryMode::sample(2, 0.5),
            ..base
        };
        assert_ne!(
            request_fingerprint(&sample_a),
            request_fingerprint(&sample_b)
        );
    }
}
