//! The blocking TCP server: one [`crate::engine::Session`] served to many
//! connections over the [`super::protocol`] wire format.
//!
//! # Architecture
//!
//! One thread (the caller of [`Server::serve`]) runs a non-blocking accept
//! loop; every accepted connection gets a scoped handler thread that speaks
//! strict request/response framing. Handlers never touch each other's
//! state, so **a bad frame kills its connection, never the server**:
//! framing errors (bad magic, wrong version, oversized length, mid-frame
//! truncation) answer with a typed error frame and close that one
//! connection, while content errors inside a well-formed frame (unknown
//! opcode, bad payload, rejected pattern, expired deadline) answer and keep
//! the connection open.
//!
//! Queries execute on the shared multi-tenant
//! [`WorkerPool`] through an **admission
//! gate** sized to the pool's `max_in_flight`. The gate, not the pool, is
//! where excess queries wait — unlike the pool's own blocking submit path,
//! a gated wait can observe the query's deadline, so a queued query whose
//! deadline expires is cancelled *without ever executing* (true
//! cancellation, not post-hoc reporting). Deadlines are also re-checked
//! after execution, so a reply never claims to have met a deadline it
//! missed. A query that panics inside the engine is isolated twice: the
//! pool contains it to the job's slot, and the handler's `catch_unwind`
//! converts it into an [`ErrorCode::Internal`] response.
//!
//! Graceful shutdown (the `SHUTDOWN` opcode or [`ServerHandle::shutdown`])
//! flips the draining flag: the accept loop stops and **closes the
//! listener** (new connects are refused at the OS level), in-flight queries
//! run to completion and their replies are delivered, idle connections are
//! told [`ErrorCode::ShuttingDown`] and closed, and — when a persistence
//! path is configured — the plan cache's keys are saved for the next
//! process's warm start ([`crate::persist`]).

use crate::config::{PoolOptions, ServeOptions};
use crate::engine::{CountOptions, GraphPi, PlanCache, PlanOptions, Session, WarmStartReport};
use crate::exec::pool::WorkerPool;
use crate::net::protocol::{
    op, CountOk, CountRequest, ErrorCode, Frame, LatencyHistogram, NetError, StatsOk, TcpTransport,
    Transport, HISTOGRAM_BUCKETS,
};
use crate::persist;
use graphpi_pattern::Pattern;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long the accept loop naps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server counters, shared between the accept loop, the connection
/// handlers, and `STATS` replies. Plain relaxed atomics: these are
/// monotonic counters and gauges, not synchronization.
#[derive(Default)]
struct Metrics {
    connections_total: AtomicU64,
    active_connections: AtomicUsize,
    queries_total: AtomicU64,
    deadline_exceeded: AtomicU64,
    protocol_errors: AtomicU64,
    queued: AtomicUsize,
    warm_started: AtomicUsize,
    latency: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Metrics {
    fn record_latency(&self, micros: u64) {
        self.latency[LatencyHistogram::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    fn latency_snapshot(&self) -> LatencyHistogram {
        let mut hist = LatencyHistogram::default();
        for (bucket, counter) in hist.buckets.iter_mut().zip(self.latency.iter()) {
            *bucket = counter.load(Ordering::Relaxed);
        }
        hist
    }
}

/// A counting gate in front of the worker pool, sized to the pool's
/// `max_in_flight`. Handlers wait *here* instead of inside the pool's
/// blocking submit path because a gate wait can time out: that is what
/// turns a queued query's deadline into real cancellation.
struct Admission {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Admission {
    fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Acquires a permit, giving up at `deadline`. Returns `false` on
    /// expiry without consuming a permit.
    fn acquire_until(&self, deadline: Option<Instant>) -> bool {
        let mut permits = self.permits.lock().expect("admission gate poisoned");
        loop {
            if *permits > 0 {
                *permits -= 1;
                return true;
            }
            match deadline {
                None => {
                    permits = self
                        .available
                        .wait(permits)
                        .expect("admission gate poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    permits = self
                        .available
                        .wait_timeout(permits, deadline - now)
                        .expect("admission gate poisoned")
                        .0;
                }
            }
        }
    }

    fn release(&self) {
        let mut permits = self.permits.lock().expect("admission gate poisoned");
        *permits += 1;
        self.available.notify_one();
    }
}

/// Remote control for a running [`Server`]: clonable, valid across
/// threads, obtained from [`Server::handle`] before `serve` consumes the
/// server.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    draining: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on (with the OS-assigned port
    /// when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting, finish in-flight
    /// queries, persist the plan cache, return from `serve`.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

/// What [`Server::serve`] reports after draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Count queries that entered execution.
    pub queries: u64,
    /// The warm-start outcome at boot (zero when no persistence path or no
    /// snapshot existed).
    pub warm_start: WarmStartReport,
    /// Plan-cache keys persisted at shutdown (zero without a path).
    pub saved_plans: usize,
}

/// A bound-but-not-yet-serving GraphPi TCP server. Construction binds the
/// listener (so the OS-assigned port is known and a [`ServerHandle`] can
/// be taken); [`Server::serve`] then consumes the server and blocks until
/// drained.
pub struct Server {
    listener: TcpListener,
    pool: Arc<WorkerPool>,
    cache: Arc<PlanCache>,
    options: ServeOptions,
    draining: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// Binds `addr` with a fresh pool and plan cache per
    /// `options.pool`.
    pub fn bind(addr: impl ToSocketAddrs, options: ServeOptions) -> Result<Server, NetError> {
        let PoolOptions {
            threads,
            cache_capacity,
            max_in_flight,
        } = options.pool;
        Self::bind_shared(
            addr,
            Arc::new(WorkerPool::with_max_in_flight(threads, max_in_flight)),
            Arc::new(PlanCache::new(cache_capacity)),
            options,
        )
    }

    /// Binds `addr` on an existing pool and cache — the constructor tests
    /// use to keep their own handle on the pool (e.g. to assert
    /// `live_workers()` across fault injection), and the one that lets
    /// several servers share one pool.
    pub fn bind_shared(
        addr: impl ToSocketAddrs,
        pool: Arc<WorkerPool>,
        cache: Arc<PlanCache>,
        options: ServeOptions,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            pool,
            cache,
            options,
            draining: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(Metrics::default()),
        })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// A clonable remote control (take it before [`Server::serve`]).
    pub fn handle(&self) -> Result<ServerHandle, NetError> {
        Ok(ServerHandle {
            draining: Arc::clone(&self.draining),
            addr: self.listener.local_addr()?,
        })
    }

    /// The worker pool queries execute on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Serves `engine` until drained (via the `SHUTDOWN` opcode or
    /// [`ServerHandle::shutdown`]), then returns lifetime totals. Consumes
    /// the server so the listener is provably closed when this returns.
    pub fn serve(self, engine: &GraphPi) -> Result<ServerReport, NetError> {
        let Server {
            listener,
            pool,
            cache,
            options,
            draining,
            metrics,
        } = self;
        let session = engine.session_shared(
            Arc::clone(&pool),
            Arc::clone(&cache),
            PlanOptions::default(),
            CountOptions::default(),
        );

        // Warm start: re-plan the previous process's working set so its
        // patterns are cache hits from the first query. A missing snapshot
        // is a cold start; a corrupt one is ignored (it must never prevent
        // serving) and will be overwritten at shutdown.
        let mut warm = WarmStartReport::default();
        if let Some(path) = &options.persist_path {
            if let Ok(snapshot) = persist::load_plan_cache(path) {
                warm = session.warm_start(&snapshot.keys);
                metrics.warm_started.store(warm.warmed, Ordering::Relaxed);
            }
        }

        let admission = Admission::new(pool.max_in_flight());
        std::thread::scope(|scope| {
            // The accept loop owns the listener; dropping it on drain is
            // what makes "rejects new connections" an OS-level refusal
            // rather than an unanswered socket.
            let listener = listener;
            loop {
                if draining.load(Ordering::Acquire) {
                    drop(listener);
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                        let limit = options.max_connections;
                        if limit > 0 && metrics.active_connections.load(Ordering::Relaxed) >= limit
                        {
                            let mut transport = TcpTransport::new(stream);
                            let _ = transport.send(&Frame::error(
                                ErrorCode::TooManyConnections,
                                &format!("connection limit {limit} reached"),
                            ));
                            continue;
                        }
                        metrics.active_connections.fetch_add(1, Ordering::Relaxed);
                        let session = &session;
                        let metrics = &metrics;
                        let admission = &admission;
                        let draining = &draining;
                        let read_timeout = options.read_timeout;
                        scope.spawn(move || {
                            handle_connection(
                                stream,
                                session,
                                metrics,
                                admission,
                                draining,
                                read_timeout,
                            );
                            metrics.active_connections.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // Transient per-connection accept failures (e.g. the
                    // peer reset before accept) must not stop the server.
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // Scope exit waits for every handler: that wait IS the drain.
        });

        let saved_plans = match &options.persist_path {
            Some(path) => persist::save_plan_cache(&cache, path).unwrap_or(0),
            None => 0,
        };
        Ok(ServerReport {
            connections: metrics.connections_total.load(Ordering::Relaxed),
            queries: metrics.queries_total.load(Ordering::Relaxed),
            warm_start: warm,
            saved_plans,
        })
    }
}

/// Speaks the protocol with one client until EOF, a framing error, or
/// drain. Never panics outward and never takes the server down.
fn handle_connection(
    stream: TcpStream,
    session: &Session<'_>,
    metrics: &Metrics,
    admission: &Admission,
    draining: &AtomicBool,
    read_timeout: Duration,
) {
    // The read timeout is the handler's poll granularity: an idle wait
    // wakes up this often to notice a drain. Zero would mean non-blocking
    // reads (a busy loop), so it is clamped away.
    let timeout = if read_timeout.is_zero() {
        Duration::from_millis(50)
    } else {
        read_timeout
    };
    stream.set_read_timeout(Some(timeout)).ok();
    let mut transport = TcpTransport::new(stream);
    loop {
        if draining.load(Ordering::Acquire) {
            let _ = transport.send(&Frame::error(
                ErrorCode::ShuttingDown,
                "server is draining; reconnect later",
            ));
            return;
        }
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(NetError::Idle) => continue,
            Err(NetError::Closed) => return,
            Err(error) => {
                // Framing is broken: answer with the matching typed code
                // (best-effort — the peer may already be gone) and drop
                // this one connection.
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let code = match &error {
                    NetError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
                    NetError::FrameTooLarge(_) => ErrorCode::FrameTooLarge,
                    _ => ErrorCode::BadFrame,
                };
                let _ = transport.send(&Frame::error(code, &error.to_string()));
                return;
            }
        };
        let keep_alive = match frame.opcode {
            op::PING => transport.send(&Frame::new(op::PONG, frame.payload)).is_ok(),
            op::STATS => {
                let reply = stats_frame(session, metrics);
                transport.send(&reply).is_ok()
            }
            op::COUNT => handle_count(&mut transport, &frame.payload, session, metrics, admission),
            op::SHUTDOWN => {
                draining.store(true, Ordering::Release);
                let _ = transport.send(&Frame::new(op::SHUTDOWN_OK, vec![]));
                false
            }
            other => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                transport
                    .send(&Frame::error(
                        ErrorCode::UnknownOpcode,
                        &format!(
                            "opcode {other:#04x} is not part of protocol v{}",
                            super::protocol::VERSION
                        ),
                    ))
                    .is_ok()
            }
        };
        if !keep_alive {
            return;
        }
    }
}

/// Runs one `COUNT` request end to end. Returns whether the connection
/// stays open (false only when the reply could not be sent).
fn handle_count(
    transport: &mut TcpTransport,
    payload: &[u8],
    session: &Session<'_>,
    metrics: &Metrics,
    admission: &Admission,
) -> bool {
    let request = match CountRequest::decode(payload) {
        Some(request) => request,
        None => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&Frame::error(
                    ErrorCode::BadPayload,
                    "count payload must be [flags u8][deadline_ms u32][pattern bytes]",
                ))
                .is_ok();
        }
    };
    let pattern = match Pattern::from_canonical_bytes(&request.pattern) {
        Some(pattern) => pattern,
        None => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return transport
                .send(&Frame::error(
                    ErrorCode::BadPayload,
                    "pattern bytes are not a valid canonical pattern",
                ))
                .is_ok();
        }
    };
    let deadline = (request.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(u64::from(request.deadline_ms)));

    // Queue for admission. On expiry the query is cancelled having
    // consumed no pool slot and no worker time.
    metrics.queued.fetch_add(1, Ordering::Relaxed);
    let admitted = admission.acquire_until(deadline);
    metrics.queued.fetch_sub(1, Ordering::Relaxed);
    if !admitted {
        metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        return transport
            .send(&Frame::error(
                ErrorCode::DeadlineExceeded,
                "deadline expired while queued; the query was not executed",
            ))
            .is_ok();
    }

    metrics.queries_total.fetch_add(1, Ordering::Relaxed);
    let count_options = CountOptions {
        use_iep: !request.no_iep,
        hub_bitsets: request.hub_bitsets,
        ..CountOptions::default()
    };
    let start = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        session.count_with(&pattern, count_options)
    }));
    let elapsed = start.elapsed();
    admission.release();

    let reply = match outcome {
        Err(_) => Frame::error(
            ErrorCode::Internal,
            "query panicked; the worker pool isolated it",
        ),
        Ok(Err(engine_error)) => {
            Frame::error(ErrorCode::PatternRejected, &engine_error.to_string())
        }
        Ok(Ok(count)) => {
            let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
            metrics.record_latency(micros);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                Frame::error(
                    ErrorCode::DeadlineExceeded,
                    "query completed after its deadline",
                )
            } else {
                Frame::new(
                    op::COUNT_OK,
                    CountOk {
                        count,
                        elapsed_micros: micros,
                    }
                    .encode(),
                )
            }
        }
    };
    transport.send(&reply).is_ok()
}

/// Builds a `STATS_OK` reply from the live counters.
fn stats_frame(session: &Session<'_>, metrics: &Metrics) -> Frame {
    let pool = session.pool();
    let cache = session.cache_stats();
    let stats = StatsOk {
        live_workers: pool.live_workers() as u32,
        max_in_flight: pool.max_in_flight() as u32,
        in_flight: pool.in_flight() as u32,
        queued: metrics.queued.load(Ordering::Relaxed) as u32,
        cache_len: cache.len as u32,
        cache_capacity: cache.capacity as u32,
        warm_started: metrics.warm_started.load(Ordering::Relaxed) as u32,
        connections_total: metrics.connections_total.load(Ordering::Relaxed),
        queries_total: metrics.queries_total.load(Ordering::Relaxed),
        deadline_exceeded: metrics.deadline_exceeded.load(Ordering::Relaxed),
        protocol_errors: metrics.protocol_errors.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        reserved: 0,
        latency: metrics.latency_snapshot(),
    };
    Frame::new(op::STATS_OK, stats.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_gate_respects_deadlines() {
        let gate = Admission::new(1);
        assert!(gate.acquire_until(None));
        // Second acquire with an already-expired deadline fails fast.
        let past = Instant::now();
        assert!(!gate.acquire_until(Some(past)));
        // ... and with a short future deadline, fails after it passes.
        let start = Instant::now();
        assert!(!gate.acquire_until(Some(start + Duration::from_millis(20))));
        assert!(start.elapsed() >= Duration::from_millis(20));
        // Releasing lets a waiter through.
        gate.release();
        assert!(gate.acquire_until(Some(Instant::now() + Duration::from_secs(1))));
    }

    #[test]
    fn zero_capacity_gate_still_admits_one() {
        let gate = Admission::new(0);
        assert!(gate.acquire_until(None));
    }
}
