//! The GraphPi wire protocol: length-prefixed binary frames over a byte
//! stream.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     length  u32 LE: number of bytes that follow (4 + payload)
//! 4       2     magic   "GP"
//! 6       1     version 0x01
//! 7       1     opcode  see [`op`]
//! 8       len-4 payload opcode-specific (see the codec structs below)
//! ```
//!
//! The length prefix covers the magic/version/opcode header, so
//! `length >= 4` always, and is capped at [`MAX_FRAME_LEN`] — a reader can
//! always either consume a whole well-formed frame or fail with a typed
//! [`NetError`] *before* allocating attacker-controlled amounts of memory.
//! All integers are little-endian; patterns travel as
//! [`Pattern::canonical_bytes`](graphpi_pattern::Pattern::canonical_bytes),
//! the same invertible encoding the plan cache keys on.
//!
//! The codec here is transport-agnostic: [`read_frame`]/[`write_frame`]
//! work over any `Read`/`Write` (the tests drive them over in-memory
//! cursors), and the [`Transport`] trait is the seam behind which an async
//! or HTTP frontend can land later without touching the engine. The
//! blocking [`TcpTransport`] is the only implementation today.

use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// First two payload bytes of every frame.
pub const MAGIC: [u8; 2] = *b"GP";

/// Current protocol version. Version 2 adds the `HEALTH` opcode, the
/// `RETRY_LATER` error code (with a retry-after hint), and optional
/// client-generated request IDs on `COUNT`. Servers accept every version
/// in [`MIN_VERSION`]`..=`[`VERSION`] — the version byte of each request
/// frame is echoed in its reply, so a v1 client keeps speaking v1 — and
/// refuse anything else with [`ErrorCode::UnsupportedVersion`], closing
/// the connection.
pub const VERSION: u8 = 2;

/// Oldest protocol version still served (see [`VERSION`]).
pub const MIN_VERSION: u8 = 1;

/// Bytes of header covered by the length prefix (magic + version + opcode).
pub const HEADER_LEN: usize = 4;

/// Upper bound on the length prefix. Patterns are ≤ 8 vertices and stats
/// are fixed-size, so real frames are tiny; the cap exists so a corrupt or
/// hostile length prefix cannot make the reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Opcode bytes. Requests have the high bit clear, responses set
/// (`0x80 | request`); [`ERROR`](op::ERROR) is the one shared response
/// for every failure.
pub mod op {
    /// Count embeddings of a pattern ([`super::CountRequest`] payload).
    pub const COUNT: u8 = 0x01;
    /// Fetch server counters (empty payload).
    pub const STATS: u8 = 0x02;
    /// Liveness probe; the payload is echoed back verbatim.
    pub const PING: u8 = 0x03;
    /// Ask the server to drain and exit (empty payload).
    pub const SHUTDOWN: u8 = 0x04;
    /// Readiness probe for load balancers and supervisors (empty payload;
    /// protocol v2).
    pub const HEALTH: u8 = 0x05;
    /// Apply a batch of edge insertions/deletions
    /// ([`super::UpdateRequest`] payload; protocol v2). Static servers
    /// answer [`super::ErrorCode::ReadOnly`].
    pub const UPDATE: u8 = 0x06;
    /// Subscribe to the primary's WAL stream from a cursor
    /// ([`super::ReplSubscribe`] payload; protocol v2). Only durable
    /// (`--wal`) primaries accept it; the connection then alternates
    /// [`REPL_BATCH`] / [`REPL_ACK`] until either side closes.
    pub const REPL_SUBSCRIBE: u8 = 0x07;
    /// Replica's durable-cursor acknowledgement ([`super::ReplAck`]
    /// payload; protocol v2). Solicits the next [`REPL_BATCH`].
    pub const REPL_ACK: u8 = 0x08;
    /// Ask a replica to stop following its primary and serve writes
    /// (empty payload; protocol v2). Idempotent on a primary.
    pub const PROMOTE: u8 = 0x09;
    /// Enumerate embeddings of a pattern ([`super::EnumerateRequest`]
    /// payload; protocol v2). Answered by a stream of [`ENUM_PAGE`]
    /// frames. Enumeration is **not** idempotent and never enters the
    /// completed-request ledger: a retry after an ambiguous failure may
    /// re-run the query and observe a different page split (or, with a
    /// `limit`, different representatives).
    pub const ENUMERATE: u8 = 0x0A;
    /// One replication shipment ([`super::ReplBatch`] payload): a raw
    /// slice of the primary's WAL record stream, a checkpoint-file chunk,
    /// or an empty heartbeat.
    pub const REPL_BATCH: u8 = 0x87;
    /// Promotion acknowledged ([`super::PromoteOk`] payload): the
    /// generation the new primary serves writes from.
    pub const PROMOTE_OK: u8 = 0x89;
    /// Successful count ([`super::CountOk`] payload).
    pub const COUNT_OK: u8 = 0x81;
    /// Counter snapshot ([`super::StatsOk`] payload).
    pub const STATS_OK: u8 = 0x82;
    /// Ping reply (echoed payload).
    pub const PONG: u8 = 0x83;
    /// Shutdown acknowledged; the server is now draining.
    pub const SHUTDOWN_OK: u8 = 0x84;
    /// Health reply ([`super::HealthOk`] payload; protocol v2).
    pub const HEALTH_OK: u8 = 0x85;
    /// Update applied ([`super::UpdateOk`] payload; protocol v2).
    pub const UPDATE_OK: u8 = 0x86;
    /// One page of an enumeration's result stream ([`super::EnumPage`]
    /// payload; protocol v2). The last page carries a flag; the stream is
    /// `ENUM_PAGE*` terminated by a flagged page (or an [`ERROR`] frame,
    /// after which no further pages follow).
    pub const ENUM_PAGE: u8 = 0x8A;
    /// Typed failure ([`super::WireError`] payload).
    pub const ERROR: u8 = 0x7F;
}

/// Typed error codes carried by [`op::ERROR`] frames. The comment on each
/// variant states whether the server keeps the connection open after
/// sending it — malformed *framing* closes (the stream can no longer be
/// trusted to be in sync), malformed *content* inside a well-formed frame
/// does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unparseable frame header or truncated stream. Connection closes.
    BadFrame,
    /// Version byte is not [`VERSION`]. Connection closes.
    UnsupportedVersion,
    /// Well-formed frame with an opcode the server does not know.
    /// Connection stays open.
    UnknownOpcode,
    /// Well-formed frame whose payload failed to decode (including pattern
    /// bytes that are not a valid canonical pattern). Connection stays open.
    BadPayload,
    /// The engine rejected the pattern (empty, disconnected, too large).
    /// Connection stays open.
    PatternRejected,
    /// The query's deadline expired (while queued for admission, or before
    /// the result could be sent). Connection stays open.
    DeadlineExceeded,
    /// The server is draining and accepts no new work. Connection closes.
    ShuttingDown,
    /// Length prefix exceeds [`MAX_FRAME_LEN`]. Connection closes.
    FrameTooLarge,
    /// The query panicked inside the engine. Connection stays open (the
    /// worker pool isolates the panic to the job's slot).
    Internal,
    /// The server is at its connection limit. Connection closes.
    TooManyConnections,
    /// The admission wait queue is full: the server is shedding load
    /// instead of queueing unboundedly (protocol v2). The error carries a
    /// retry-after hint derived from the server's latency histogram.
    /// Connection stays open.
    RetryLater,
    /// An [`op::UPDATE`] reached a server whose graph is immutable (no
    /// `--wal`). Deterministic rejection; connection stays open
    /// (protocol v2).
    ReadOnly,
    /// A write (or replication subscribe) reached a read replica. The
    /// error message carries the primary's address when the replica knows
    /// it (possibly empty). Deterministic until a failover changes roles;
    /// connection stays open (protocol v2).
    NotPrimary,
    /// A well-formed request carried an argument value the server rejects
    /// (enumeration limit of zero, sample rate outside `(0, 1]`).
    /// Deterministic rejection; connection stays open (protocol v2).
    InvalidArgument,
    /// A code this build does not know (forward compatibility).
    Other(u8),
}

impl ErrorCode {
    /// The wire byte for this code.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::UnknownOpcode => 3,
            ErrorCode::BadPayload => 4,
            ErrorCode::PatternRejected => 5,
            ErrorCode::DeadlineExceeded => 6,
            ErrorCode::ShuttingDown => 7,
            ErrorCode::FrameTooLarge => 8,
            ErrorCode::Internal => 9,
            ErrorCode::TooManyConnections => 10,
            ErrorCode::RetryLater => 11,
            ErrorCode::ReadOnly => 12,
            ErrorCode::NotPrimary => 13,
            ErrorCode::InvalidArgument => 14,
            ErrorCode::Other(code) => code,
        }
    }

    /// Decodes a wire byte (unknown bytes become [`ErrorCode::Other`]).
    pub fn from_code(code: u8) -> Self {
        match code {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::BadPayload,
            5 => ErrorCode::PatternRejected,
            6 => ErrorCode::DeadlineExceeded,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::FrameTooLarge,
            9 => ErrorCode::Internal,
            10 => ErrorCode::TooManyConnections,
            11 => ErrorCode::RetryLater,
            12 => ErrorCode::ReadOnly,
            13 => ErrorCode::NotPrimary,
            14 => ErrorCode::InvalidArgument,
            other => ErrorCode::Other(other),
        }
    }

    /// Whether a client may safely retry the request that earned this
    /// code (after a backoff / the server's retry-after hint). The
    /// non-retryable codes are deterministic rejections — resending the
    /// same bytes can only fail the same way — or an expired deadline the
    /// retry could not honor either.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::RetryLater | ErrorCode::TooManyConnections | ErrorCode::ShuttingDown
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::BadFrame => write!(f, "bad frame"),
            ErrorCode::UnsupportedVersion => write!(f, "unsupported protocol version"),
            ErrorCode::UnknownOpcode => write!(f, "unknown opcode"),
            ErrorCode::BadPayload => write!(f, "bad payload"),
            ErrorCode::PatternRejected => write!(f, "pattern rejected"),
            ErrorCode::DeadlineExceeded => write!(f, "deadline exceeded"),
            ErrorCode::ShuttingDown => write!(f, "server shutting down"),
            ErrorCode::FrameTooLarge => write!(f, "frame too large"),
            ErrorCode::Internal => write!(f, "internal server error"),
            ErrorCode::TooManyConnections => write!(f, "too many connections"),
            ErrorCode::RetryLater => write!(f, "overloaded, retry later"),
            ErrorCode::ReadOnly => write!(f, "server graph is read-only"),
            ErrorCode::NotPrimary => write!(f, "server is not the primary"),
            ErrorCode::InvalidArgument => write!(f, "invalid argument"),
            ErrorCode::Other(code) => write!(f, "error code {code}"),
        }
    }
}

/// Errors raised by the codec and transports.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket/file I/O failed.
    Io(std::io::Error),
    /// The peer closed the stream cleanly (EOF on a frame boundary).
    Closed,
    /// The stream ended or stalled in the middle of a frame — the reader
    /// can no longer trust its framing and must drop the connection.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is not [`VERSION`] (carries the byte seen).
    UnsupportedVersion(u8),
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (carries the length).
    FrameTooLarge(usize),
    /// The read timed out with no bytes consumed — not an error; poll
    /// again. Only surfaced by transports with a read timeout configured.
    Idle,
    /// The peer violated the protocol in a way framing cannot express
    /// (e.g. a response with the wrong opcode).
    Protocol(&'static str),
    /// The server answered with a typed [`op::ERROR`] frame.
    Remote {
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
        /// Server-suggested wait before retrying (carried by
        /// [`ErrorCode::RetryLater`] in protocol v2).
        retry_after_ms: Option<u32>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Truncated => write!(f, "stream truncated mid-frame"),
            NetError::BadMagic => write!(f, "bad frame magic"),
            NetError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            NetError::Idle => write!(f, "read timed out with no data"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Remote {
                code,
                message,
                retry_after_ms,
            } => {
                write!(f, "server error ({code}): {message}")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One decoded frame: the opcode byte plus its raw payload. The opcode is
/// kept raw (not an enum) so unknown opcodes survive decoding and can be
/// answered with a typed [`ErrorCode::UnknownOpcode`] instead of killing
/// the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The protocol version byte. Frames built with [`Frame::new`] carry
    /// the current [`VERSION`]; servers echo the version of each request
    /// frame in its reply so down-version clients stay served.
    pub version: u8,
    /// The opcode byte (see [`op`]).
    pub opcode: u8,
    /// The opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a current-version frame from an opcode and payload.
    pub fn new(opcode: u8, payload: Vec<u8>) -> Self {
        Self::with_version(VERSION, opcode, payload)
    }

    /// Builds a frame with an explicit version byte (reply echoing,
    /// down-version compatibility tests).
    pub fn with_version(version: u8, opcode: u8, payload: Vec<u8>) -> Self {
        Self {
            version,
            opcode,
            payload,
        }
    }

    /// An [`op::ERROR`] frame carrying `code` and `message` (truncated to
    /// `u16::MAX` bytes).
    pub fn error(code: ErrorCode, message: &str) -> Self {
        Self::new(op::ERROR, WireError::new(code, message).encode())
    }

    /// An [`op::ERROR`] frame with a retry-after hint (protocol v2; the
    /// hint travels as a trailing field v1 decoders never see).
    pub fn error_with_hint(code: ErrorCode, message: &str, retry_after_ms: u32) -> Self {
        Self::new(
            op::ERROR,
            WireError::new(code, message)
                .with_retry_after(retry_after_ms)
                .encode(),
        )
    }

    /// Serialises the frame (length prefix + header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let len = HEADER_LEN + self.payload.len();
        let mut out = Vec::with_capacity(4 + len);
        out.extend_from_slice(&(len as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.opcode);
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Reads exactly `buf.len()` bytes. `at_boundary` marks a read that starts
/// on a frame boundary: there, EOF is a clean [`NetError::Closed`] and a
/// zero-byte timeout is [`NetError::Idle`]. Once any byte of a frame has
/// been consumed, EOF and timeouts become [`NetError::Truncated`] — the
/// stream's framing can no longer be trusted.
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8], at_boundary: bool) -> Result<(), NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    NetError::Closed
                } else {
                    NetError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(if at_boundary && filled == 0 {
                    NetError::Idle
                } else {
                    NetError::Truncated
                });
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame from `reader`, validating length, magic and version.
/// Works over any byte stream. At a frame boundary, zero bytes followed
/// by EOF is a clean close and zero bytes followed by a timeout is
/// [`NetError::Idle`]; any partially-read frame that stalls or hits EOF
/// is [`NetError::Truncated`].
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Frame, NetError> {
    let mut len_buf = [0u8; 4];
    read_full(reader, &mut len_buf, true)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len < HEADER_LEN {
        return Err(NetError::Protocol(
            "length prefix shorter than the frame header",
        ));
    }
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; len];
    read_full(reader, &mut body, false)?;
    if body[..2] != MAGIC {
        return Err(NetError::BadMagic);
    }
    if !(MIN_VERSION..=VERSION).contains(&body[2]) {
        return Err(NetError::UnsupportedVersion(body[2]));
    }
    Ok(Frame {
        version: body[2],
        opcode: body[3],
        payload: body[HEADER_LEN..].to_vec(),
    })
}

/// Writes one frame to `writer` and flushes it.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), NetError> {
    writer.write_all(&frame.encode())?;
    writer.flush()?;
    Ok(())
}

/// A bidirectional frame channel. The engine-facing server and client code
/// speak only this trait, so an async or HTTP transport can be swapped in
/// without touching either.
pub trait Transport {
    /// Sends one frame.
    fn send(&mut self, frame: &Frame) -> Result<(), NetError>;
    /// Receives one frame (blocking up to the transport's read timeout,
    /// surfacing [`NetError::Idle`] on a quiet timeout).
    fn recv(&mut self) -> Result<Frame, NetError>;
    /// Sets the receive timeout, after which a quiet [`Transport::recv`]
    /// surfaces [`NetError::Idle`]. Transports without timers may ignore
    /// this (the default is a no-op); the retry layer uses it to bound
    /// each attempt.
    fn set_recv_timeout(&mut self, _timeout: Option<Duration>) -> Result<(), NetError> {
        Ok(())
    }
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        (**self).send(frame)
    }

    fn recv(&mut self) -> Result<Frame, NetError> {
        (**self).recv()
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        (**self).set_recv_timeout(timeout)
    }
}

/// Blocking TCP transport ([`TcpStream`] + Nagle disabled — frames are
/// small and latency-sensitive).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps an accepted or connected stream.
    pub fn new(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        Self { stream }
    }

    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(Self::new(TcpStream::connect(addr)?))
    }

    /// Sets the read timeout ([`NetError::Idle`] on quiet expiry).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// The wrapped stream (for peer-address logging and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        write_frame(&mut self.stream, frame)
    }

    fn recv(&mut self) -> Result<Frame, NetError> {
        read_frame(&mut self.stream)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.set_read_timeout(timeout)
    }
}

/// What a [`op::COUNT`] request asks to be counted (protocol v2; the
/// plain global count needs no mode bytes on the wire).
///
/// Orbit and sample replies ride back in the [`CountOk`] mode extension;
/// both execute on full-depth (IEP-free) plans server-side, so the
/// `no_iep` request flag is irrelevant to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// The global embedding count (the v1 behavior).
    #[default]
    Count,
    /// Per-vertex (orbit) counts; the reply summarizes them (sum, support,
    /// argmax) — full vectors do not fit a frame for large graphs.
    Orbit,
    /// A sampled Horvitz–Thompson estimate of the count.
    Sample {
        /// Sampling seed (a fixed seed reproduces the estimate).
        seed: u64,
        /// The sampling rate's IEEE-754 bits (kept as bits so the request
        /// stays `Eq` and byte-stable; see [`QueryMode::sample_rate`]).
        rate_bits: u64,
    },
}

impl QueryMode {
    /// Builds a sample mode from a plain rate.
    pub fn sample(seed: u64, rate: f64) -> Self {
        QueryMode::Sample {
            seed,
            rate_bits: rate.to_bits(),
        }
    }

    /// The sampling rate, for [`QueryMode::Sample`] (`None` otherwise).
    pub fn sample_rate(&self) -> Option<f64> {
        match self {
            QueryMode::Sample { rate_bits, .. } => Some(f64::from_bits(*rate_bits)),
            _ => None,
        }
    }
}

/// [`op::COUNT`] payload: execution flags, a deadline, an optional
/// client-generated request ID, an optional generation floor, an optional
/// query mode, and the pattern.
///
/// ```text
/// offset  size  field          present
/// 0       1     flags          always: bit0 = disable IEP, bit1 = hub
///                              bitsets, bit2 = request ID (protocol v2),
///                              bit3 = min generation (protocol v2),
///                              bit4 = query mode (protocol v2)
/// 1       4     deadline_ms    always; u32 LE, 0 = no deadline
/// 5       8     request_id     u64 LE, only when flag bit2 is set
/// +0      8     min_generation u64 LE, only when flag bit3 is set
/// +0      1     mode           only when flag bit4 is set: 1 = orbit,
///                              2 = sample (0 is malformed — plain counts
///                              omit the flag)
/// +0      16    seed,rate_bits u64 LE each, only when mode = 2
/// +0      ...   pattern        Pattern::canonical_bytes
/// ```
///
/// The request ID makes retries after *ambiguous* failures safe: a client
/// whose connection died between sending a request and reading its reply
/// cannot know whether the query executed. Resending with the same
/// nonzero ID lets the server answer from its completed-request ledger
/// instead of executing (and accounting) the query twice.
///
/// The generation floor is the read-your-writes guard for read replicas:
/// a server whose graph has not yet reached `min_generation` waits
/// briefly for the replication stream to catch up, then answers
/// [`ErrorCode::RetryLater`] instead of serving a stale count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountRequest {
    /// Disable Inclusion–Exclusion counting for this query.
    pub no_iep: bool,
    /// Execute against the hub-accelerated layout.
    pub hub_bitsets: bool,
    /// Query deadline in milliseconds (0 = none). The deadline covers
    /// admission queueing and execution; an expired query gets
    /// [`ErrorCode::DeadlineExceeded`].
    pub deadline_ms: u32,
    /// Client-generated idempotency key (0 = absent; never sent on the
    /// wire as 0).
    pub request_id: u64,
    /// Lowest graph generation this count may be served from (0 = any;
    /// never sent on the wire as 0).
    pub min_generation: u64,
    /// What to count ([`QueryMode::Count`] = the v1 global count; never
    /// sent on the wire for plain counts, so v1 servers keep working).
    pub mode: QueryMode,
    /// The pattern, as canonical bytes.
    pub pattern: Vec<u8>,
}

impl CountRequest {
    const FLAG_NO_IEP: u8 = 1 << 0;
    const FLAG_HUBS: u8 = 1 << 1;
    const FLAG_REQUEST_ID: u8 = 1 << 2;
    const FLAG_MIN_GENERATION: u8 = 1 << 3;
    const FLAG_MODE: u8 = 1 << 4;
    const MODE_ORBIT: u8 = 1;
    const MODE_SAMPLE: u8 = 2;

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(38 + self.pattern.len());
        let mut flags = 0u8;
        if self.no_iep {
            flags |= Self::FLAG_NO_IEP;
        }
        if self.hub_bitsets {
            flags |= Self::FLAG_HUBS;
        }
        if self.request_id != 0 {
            flags |= Self::FLAG_REQUEST_ID;
        }
        if self.min_generation != 0 {
            flags |= Self::FLAG_MIN_GENERATION;
        }
        if self.mode != QueryMode::Count {
            flags |= Self::FLAG_MODE;
        }
        out.push(flags);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        if self.request_id != 0 {
            out.extend_from_slice(&self.request_id.to_le_bytes());
        }
        if self.min_generation != 0 {
            out.extend_from_slice(&self.min_generation.to_le_bytes());
        }
        match self.mode {
            QueryMode::Count => {}
            QueryMode::Orbit => out.push(Self::MODE_ORBIT),
            QueryMode::Sample { seed, rate_bits } => {
                out.push(Self::MODE_SAMPLE);
                out.extend_from_slice(&seed.to_le_bytes());
                out.extend_from_slice(&rate_bits.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.pattern);
        out
    }

    /// Parses a payload; `None` on truncation, unknown flag bits, or an
    /// unknown mode byte (the pattern bytes themselves are validated later
    /// by `Pattern::from_canonical_bytes`).
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() < 5 {
            return None;
        }
        let flags = payload[0];
        if flags
            & !(Self::FLAG_NO_IEP
                | Self::FLAG_HUBS
                | Self::FLAG_REQUEST_ID
                | Self::FLAG_MIN_GENERATION
                | Self::FLAG_MODE)
            != 0
        {
            return None;
        }
        let deadline_ms = u32::from_le_bytes(payload[1..5].try_into().ok()?);
        let mut pos = 5usize;
        let request_id = if flags & Self::FLAG_REQUEST_ID != 0 {
            let id = u64::from_le_bytes(payload.get(pos..pos + 8)?.try_into().ok()?);
            pos += 8;
            if id == 0 {
                return None; // the flag promises a usable key
            }
            id
        } else {
            0
        };
        let min_generation = if flags & Self::FLAG_MIN_GENERATION != 0 {
            let floor = u64::from_le_bytes(payload.get(pos..pos + 8)?.try_into().ok()?);
            pos += 8;
            if floor == 0 {
                return None; // the flag promises a usable floor
            }
            floor
        } else {
            0
        };
        let mode = if flags & Self::FLAG_MODE != 0 {
            let tag = *payload.get(pos)?;
            pos += 1;
            match tag {
                Self::MODE_ORBIT => QueryMode::Orbit,
                Self::MODE_SAMPLE => {
                    let seed = u64::from_le_bytes(payload.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    let rate_bits = u64::from_le_bytes(payload.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    QueryMode::Sample { seed, rate_bits }
                }
                _ => return None, // the flag promises a non-count mode
            }
        } else {
            QueryMode::Count
        };
        Some(Self {
            no_iep: flags & Self::FLAG_NO_IEP != 0,
            hub_bitsets: flags & Self::FLAG_HUBS != 0,
            deadline_ms,
            request_id,
            min_generation,
            mode,
            pattern: payload[pos..].to_vec(),
        })
    }
}

/// Orbit-mode summary riding in the [`CountOk`] mode extension. Full
/// per-vertex vectors are `8 × |V|` bytes — beyond [`MAX_FRAME_LEN`] for
/// any serious graph — so the wire carries the aggregate a remote caller
/// can actually act on (totals and the hottest vertex); full vectors stay
/// a local-API affair ([`crate::engine::Session::count_per_vertex`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrbitSummary {
    /// Sum of all per-vertex counts (= pattern size × global count).
    pub sum: u64,
    /// Number of vertices with a nonzero count.
    pub nonzero_vertices: u64,
    /// The largest per-vertex count.
    pub max_count: u64,
    /// A vertex achieving `max_count` (0 when the graph is empty).
    pub max_vertex: u32,
}

/// Sample-mode result riding in the [`CountOk`] mode extension (the
/// Horvitz–Thompson estimate; see
/// [`crate::engine::Session::count_approx`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleSummary {
    /// IEEE-754 bits of the estimate (bits keep the struct `Eq`).
    pub estimate_bits: u64,
    /// IEEE-754 bits of the estimated standard error.
    pub stderr_bits: u64,
    /// Prefix tasks sampled and counted exactly.
    pub sampled_tasks: u64,
    /// Total prefix tasks the search decomposed into.
    pub total_tasks: u64,
}

impl SampleSummary {
    /// The estimate as a float.
    pub fn estimate(&self) -> f64 {
        f64::from_bits(self.estimate_bits)
    }

    /// The standard error as a float.
    pub fn stderr(&self) -> f64 {
        f64::from_bits(self.stderr_bits)
    }
}

/// The mode-specific tail of a [`CountOk`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountExt {
    /// A plain count: no extension bytes (the exact v1 reply).
    #[default]
    None,
    /// Orbit summary (`mode` byte 1 + 28 payload bytes).
    Orbit(OrbitSummary),
    /// Sample estimate (`mode` byte 2 + 32 payload bytes).
    Sample(SampleSummary),
}

/// [`op::COUNT_OK`] payload: the embedding count and the server-side
/// execution time (`[u64 count][u64 elapsed_micros]`, LE), optionally
/// followed by a mode extension (protocol v2):
/// `[u8 mode]` then, for orbit (mode 1),
/// `[u64 sum][u64 nonzero][u64 max_count][u32 max_vertex]`, or for sample
/// (mode 2), `[u64 estimate_bits][u64 stderr_bits][u64 sampled]`
/// `[u64 total]`. Plain counts stay exactly 16 bytes, so v1 decoders are
/// untouched — mode replies only ever answer mode requests, which v1
/// clients cannot send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountOk {
    /// Number of embeddings found. For orbit mode, the global count the
    /// orbit sum is consistent with; for sample mode, the estimate rounded
    /// to the nearest integer.
    pub count: u64,
    /// Server-side execution time in microseconds (excludes queueing).
    pub elapsed_micros: u64,
    /// The mode-specific tail ([`CountExt::None`] for plain counts).
    pub ext: CountExt,
}

impl CountOk {
    const ORBIT_EXT_LEN: usize = 1 + 28;
    const SAMPLE_EXT_LEN: usize = 1 + 32;

    /// A plain-count reply (no mode extension).
    pub fn new(count: u64, elapsed_micros: u64) -> Self {
        Self {
            count,
            elapsed_micros,
            ext: CountExt::None,
        }
    }

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + Self::SAMPLE_EXT_LEN);
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.elapsed_micros.to_le_bytes());
        match self.ext {
            CountExt::None => {}
            CountExt::Orbit(orbit) => {
                out.push(CountRequest::MODE_ORBIT);
                out.extend_from_slice(&orbit.sum.to_le_bytes());
                out.extend_from_slice(&orbit.nonzero_vertices.to_le_bytes());
                out.extend_from_slice(&orbit.max_count.to_le_bytes());
                out.extend_from_slice(&orbit.max_vertex.to_le_bytes());
            }
            CountExt::Sample(sample) => {
                out.push(CountRequest::MODE_SAMPLE);
                out.extend_from_slice(&sample.estimate_bits.to_le_bytes());
                out.extend_from_slice(&sample.stderr_bits.to_le_bytes());
                out.extend_from_slice(&sample.sampled_tasks.to_le_bytes());
                out.extend_from_slice(&sample.total_tasks.to_le_bytes());
            }
        }
        out
    }

    /// Parses a payload; `None` unless it is exactly 16 bytes (plain
    /// count) or 16 plus a well-formed mode extension.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() < 16 {
            return None;
        }
        let count = u64::from_le_bytes(payload[..8].try_into().ok()?);
        let elapsed_micros = u64::from_le_bytes(payload[8..16].try_into().ok()?);
        let ext = &payload[16..];
        let ext = match ext.first() {
            None => CountExt::None,
            Some(&CountRequest::MODE_ORBIT) if ext.len() == Self::ORBIT_EXT_LEN => {
                CountExt::Orbit(OrbitSummary {
                    sum: u64::from_le_bytes(ext[1..9].try_into().ok()?),
                    nonzero_vertices: u64::from_le_bytes(ext[9..17].try_into().ok()?),
                    max_count: u64::from_le_bytes(ext[17..25].try_into().ok()?),
                    max_vertex: u32::from_le_bytes(ext[25..29].try_into().ok()?),
                })
            }
            Some(&CountRequest::MODE_SAMPLE) if ext.len() == Self::SAMPLE_EXT_LEN => {
                CountExt::Sample(SampleSummary {
                    estimate_bits: u64::from_le_bytes(ext[1..9].try_into().ok()?),
                    stderr_bits: u64::from_le_bytes(ext[9..17].try_into().ok()?),
                    sampled_tasks: u64::from_le_bytes(ext[17..25].try_into().ok()?),
                    total_tasks: u64::from_le_bytes(ext[25..33].try_into().ok()?),
                })
            }
            Some(_) => return None,
        };
        Some(Self {
            count,
            elapsed_micros,
            ext,
        })
    }
}

/// [`op::ENUMERATE`] payload (protocol v2): enumerate up to `limit`
/// embeddings, streamed back as [`op::ENUM_PAGE`] frames.
///
/// ```text
/// offset  size  field        notes
/// 0       1     flags        bit0 = hub bitsets
/// 1       4     deadline_ms  u32 LE, 0 = none; checked between pages, so
///                            an expired deadline cancels the stream at
///                            the next page boundary
/// 5       8     limit        u64 LE, ≥ 1 (0 is malformed: an unbounded
///                            remote enumeration is a typo, not a query)
/// 13      4     page_size    u32 LE embeddings per page; 0 = server
///                            default, always clamped to what fits a frame
/// 17      ...   pattern      Pattern::canonical_bytes
/// ```
///
/// Enumeration never enters the completed-request ledger (replaying a
/// result stream is not a single recorded reply), so there is no request
/// ID field: a client that loses its connection mid-stream restarts the
/// enumeration from scratch and must treat already-received pages as
/// stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerateRequest {
    /// Execute against the hub-accelerated layout.
    pub hub_bitsets: bool,
    /// Deadline in milliseconds (0 = none), checked between pages.
    pub deadline_ms: u32,
    /// Maximum embeddings to return across all pages (≥ 1).
    pub limit: u64,
    /// Requested embeddings per page (0 = server default; clamped).
    pub page_size: u32,
    /// The pattern, as canonical bytes.
    pub pattern: Vec<u8>,
}

impl EnumerateRequest {
    const FLAG_HUBS: u8 = 1 << 0;

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + self.pattern.len());
        out.push(if self.hub_bitsets { Self::FLAG_HUBS } else { 0 });
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.extend_from_slice(&self.limit.to_le_bytes());
        out.extend_from_slice(&self.page_size.to_le_bytes());
        out.extend_from_slice(&self.pattern);
        out
    }

    /// Parses a payload; `None` on truncation, unknown flag bits, or a
    /// zero limit.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() < 17 {
            return None;
        }
        let flags = payload[0];
        if flags & !Self::FLAG_HUBS != 0 {
            return None;
        }
        let limit = u64::from_le_bytes(payload[5..13].try_into().ok()?);
        if limit == 0 {
            return None;
        }
        Some(Self {
            hub_bitsets: flags & Self::FLAG_HUBS != 0,
            deadline_ms: u32::from_le_bytes(payload[1..5].try_into().ok()?),
            limit,
            page_size: u32::from_le_bytes(payload[13..17].try_into().ok()?),
            pattern: payload[17..].to_vec(),
        })
    }
}

/// Largest number of embeddings of a `pattern_size`-vertex pattern that
/// fit one [`EnumPage`] frame under [`MAX_FRAME_LEN`].
pub fn max_embeddings_per_page(pattern_size: usize) -> usize {
    (MAX_FRAME_LEN - HEADER_LEN - 8) / (4 * pattern_size.max(1))
}

/// [`op::ENUM_PAGE`] payload (protocol v2): one page of an enumeration's
/// result stream.
///
/// ```text
/// offset  size   field         notes
/// 0       1      flags         bit0 = last page of the stream
/// 1       1      pattern_size  k, vertices per embedding (1..=8)
/// 2       2      reserved      must be 0
/// 4       4      n             u32 LE, embeddings in this page
/// 8       4×n×k  vertices      u32 LE, pattern-vertex order, original ids
/// ```
///
/// Every stream ends with a bit0-flagged page (possibly empty), so a
/// client knows an unflagged quiet stream means a lost server, not a
/// finished query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumPage {
    /// Whether this is the stream's final page.
    pub last: bool,
    /// Vertices per embedding.
    pub pattern_size: u8,
    /// The page's embeddings, flattened (`n × pattern_size` vertex ids in
    /// pattern-vertex order).
    pub vertices: Vec<u32>,
}

impl EnumPage {
    const FLAG_LAST: u8 = 1 << 0;

    /// Number of embeddings in this page.
    pub fn len(&self) -> usize {
        self.vertices.len() / usize::from(self.pattern_size.max(1))
    }

    /// Whether the page carries no embeddings.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Iterates the page's embeddings as `pattern_size`-length slices.
    pub fn embeddings(&self) -> impl Iterator<Item = &[u32]> {
        self.vertices
            .chunks_exact(usize::from(self.pattern_size.max(1)))
    }

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        debug_assert_eq!(self.vertices.len() % usize::from(self.pattern_size.max(1)), 0);
        let mut out = Vec::with_capacity(8 + 4 * self.vertices.len());
        out.push(if self.last { Self::FLAG_LAST } else { 0 });
        out.push(self.pattern_size);
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for &v in &self.vertices {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses a payload; `None` on truncation, trailing bytes, unknown
    /// flag bits, nonzero reserved bytes, a zero pattern size, or a count
    /// that disagrees with the payload length.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() < 8 {
            return None;
        }
        let flags = payload[0];
        if flags & !Self::FLAG_LAST != 0 {
            return None;
        }
        let pattern_size = payload[1];
        if pattern_size == 0 || payload[2] != 0 || payload[3] != 0 {
            return None;
        }
        let n = u32::from_le_bytes(payload[4..8].try_into().ok()?) as usize;
        let vertex_bytes = &payload[8..];
        let expected = n
            .checked_mul(usize::from(pattern_size))?
            .checked_mul(4)?;
        if vertex_bytes.len() != expected {
            return None;
        }
        Some(Self {
            last: flags & Self::FLAG_LAST != 0,
            pattern_size,
            vertices: vertex_bytes
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .collect(),
        })
    }
}

/// Largest number of edge pairs (inserts plus deletes) one
/// [`UpdateRequest`] can carry without its frame exceeding
/// [`MAX_FRAME_LEN`]. Clients split bigger batches.
pub const MAX_UPDATE_EDGES: usize = (MAX_FRAME_LEN - HEADER_LEN - 21) / 8;

/// [`op::UPDATE`] payload (protocol v2): a batch of undirected edge
/// insertions and deletions, applied atomically — inserts first, then
/// deletes; the reply carries the generation the batch produced.
///
/// ```text
/// offset  size  field
/// 0       1     flags       bit0 = request ID present
/// 1       4     deadline_ms u32 LE, 0 = no deadline
/// 5       8     request_id  u64 LE, only when flag bit0 is set
/// 5/13    4     n_inserts   u32 LE
/// +4      4     n_deletes   u32 LE
/// +8      8×n   edges       (u32 LE, u32 LE) pairs, inserts then deletes
/// ```
///
/// Updates are *not* idempotent by nature (replaying a batch after later
/// batches committed can change the graph), so retrying clients MUST tag
/// them with a request ID: the server's completed-request ledger then
/// answers a resent batch with the recorded reply instead of applying it
/// twice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateRequest {
    /// Deadline in milliseconds covering admission queueing (0 = none).
    pub deadline_ms: u32,
    /// Client-generated idempotency key (0 = absent; never sent on the
    /// wire as 0).
    pub request_id: u64,
    /// Undirected edges to insert.
    pub inserts: Vec<(u32, u32)>,
    /// Undirected edges to delete (after the inserts).
    pub deletes: Vec<(u32, u32)>,
}

impl UpdateRequest {
    const FLAG_REQUEST_ID: u8 = 1 << 0;

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let edges = self.inserts.len() + self.deletes.len();
        let mut out = Vec::with_capacity(21 + 8 * edges);
        let mut flags = 0u8;
        if self.request_id != 0 {
            flags |= Self::FLAG_REQUEST_ID;
        }
        out.push(flags);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        if self.request_id != 0 {
            out.extend_from_slice(&self.request_id.to_le_bytes());
        }
        out.extend_from_slice(&(self.inserts.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.deletes.len() as u32).to_le_bytes());
        for &(u, v) in self.inserts.iter().chain(self.deletes.iter()) {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses a payload; `None` on truncation, trailing bytes, unknown
    /// flag bits, or edge counts that disagree with the payload length.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() < 5 {
            return None;
        }
        let flags = payload[0];
        if flags & !Self::FLAG_REQUEST_ID != 0 {
            return None;
        }
        let deadline_ms = u32::from_le_bytes(payload[1..5].try_into().ok()?);
        let (request_id, rest) = if flags & Self::FLAG_REQUEST_ID != 0 {
            let id = u64::from_le_bytes(payload.get(5..13)?.try_into().ok()?);
            if id == 0 {
                return None; // the flag promises a usable key
            }
            (id, payload.get(13..)?)
        } else {
            (0, &payload[5..])
        };
        if rest.len() < 8 {
            return None;
        }
        let n_inserts = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
        let n_deletes = u32::from_le_bytes(rest[4..8].try_into().ok()?) as usize;
        let edges = &rest[8..];
        if edges.len() != 8 * (n_inserts.checked_add(n_deletes)?) {
            return None;
        }
        let mut pairs = edges
            .chunks_exact(8)
            .map(|pair| {
                (
                    u32::from_le_bytes(pair[..4].try_into().unwrap()),
                    u32::from_le_bytes(pair[4..].try_into().unwrap()),
                )
            })
            .collect::<Vec<_>>();
        let deletes = pairs.split_off(n_inserts);
        Some(Self {
            deadline_ms,
            request_id,
            inserts: pairs,
            deletes,
        })
    }
}

/// [`op::UPDATE_OK`] payload (protocol v2): the generation the batch
/// produced plus what it actually changed
/// (`[u64 generation][u32 inserted][u32 deleted]`, LE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOk {
    /// Graph generation after the batch; queries pinned to this or later
    /// generations observe the batch.
    pub generation: u64,
    /// Undirected edges that became present (no-ops excluded).
    pub inserted: u32,
    /// Undirected edges that became absent (no-ops excluded).
    pub deleted: u32,
}

impl UpdateOk {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.inserted.to_le_bytes());
        out.extend_from_slice(&self.deleted.to_le_bytes());
        out
    }

    /// Parses a payload; `None` unless it is exactly 16 bytes.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 16 {
            return None;
        }
        Some(Self {
            generation: u64::from_le_bytes(payload[..8].try_into().ok()?),
            inserted: u32::from_le_bytes(payload[8..12].try_into().ok()?),
            deleted: u32::from_le_bytes(payload[12..].try_into().ok()?),
        })
    }
}

/// Server readiness, as reported by the [`op::HEALTH`] opcode
/// (protocol v2). Probes and load balancers branch on this without
/// issuing a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Accepting and executing queries.
    Ready,
    /// Draining: in-flight queries finish, new work is refused.
    Draining,
    /// The admission wait queue is full; new queries get
    /// [`ErrorCode::RetryLater`].
    Overloaded,
}

impl HealthState {
    /// The wire byte for this state.
    pub fn code(self) -> u8 {
        match self {
            HealthState::Ready => 0,
            HealthState::Draining => 1,
            HealthState::Overloaded => 2,
        }
    }

    /// Decodes a wire byte; `None` for unknown states.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(HealthState::Ready),
            1 => Some(HealthState::Draining),
            2 => Some(HealthState::Overloaded),
            _ => None,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Ready => write!(f, "ready"),
            HealthState::Draining => write!(f, "draining"),
            HealthState::Overloaded => write!(f, "overloaded"),
        }
    }
}

/// A server's place in a replication topology, carried by [`HealthOk`]
/// and [`StatsOk`]. A standalone server reports
/// [`ReplRole::Primary`] — replication is the only way to be anything
/// else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplRole {
    /// Serves writes; fans committed WAL records out to subscribers.
    #[default]
    Primary,
    /// Follows a primary's WAL stream; writes get
    /// [`ErrorCode::NotPrimary`].
    Replica,
    /// Promotion requested; the replication stream is being sealed.
    Promoting,
}

impl ReplRole {
    /// The wire byte for this role.
    pub fn code(self) -> u8 {
        match self {
            ReplRole::Primary => 0,
            ReplRole::Replica => 1,
            ReplRole::Promoting => 2,
        }
    }

    /// Decodes a wire byte; `None` for unknown roles.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ReplRole::Primary),
            1 => Some(ReplRole::Replica),
            2 => Some(ReplRole::Promoting),
            _ => None,
        }
    }
}

impl fmt::Display for ReplRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplRole::Primary => write!(f, "primary"),
            ReplRole::Replica => write!(f, "replica"),
            ReplRole::Promoting => write!(f, "promoting"),
        }
    }
}

/// [`op::HEALTH_OK`] payload:
/// `[u8 state][u32 retry_after_ms][u8 role][u64 replication_lag]` (LE).
/// The retry-after hint is 0 when the server is ready. Pre-replication
/// servers sent only the first five bytes; decoders accept both lengths,
/// defaulting the missing fields to a caught-up primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthOk {
    /// The server's readiness state.
    pub state: HealthState,
    /// Suggested wait before sending work (0 = none needed).
    pub retry_after_ms: u32,
    /// The server's replication role.
    pub role: ReplRole,
    /// Generations this server trails its primary by (0 on a primary or
    /// a caught-up replica).
    pub replication_lag: u64,
}

impl HealthOk {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14);
        out.push(self.state.code());
        out.extend_from_slice(&self.retry_after_ms.to_le_bytes());
        out.push(self.role.code());
        out.extend_from_slice(&self.replication_lag.to_le_bytes());
        out
    }

    /// Serialises for a peer speaking protocol `version`: v1 peers get
    /// the original 5-byte layout (their decoders reject anything
    /// longer), v2 peers the full 14 bytes.
    pub fn encode_for(&self, version: u8) -> Vec<u8> {
        let mut out = self.encode();
        if version < 2 {
            out.truncate(5);
        }
        out
    }

    /// Parses a payload; `None` unless it is exactly 5 bytes (the
    /// pre-replication layout) or exactly 14, with known state and role
    /// bytes.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 5 && payload.len() != 14 {
            return None;
        }
        let (role, replication_lag) = if payload.len() == 14 {
            (
                ReplRole::from_code(payload[5])?,
                u64::from_le_bytes(payload[6..14].try_into().ok()?),
            )
        } else {
            (ReplRole::Primary, 0)
        };
        Some(Self {
            state: HealthState::from_code(payload[0])?,
            retry_after_ms: u32::from_le_bytes(payload[1..5].try_into().ok()?),
            role,
            replication_lag,
        })
    }
}

/// Number of buckets in the serving latency histogram: bucket 0 holds
/// sub-microsecond samples, bucket `b ≥ 1` holds `[2^(b-1), 2^b)`
/// microseconds, and the last bucket absorbs everything slower (≈ 36
/// minutes), so no sample is ever dropped.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log2 latency histogram over microseconds (see [`HISTOGRAM_BUCKETS`]
/// for the bucket layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts per bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// The bucket index for a sample of `micros` microseconds.
    pub fn bucket_index(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            ((micros.ilog2() as usize) + 1).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, micros: u64) {
        let bucket = &mut self.buckets[Self::bucket_index(micros)];
        *bucket = bucket.saturating_add(1);
    }

    /// Total number of recorded samples (saturating: decoded histograms
    /// may carry counts near `u64::MAX`).
    pub fn total(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &count| acc.saturating_add(count))
    }

    /// Inclusive lower bound (in microseconds) of bucket `index`.
    pub fn bucket_floor_micros(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// An upper bound (in microseconds) below which at least `p` (0..=1.0)
    /// of the samples fall — the histogram-resolution percentile. Returns
    /// `None` when the histogram is empty.
    pub fn percentile_upper_bound_micros(&self, p: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(count);
            if seen >= target.max(1) {
                return Some(if index + 1 < HISTOGRAM_BUCKETS {
                    1u64 << index
                } else {
                    u64::MAX
                });
            }
        }
        Some(u64::MAX)
    }
}

/// [`op::STATS_OK`] payload: a full server counter snapshot. Fixed-size:
/// seven `u32` gauges, eight `u64` counters, then the 32-bucket latency
/// histogram (all LE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsOk {
    /// Worker threads currently alive in the pool.
    pub live_workers: u32,
    /// The pool's concurrent-job limit.
    pub max_in_flight: u32,
    /// Jobs executing on the pool right now.
    pub in_flight: u32,
    /// Count requests waiting for admission (queue depth).
    pub queued: u32,
    /// Plans currently in the cache.
    pub cache_len: u32,
    /// Plan-cache capacity.
    pub cache_capacity: u32,
    /// Plans re-planned into the cache by warm start at boot.
    pub warm_started: u32,
    /// Connections accepted since boot.
    pub connections_total: u64,
    /// Count queries that entered execution (admitted; includes rejected
    /// patterns and late completions, excludes queries cancelled while
    /// queued). With a cold boot, `cache_hits + cache_misses ==
    /// queries_total + warm_started`.
    pub queries_total: u64,
    /// Queries whose deadline expired (while queued or before reply).
    pub deadline_exceeded: u64,
    /// Malformed frames / protocol violations observed.
    pub protocol_errors: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Count queries refused with [`ErrorCode::RetryLater`] because the
    /// admission wait queue was full (protocol v2; this slot was the
    /// always-zero `reserved` field in v1, so the layout is unchanged).
    pub overload_rejections: u64,
    /// Per-query execution latency histogram.
    pub latency: LatencyHistogram,
    /// Generations this server trails its primary by (0 on a primary).
    /// Rides in the v2 trailing extension (see [`StatsOk::encode_for`]).
    pub replication_lag: u64,
    /// The server's replication role (v2 trailing extension).
    pub repl_role: ReplRole,
    /// Enumeration streams started (second v2 trailing extension; rides
    /// after the replication extension, same reserved-tail pattern).
    pub enumerations_total: u64,
    /// Enumeration result pages sent across all streams (second v2
    /// trailing extension).
    pub pages_sent: u64,
}

impl StatsOk {
    const ENCODED_LEN: usize = 7 * 4 + 8 * 8 + HISTOGRAM_BUCKETS * 8;
    /// Size of the v2 trailing extension: `[u64 replication_lag]`
    /// `[u8 role][7 reserved zero bytes]`. The reserved bytes keep the
    /// extension 8-byte aligned and leave room for the next field without
    /// another length change.
    const REPL_EXT_LEN: usize = 16;
    /// Size of the second v2 trailing extension:
    /// `[u64 enumerations_total][u64 pages_sent]`. Appended after the
    /// replication extension; decoders that predate it simply stop at the
    /// shorter accepted length.
    const ENUM_EXT_LEN: usize = 16;

    /// Serialises the payload in the v1 layout (no replication
    /// extension) — what a v1 peer must receive.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN + Self::REPL_EXT_LEN);
        for gauge in [
            self.live_workers,
            self.max_in_flight,
            self.in_flight,
            self.queued,
            self.cache_len,
            self.cache_capacity,
            self.warm_started,
        ] {
            out.extend_from_slice(&gauge.to_le_bytes());
        }
        for counter in [
            self.connections_total,
            self.queries_total,
            self.deadline_exceeded,
            self.protocol_errors,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.overload_rejections,
        ] {
            out.extend_from_slice(&counter.to_le_bytes());
        }
        for bucket in self.latency.buckets {
            out.extend_from_slice(&bucket.to_le_bytes());
        }
        out
    }

    /// Serialises the payload for a peer speaking `version`: v2 peers get
    /// the trailing replication and enumeration extensions (which their
    /// decoders accept by length), v1 peers get the exact layout they
    /// validate against.
    pub fn encode_for(&self, version: u8) -> Vec<u8> {
        let mut out = self.encode();
        if version >= 2 {
            out.extend_from_slice(&self.replication_lag.to_le_bytes());
            out.push(self.repl_role.code());
            out.extend_from_slice(&[0u8; 7]);
            out.extend_from_slice(&self.enumerations_total.to_le_bytes());
            out.extend_from_slice(&self.pages_sent.to_le_bytes());
        }
        out
    }

    /// Parses a payload; `None` unless it is exactly the v1 fixed size,
    /// that plus the 16-byte replication extension (whose reserved bytes
    /// must be zero), or that plus the 16-byte enumeration extension as
    /// well — each historical length decodes with the newer fields
    /// defaulted to zero.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let (replication_lag, repl_role, enumerations_total, pages_sent) = if payload.len()
            == Self::ENCODED_LEN + Self::REPL_EXT_LEN + Self::ENUM_EXT_LEN
            || payload.len() == Self::ENCODED_LEN + Self::REPL_EXT_LEN
        {
            let ext = &payload[Self::ENCODED_LEN..];
            if ext[9..Self::REPL_EXT_LEN].iter().any(|&b| b != 0) {
                return None;
            }
            let (enumerations_total, pages_sent) = if ext.len() > Self::REPL_EXT_LEN {
                let tail = &ext[Self::REPL_EXT_LEN..];
                (
                    u64::from_le_bytes(tail[..8].try_into().ok()?),
                    u64::from_le_bytes(tail[8..16].try_into().ok()?),
                )
            } else {
                (0, 0)
            };
            (
                u64::from_le_bytes(ext[..8].try_into().ok()?),
                ReplRole::from_code(ext[8])?,
                enumerations_total,
                pages_sent,
            )
        } else if payload.len() == Self::ENCODED_LEN {
            (0, ReplRole::Primary, 0, 0)
        } else {
            return None;
        };
        let payload = &payload[..Self::ENCODED_LEN];
        let mut pos = 0usize;
        let mut next_u32 = || {
            let v = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap());
            pos += 4;
            v
        };
        let live_workers = next_u32();
        let max_in_flight = next_u32();
        let in_flight = next_u32();
        let queued = next_u32();
        let cache_len = next_u32();
        let cache_capacity = next_u32();
        let warm_started = next_u32();
        let mut next_u64 = || {
            let v = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
            pos += 8;
            v
        };
        let connections_total = next_u64();
        let queries_total = next_u64();
        let deadline_exceeded = next_u64();
        let protocol_errors = next_u64();
        let cache_hits = next_u64();
        let cache_misses = next_u64();
        let cache_evictions = next_u64();
        let overload_rejections = next_u64();
        let mut latency = LatencyHistogram::default();
        for bucket in latency.buckets.iter_mut() {
            *bucket = next_u64();
        }
        Some(Self {
            live_workers,
            max_in_flight,
            in_flight,
            queued,
            cache_len,
            cache_capacity,
            warm_started,
            connections_total,
            queries_total,
            deadline_exceeded,
            protocol_errors,
            cache_hits,
            cache_misses,
            cache_evictions,
            overload_rejections,
            latency,
            replication_lag,
            repl_role,
            enumerations_total,
            pages_sent,
        })
    }
}

/// Largest number of raw stream bytes one [`ReplBatch`] ships. Sized so
/// the frame stays well under [`MAX_FRAME_LEN`]; a single WAL record can
/// exceed one frame (a full-size update's record does), which is why the
/// stream is shipped as raw byte ranges a replica reassembles rather than
/// whole records.
pub const REPL_CHUNK_BYTES: usize = 48 * 1024;

/// [`op::REPL_SUBSCRIBE`] payload: the cursor a replica wants the WAL
/// stream resumed from — `[u8 flags=0][u64 generation][u64 offset]` (LE),
/// exactly 17 bytes. `generation` is the replica's current graph
/// generation; `offset` is a byte-offset hint into the primary's log (the
/// `next_offset` of the last [`ReplBatch`] it durably applied, 0 when
/// unknown). The primary trusts the hint only after re-validating it and
/// falls back to a full scan — or a checkpoint bootstrap when the cursor
/// predates the log's base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplSubscribe {
    /// The replica's current graph generation.
    pub generation: u64,
    /// Byte-offset hint into the primary's WAL (0 = unknown).
    pub offset: u64,
}

impl ReplSubscribe {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        out.push(0);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out
    }

    /// Parses a payload; `None` unless it is exactly 17 bytes with a zero
    /// flags byte.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 17 || payload[0] != 0 {
            return None;
        }
        Some(Self {
            generation: u64::from_le_bytes(payload[1..9].try_into().ok()?),
            offset: u64::from_le_bytes(payload[9..17].try_into().ok()?),
        })
    }
}

/// What one [`ReplBatch`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplPayload {
    /// `bytes` is a raw slice of the primary's WAL record stream (not
    /// necessarily record-aligned; empty = heartbeat). `next_offset` is
    /// the primary's log offset after these bytes.
    Records,
    /// `bytes` is a chunk of the primary's checkpoint file (a cursor too
    /// old for the log bootstraps from the full graph). `next_offset` is
    /// the offset into that file after this chunk.
    Checkpoint {
        /// Whether this is the final chunk: the replica loads the file,
        /// installs it at `ReplBatch::generation`, and resubscribes from
        /// there.
        done: bool,
    },
}

/// [`op::REPL_BATCH`] payload: one shipment from primary to replica —
/// `[u8 flags][u64 primary_generation][u64 generation][u64 next_offset]`
/// `[u32 n][n bytes]` (LE), exactly `29 + n` bytes. Flag bit0 marks a
/// checkpoint chunk, bit1 (only with bit0) marks the final one; no flags
/// means raw WAL stream bytes, and an empty `bytes` is the heartbeat that
/// keeps lag reporting fresh while the replica is caught up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplBatch {
    /// What `bytes` is (see [`ReplPayload`]).
    pub payload: ReplPayload,
    /// The primary's current graph generation at send time — the replica
    /// derives its lag from this.
    pub primary_generation: u64,
    /// For records: the stream horizon these bytes were shipped under.
    /// For checkpoint chunks: the generation the finished file installs
    /// at.
    pub generation: u64,
    /// The cursor after consuming `bytes` (log offset for records, file
    /// offset for checkpoint chunks) — what the replica echoes back in
    /// its next [`ReplAck`].
    pub next_offset: u64,
    /// The shipped bytes (≤ [`REPL_CHUNK_BYTES`]).
    pub bytes: Vec<u8>,
}

impl ReplBatch {
    const FLAG_CHECKPOINT: u8 = 1 << 0;
    const FLAG_CHECKPOINT_DONE: u8 = 1 << 1;

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29 + self.bytes.len());
        let flags = match self.payload {
            ReplPayload::Records => 0,
            ReplPayload::Checkpoint { done: false } => Self::FLAG_CHECKPOINT,
            ReplPayload::Checkpoint { done: true } => {
                Self::FLAG_CHECKPOINT | Self::FLAG_CHECKPOINT_DONE
            }
        };
        out.push(flags);
        out.extend_from_slice(&self.primary_generation.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.next_offset.to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Parses a payload; `None` on truncation, trailing bytes, unknown
    /// flag bits, or a done flag without the checkpoint flag.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() < 29 {
            return None;
        }
        let flags = payload[0];
        if flags & !(Self::FLAG_CHECKPOINT | Self::FLAG_CHECKPOINT_DONE) != 0 {
            return None;
        }
        let batch_payload = match (
            flags & Self::FLAG_CHECKPOINT != 0,
            flags & Self::FLAG_CHECKPOINT_DONE != 0,
        ) {
            (false, false) => ReplPayload::Records,
            (true, done) => ReplPayload::Checkpoint { done },
            (false, true) => return None, // done promises a checkpoint
        };
        let n = u32::from_le_bytes(payload[25..29].try_into().ok()?) as usize;
        if payload.len() != 29usize.checked_add(n)? {
            return None;
        }
        Some(Self {
            payload: batch_payload,
            primary_generation: u64::from_le_bytes(payload[1..9].try_into().ok()?),
            generation: u64::from_le_bytes(payload[9..17].try_into().ok()?),
            next_offset: u64::from_le_bytes(payload[17..25].try_into().ok()?),
            bytes: payload[29..].to_vec(),
        })
    }
}

/// [`op::REPL_ACK`] payload: the replica's durable cursor after applying
/// a [`ReplBatch`] — `[u64 generation][u64 offset]` (LE), exactly 16
/// bytes. The primary computes subscriber lag from `generation` and
/// resumes shipping from `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplAck {
    /// The replica's graph generation after applying the batch.
    pub generation: u64,
    /// The cursor the replica expects the next shipment from (echoed
    /// `next_offset`).
    pub offset: u64,
}

impl ReplAck {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out
    }

    /// Parses a payload; `None` unless it is exactly 16 bytes.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 16 {
            return None;
        }
        Some(Self {
            generation: u64::from_le_bytes(payload[..8].try_into().ok()?),
            offset: u64::from_le_bytes(payload[8..].try_into().ok()?),
        })
    }
}

/// [`op::PROMOTE_OK`] payload: `[u64 generation]` (LE), exactly 8 bytes —
/// the generation the newly promoted (or already-) primary serves writes
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PromoteOk {
    /// The promoted server's current graph generation.
    pub generation: u64,
}

impl PromoteOk {
    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        self.generation.to_le_bytes().to_vec()
    }

    /// Parses a payload; `None` unless it is exactly 8 bytes.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() != 8 {
            return None;
        }
        Some(Self {
            generation: u64::from_le_bytes(payload.try_into().ok()?),
        })
    }
}

/// [`op::ERROR`] payload: `[u8 code][u16 msg_len][msg utf8]`, optionally
/// followed by a 4-byte LE retry-after hint in milliseconds (protocol
/// v2). v1 decoders reject trailing bytes, so servers only append the
/// hint on v2 connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The typed error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Suggested client backoff before retrying (v2 extension).
    pub retry_after_ms: Option<u32>,
}

impl WireError {
    /// Builds an error payload, truncating the message to `u16::MAX` bytes.
    pub fn new(code: ErrorCode, message: &str) -> Self {
        let mut message = message.to_string();
        if message.len() > usize::from(u16::MAX) {
            // Truncate on a char boundary.
            let mut cut = usize::from(u16::MAX);
            while !message.is_char_boundary(cut) {
                cut -= 1;
            }
            message.truncate(cut);
        }
        Self {
            code,
            message,
            retry_after_ms: None,
        }
    }

    /// Attaches a retry-after hint (milliseconds).
    pub fn with_retry_after(mut self, retry_after_ms: u32) -> Self {
        self.retry_after_ms = Some(retry_after_ms);
        self
    }

    /// Serialises the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + self.message.len() + 4);
        out.push(self.code.code());
        out.extend_from_slice(&(self.message.len() as u16).to_le_bytes());
        out.extend_from_slice(self.message.as_bytes());
        if let Some(ms) = self.retry_after_ms {
            out.extend_from_slice(&ms.to_le_bytes());
        }
        out
    }

    /// Parses a payload; `None` on truncation, unexpected trailing bytes,
    /// or non-UTF-8 text. Exactly four trailing bytes decode as the v2
    /// retry-after hint.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        if payload.len() < 3 {
            return None;
        }
        let code = ErrorCode::from_code(payload[0]);
        let msg_len = u16::from_le_bytes(payload[1..3].try_into().ok()?) as usize;
        let text = payload.get(3..3 + msg_len)?;
        let retry_after_ms = match payload.len() - 3 - msg_len {
            0 => None,
            4 => Some(u32::from_le_bytes(payload[3 + msg_len..].try_into().ok()?)),
            _ => return None,
        };
        Some(Self {
            code,
            message: String::from_utf8(text.to_vec()).ok()?,
            retry_after_ms,
        })
    }

    /// Converts into the error the client surfaces.
    pub fn into_net_error(self) -> NetError {
        NetError::Remote {
            code: self.code,
            message: self.message,
            retry_after_ms: self.retry_after_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips_through_a_byte_stream() {
        for frame in [
            Frame::new(op::PING, vec![]),
            Frame::new(op::COUNT, vec![1, 2, 3, 4, 5, 6]),
            Frame::new(0xEE, vec![0; 1000]),
            Frame::error(ErrorCode::BadPayload, "nope"),
        ] {
            let bytes = frame.encode();
            let mut cursor = Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
            // Nothing left: a second read sees clean EOF.
            assert!(matches!(read_frame(&mut cursor), Err(NetError::Closed)));
        }
    }

    #[test]
    fn malformed_streams_yield_typed_errors() {
        // Truncated length prefix.
        assert!(matches!(
            read_frame(&mut Cursor::new(vec![7u8, 0])),
            Err(NetError::Truncated)
        ));
        // Length shorter than the header.
        let mut short = Vec::new();
        short.extend_from_slice(&3u32.to_le_bytes());
        short.extend_from_slice(b"GP\x01");
        assert!(matches!(
            read_frame(&mut Cursor::new(short)),
            Err(NetError::Protocol(_))
        ));
        // Oversized length prefix fails before any allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(huge)),
            Err(NetError::FrameTooLarge(_))
        ));
        // Wrong magic.
        let mut bad_magic = Frame::new(op::PING, vec![]).encode();
        bad_magic[4] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(bad_magic)),
            Err(NetError::BadMagic)
        ));
        // Wrong version.
        let mut bad_version = Frame::new(op::PING, vec![]).encode();
        bad_version[6] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad_version)),
            Err(NetError::UnsupportedVersion(9))
        ));
        // Body truncated mid-frame.
        let full = Frame::new(op::COUNT, vec![1, 2, 3]).encode();
        for cut in 1..full.len() {
            let result = read_frame(&mut Cursor::new(full[..cut].to_vec()));
            assert!(result.is_err(), "cut at {cut} must not parse");
        }
    }

    #[test]
    fn payload_codecs_round_trip() {
        let req = CountRequest {
            no_iep: true,
            hub_bitsets: false,
            deadline_ms: 1234,
            request_id: 0,
            min_generation: 0,
            mode: QueryMode::Count,
            pattern: vec![3, 0b110, 0b101, 0b011],
        };
        assert_eq!(CountRequest::decode(&req.encode()).unwrap(), req);
        assert!(CountRequest::decode(&[]).is_none());
        assert!(
            CountRequest::decode(&[0xFF, 0, 0, 0, 0, 1]).is_none(),
            "unknown flags"
        );

        // v2 request IDs round-trip and change the encoded length.
        let tagged = CountRequest {
            request_id: 0xDEAD_BEEF_CAFE_F00D,
            ..req.clone()
        };
        assert_eq!(CountRequest::decode(&tagged.encode()).unwrap(), tagged);
        assert_eq!(tagged.encode().len(), req.encode().len() + 8);
        // The flag with a zero id is malformed.
        let mut zero_id = tagged.encode();
        for byte in &mut zero_id[5..13] {
            *byte = 0;
        }
        assert!(CountRequest::decode(&zero_id).is_none());

        let ok = CountOk::new(u64::MAX - 3, 17);
        assert_eq!(CountOk::decode(&ok.encode()).unwrap(), ok);
        assert!(CountOk::decode(&ok.encode()[..15]).is_none());

        let mut stats = StatsOk {
            live_workers: 4,
            queries_total: 99,
            cache_hits: 90,
            cache_misses: 9,
            ..StatsOk::default()
        };
        stats.latency.record(0);
        stats.latency.record(1);
        stats.latency.record(1500);
        assert_eq!(StatsOk::decode(&stats.encode()).unwrap(), stats);
        assert!(StatsOk::decode(&stats.encode()[1..]).is_none());

        let err = WireError::new(ErrorCode::DeadlineExceeded, "too slow");
        assert_eq!(WireError::decode(&err.encode()).unwrap(), err);
        assert!(WireError::decode(&err.encode()[..2]).is_none());
        // A single trailing byte is neither v1 nor a v2 hint.
        let mut padded = err.encode();
        padded.push(0);
        assert!(WireError::decode(&padded).is_none());

        // v2 retry-after hint rides as exactly four trailing bytes.
        let hinted = WireError::new(ErrorCode::RetryLater, "busy").with_retry_after(250);
        assert_eq!(hinted.encode().len(), 3 + 4 + 4);
        let decoded = WireError::decode(&hinted.encode()).unwrap();
        assert_eq!(decoded, hinted);
        assert_eq!(decoded.retry_after_ms, Some(250));
        match decoded.into_net_error() {
            NetError::Remote {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, ErrorCode::RetryLater);
                assert!(code.is_retryable());
                assert_eq!(retry_after_ms, Some(250));
            }
            other => panic!("expected Remote, got {other:?}"),
        }

        let health = HealthOk {
            state: HealthState::Overloaded,
            retry_after_ms: 75,
            role: ReplRole::Primary,
            replication_lag: 0,
        };
        assert_eq!(HealthOk::decode(&health.encode()).unwrap(), health);
        assert!(
            HealthOk::decode(&[3, 0, 0, 0, 0]).is_none(),
            "unknown state"
        );
        assert!(HealthOk::decode(&health.encode()[..4]).is_none());
        for state in [
            HealthState::Ready,
            HealthState::Draining,
            HealthState::Overloaded,
        ] {
            assert_eq!(HealthState::from_code(state.code()), Some(state));
        }
    }

    #[test]
    fn update_codecs_round_trip() {
        let bare = UpdateRequest {
            deadline_ms: 0,
            request_id: 0,
            inserts: vec![],
            deletes: vec![],
        };
        assert_eq!(UpdateRequest::decode(&bare.encode()).unwrap(), bare);

        let req = UpdateRequest {
            deadline_ms: 900,
            request_id: 0x1234_5678_9ABC_DEF0,
            inserts: vec![(0, 7), (3, 3), (u32::MAX, 1)],
            deletes: vec![(2, 5)],
        };
        let bytes = req.encode();
        assert_eq!(UpdateRequest::decode(&bytes).unwrap(), req);
        // Tagged requests are 8 bytes longer than untagged ones.
        let untagged = UpdateRequest {
            request_id: 0,
            ..req.clone()
        };
        assert_eq!(bytes.len(), untagged.encode().len() + 8);

        // Truncations never parse.
        for cut in 0..bytes.len() {
            assert!(
                UpdateRequest::decode(&bytes[..cut]).is_none(),
                "cut at {cut}"
            );
        }
        // Trailing bytes never parse.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(UpdateRequest::decode(&padded).is_none());
        // Unknown flag bits never parse.
        let mut flagged = bytes.clone();
        flagged[0] |= 0x80;
        assert!(UpdateRequest::decode(&flagged).is_none());
        // The request-id flag with a zero id is malformed.
        let mut zero_id = bytes.clone();
        for byte in &mut zero_id[5..13] {
            *byte = 0;
        }
        assert!(UpdateRequest::decode(&zero_id).is_none());
        // Edge counts that disagree with the payload length never parse.
        let mut wrong_count = bytes.clone();
        wrong_count[13] = wrong_count[13].wrapping_add(1);
        assert!(UpdateRequest::decode(&wrong_count).is_none());

        let ok = UpdateOk {
            generation: u64::MAX - 9,
            inserted: 3,
            deleted: 1,
        };
        assert_eq!(UpdateOk::decode(&ok.encode()).unwrap(), ok);
        assert_eq!(ok.encode().len(), 16);
        assert!(UpdateOk::decode(&ok.encode()[..15]).is_none());

        // A full-size batch still fits in one frame.
        let full = UpdateRequest {
            deadline_ms: 0,
            request_id: 1,
            inserts: vec![(1, 2); MAX_UPDATE_EDGES],
            deletes: vec![],
        };
        assert!(Frame::new(op::UPDATE, full.encode()).encode().len() <= MAX_FRAME_LEN + 4);
        assert!(ErrorCode::ReadOnly.code() == 12 && !ErrorCode::ReadOnly.is_retryable());
    }

    #[test]
    fn v1_frames_are_still_accepted() {
        // A v1 peer's frame parses and remembers its version, so replies
        // can echo it.
        let frame = Frame::with_version(MIN_VERSION, op::PING, vec![]);
        let decoded = read_frame(&mut Cursor::new(frame.encode())).unwrap();
        assert_eq!(decoded.version, MIN_VERSION);
        assert_eq!(decoded, frame);
        // Versions outside MIN..=current are refused.
        let future = Frame::with_version(VERSION + 1, op::PING, vec![]).encode();
        assert!(matches!(
            read_frame(&mut Cursor::new(future)),
            Err(NetError::UnsupportedVersion(_))
        ));
        let ancient = Frame::with_version(0, op::PING, vec![]).encode();
        assert!(matches!(
            read_frame(&mut Cursor::new(ancient)),
            Err(NetError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn error_codes_round_trip() {
        for byte in 0u8..=255 {
            assert_eq!(ErrorCode::from_code(byte).code(), byte);
        }
    }

    #[test]
    fn replication_codecs_round_trip() {
        let sub = ReplSubscribe {
            generation: 42,
            offset: 8_192,
        };
        assert_eq!(sub.encode().len(), 17);
        assert_eq!(ReplSubscribe::decode(&sub.encode()), Some(sub));
        // Exactly 17 bytes with a zero flags byte, nothing else.
        assert!(ReplSubscribe::decode(&sub.encode()[..16]).is_none());
        let mut bad_flags = sub.encode();
        bad_flags[0] = 1;
        assert!(ReplSubscribe::decode(&bad_flags).is_none());

        for payload in [
            ReplPayload::Records,
            ReplPayload::Checkpoint { done: false },
            ReplPayload::Checkpoint { done: true },
        ] {
            for bytes in [vec![], vec![0xAB; 100]] {
                let batch = ReplBatch {
                    payload,
                    primary_generation: 7,
                    generation: 5,
                    next_offset: 1_234,
                    bytes,
                };
                let encoded = batch.encode();
                assert_eq!(encoded.len(), 29 + batch.bytes.len());
                assert_eq!(ReplBatch::decode(&encoded), Some(batch));
            }
        }
        let batch = ReplBatch {
            payload: ReplPayload::Records,
            primary_generation: 1,
            generation: 1,
            next_offset: 64,
            bytes: vec![1, 2, 3],
        };
        let encoded = batch.encode();
        // Truncation, trailing garbage, done-without-checkpoint and
        // unknown flag bits are all refused.
        assert!(ReplBatch::decode(&encoded[..encoded.len() - 1]).is_none());
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(ReplBatch::decode(&trailing).is_none());
        let mut done_only = encoded.clone();
        done_only[0] = 1 << 1;
        assert!(ReplBatch::decode(&done_only).is_none());
        let mut unknown = encoded;
        unknown[0] = 1 << 4;
        assert!(ReplBatch::decode(&unknown).is_none());

        let ack = ReplAck {
            generation: 9,
            offset: 77,
        };
        assert_eq!(ack.encode().len(), 16);
        assert_eq!(ReplAck::decode(&ack.encode()), Some(ack));
        assert!(ReplAck::decode(&ack.encode()[..15]).is_none());

        let ok = PromoteOk { generation: 11 };
        assert_eq!(ok.encode().len(), 8);
        assert_eq!(PromoteOk::decode(&ok.encode()), Some(ok));
        assert!(PromoteOk::decode(&[0; 7]).is_none());
    }

    #[test]
    fn health_and_stats_encode_per_version() {
        // A v2 health reply carries role + lag; encode_for(v1) truncates
        // to the 5 bytes a v1 decoder insists on.
        let health = HealthOk {
            state: HealthState::Ready,
            retry_after_ms: 0,
            role: ReplRole::Replica,
            replication_lag: 3,
        };
        assert_eq!(health.encode_for(MIN_VERSION).len(), 5);
        assert_eq!(health.encode_for(VERSION).len(), 14);
        let decoded = HealthOk::decode(&health.encode_for(VERSION)).unwrap();
        assert_eq!(decoded, health);
        let v1 = HealthOk::decode(&health.encode_for(MIN_VERSION)).unwrap();
        assert_eq!(v1.state, HealthState::Ready);
        // The 5-byte form decodes with the defaults a v1 server implies.
        assert_eq!(v1.role, ReplRole::Primary);
        assert_eq!(v1.replication_lag, 0);

        let stats = StatsOk {
            replication_lag: 4,
            repl_role: ReplRole::Replica,
            ..StatsOk::default()
        };
        let v2 = stats.encode_for(VERSION);
        let v1 = stats.encode_for(MIN_VERSION);
        assert_eq!(v2.len(), v1.len() + 32);
        let decoded = StatsOk::decode(&v2).unwrap();
        assert_eq!(decoded.replication_lag, 4);
        assert_eq!(decoded.repl_role, ReplRole::Replica);
        // A v1 payload decodes with the reserved-field defaults.
        let decoded = StatsOk::decode(&v1).unwrap();
        assert_eq!(decoded.replication_lag, 0);
        assert_eq!(decoded.repl_role, ReplRole::Primary);
    }

    #[test]
    fn stats_enumeration_tail_is_length_discriminated() {
        let stats = StatsOk {
            enumerations_total: 12,
            pages_sent: 345,
            replication_lag: 1,
            repl_role: ReplRole::Replica,
            ..StatsOk::default()
        };
        let v2 = stats.encode_for(VERSION);
        let decoded = StatsOk::decode(&v2).unwrap();
        assert_eq!(decoded, stats);
        // A replication-era payload (one 16-byte extension) still decodes,
        // with the enumeration counters defaulted.
        let repl_only = &v2[..v2.len() - 16];
        let decoded = StatsOk::decode(repl_only).unwrap();
        assert_eq!(decoded.replication_lag, 1);
        assert_eq!(decoded.enumerations_total, 0);
        assert_eq!(decoded.pages_sent, 0);
        // Any other length is refused.
        assert!(StatsOk::decode(&v2[..v2.len() - 8]).is_none());
        let mut longer = v2.clone();
        longer.push(0);
        assert!(StatsOk::decode(&longer).is_none());
    }

    #[test]
    fn query_mode_round_trips_on_count_requests() {
        let base = CountRequest {
            no_iep: false,
            hub_bitsets: true,
            deadline_ms: 50,
            request_id: 0,
            min_generation: 0,
            mode: QueryMode::Count,
            pattern: vec![3, 0b110, 0b101, 0b011],
        };
        let orbit = CountRequest {
            mode: QueryMode::Orbit,
            ..base.clone()
        };
        assert_eq!(CountRequest::decode(&orbit.encode()).unwrap(), orbit);
        assert_eq!(orbit.encode().len(), base.encode().len() + 1);

        let sample = CountRequest {
            mode: QueryMode::sample(0xFEED, 0.25),
            ..base.clone()
        };
        let decoded = CountRequest::decode(&sample.encode()).unwrap();
        assert_eq!(decoded, sample);
        assert_eq!(decoded.mode.sample_rate(), Some(0.25));
        assert_eq!(sample.encode().len(), base.encode().len() + 17);

        // Modes compose with the other optional fields.
        let full = CountRequest {
            request_id: 7,
            min_generation: 3,
            mode: QueryMode::sample(1, 0.5),
            ..base.clone()
        };
        assert_eq!(CountRequest::decode(&full.encode()).unwrap(), full);

        // The mode flag with a zero mode byte is malformed (plain counts
        // omit the flag), as is an unknown mode byte.
        let mut zero_mode = orbit.encode();
        let mode_pos = 5; // flags + deadline, no id/generation
        assert_eq!(zero_mode[mode_pos], 1);
        zero_mode[mode_pos] = 0;
        assert!(CountRequest::decode(&zero_mode).is_none());
        zero_mode[mode_pos] = 9;
        assert!(CountRequest::decode(&zero_mode).is_none());
        // A sample mode cut off before its parameters never parses.
        let cut = sample.encode();
        assert!(CountRequest::decode(&cut[..cut.len() - sample.pattern.len() - 1]).is_none());
    }

    #[test]
    fn count_ok_mode_extensions_round_trip() {
        let plain = CountOk::new(9, 100);
        assert_eq!(plain.encode().len(), 16);
        assert_eq!(CountOk::decode(&plain.encode()).unwrap(), plain);

        let orbit = CountOk {
            count: 9,
            elapsed_micros: 100,
            ext: CountExt::Orbit(OrbitSummary {
                sum: 45,
                nonzero_vertices: 21,
                max_count: 7,
                max_vertex: 3,
            }),
        };
        assert_eq!(orbit.encode().len(), 16 + 29);
        assert_eq!(CountOk::decode(&orbit.encode()).unwrap(), orbit);

        let sample = CountOk {
            count: 10,
            elapsed_micros: 50,
            ext: CountExt::Sample(SampleSummary {
                estimate_bits: 10.25f64.to_bits(),
                stderr_bits: 1.5f64.to_bits(),
                sampled_tasks: 12,
                total_tasks: 40,
            }),
        };
        assert_eq!(sample.encode().len(), 16 + 33);
        let decoded = CountOk::decode(&sample.encode()).unwrap();
        assert_eq!(decoded, sample);
        let CountExt::Sample(s) = decoded.ext else {
            panic!("expected a sample extension");
        };
        assert_eq!(s.estimate(), 10.25);
        assert_eq!(s.stderr(), 1.5);

        // Wrong extension lengths and unknown tags are refused.
        assert!(CountOk::decode(&orbit.encode()[..16 + 28]).is_none());
        assert!(CountOk::decode(&sample.encode()[..16 + 32]).is_none());
        let mut unknown = plain.encode();
        unknown.push(9);
        assert!(CountOk::decode(&unknown).is_none());
    }

    #[test]
    fn enumerate_codecs_round_trip() {
        let req = EnumerateRequest {
            hub_bitsets: true,
            deadline_ms: 2_000,
            limit: 1_000,
            page_size: 64,
            pattern: vec![3, 0b110, 0b101, 0b011],
        };
        assert_eq!(EnumerateRequest::decode(&req.encode()).unwrap(), req);
        // Zero limits, unknown flags and truncations never parse.
        let zero_limit = EnumerateRequest { limit: 0, ..req.clone() };
        assert!(EnumerateRequest::decode(&zero_limit.encode()).is_none());
        let mut flagged = req.encode();
        flagged[0] |= 0x80;
        assert!(EnumerateRequest::decode(&flagged).is_none());
        assert!(EnumerateRequest::decode(&req.encode()[..16]).is_none());

        let page = EnumPage {
            last: false,
            pattern_size: 3,
            vertices: vec![1, 2, 3, 9, 8, 7],
        };
        assert_eq!(page.len(), 2);
        assert_eq!(EnumPage::decode(&page.encode()).unwrap(), page);
        assert_eq!(
            page.embeddings().collect::<Vec<_>>(),
            vec![&[1, 2, 3][..], &[9, 8, 7][..]]
        );
        let terminal = EnumPage {
            last: true,
            pattern_size: 5,
            vertices: vec![],
        };
        assert!(terminal.is_empty());
        assert_eq!(EnumPage::decode(&terminal.encode()).unwrap(), terminal);

        // Malformed pages are refused: truncation, trailing bytes, a
        // count/length mismatch, unknown flags, nonzero reserved bytes,
        // and a zero pattern size.
        let bytes = page.encode();
        assert!(EnumPage::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(EnumPage::decode(&trailing).is_none());
        let mut wrong_count = bytes.clone();
        wrong_count[4] = 3;
        assert!(EnumPage::decode(&wrong_count).is_none());
        let mut bad_flags = bytes.clone();
        bad_flags[0] |= 0x40;
        assert!(EnumPage::decode(&bad_flags).is_none());
        let mut bad_reserved = bytes.clone();
        bad_reserved[2] = 1;
        assert!(EnumPage::decode(&bad_reserved).is_none());
        let mut zero_size = bytes;
        zero_size[1] = 0;
        assert!(EnumPage::decode(&zero_size).is_none());

        // The page-size cap keeps every legal page under the frame cap.
        for k in 1..=8usize {
            let n = max_embeddings_per_page(k);
            let page = EnumPage {
                last: true,
                pattern_size: k as u8,
                vertices: vec![0; n * k],
            };
            assert!(page.encode().len() + HEADER_LEN <= MAX_FRAME_LEN);
            assert!((n + 1) * k * 4 + 8 + HEADER_LEN > MAX_FRAME_LEN);
        }
    }

    #[test]
    fn histogram_buckets_are_log2_micros() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            HISTOGRAM_BUCKETS - 1
        );
        let mut h = LatencyHistogram::default();
        for us in [0, 1, 2, 3, 900, 1_000_000] {
            h.record(us);
        }
        assert_eq!(h.total(), 6);
        assert!(h.percentile_upper_bound_micros(0.5).unwrap() <= 1 << 10);
        assert!(LatencyHistogram::bucket_floor_micros(0) == 0);
        assert!(LatencyHistogram::bucket_floor_micros(11) == 1024);
    }
}
