//! The GraphPi client library: a thin, synchronous request/response layer
//! over any [`Transport`], plus the retrying client built on top of it.
//!
//! `Client` is what `graphpi-cli remote` and the network tests are built
//! on. Each method sends exactly one request frame and blocks for exactly
//! one response frame; a typed server error ([`op::ERROR`]) surfaces as
//! [`NetError::Remote`] with its [`ErrorCode`] intact, so callers can
//! distinguish "your deadline expired" from "your pattern is disconnected"
//! without string matching.
//!
//! [`RetryingClient`] wraps the same wire exchange in a [`RetryPolicy`]:
//! bounded attempts, exponential backoff with seeded jitter, per-attempt
//! and overall deadlines, and automatic reconnect through a caller-
//! supplied connector. COUNT retries carry a client-generated request ID
//! so a resend after an *ambiguous* failure (reply lost mid-read) is
//! answered from the server's completed-request ledger instead of
//! double-executing.

use super::chaos::SplitMix64;
use super::protocol::{
    op, CountExt, CountOk, CountRequest, EnumPage, EnumerateRequest, ErrorCode, Frame, HealthOk,
    NetError, PromoteOk, QueryMode, StatsOk, TcpTransport, Transport, UpdateOk, UpdateRequest,
    WireError, MAX_UPDATE_EDGES,
};
use graphpi_pattern::Pattern;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-query options for [`Client::count_with`] — the wire-level mirror of
/// the server-side execution flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteCountOptions {
    /// Disable Inclusion–Exclusion counting for this query.
    pub no_iep: bool,
    /// Execute against the hub-accelerated layout.
    pub hub_bitsets: bool,
    /// Deadline in milliseconds covering queueing + execution (0 = none).
    pub deadline_ms: u32,
    /// Idempotency key for safe retries (0 = none; [`RetryingClient`]
    /// fills this in automatically).
    pub request_id: u64,
    /// Read-your-writes floor (0 = none): the server answers only at or
    /// after this generation, waiting briefly for replication to catch
    /// up and shedding with `RETRY_LATER` past its wait budget.
    pub min_generation: u64,
    /// Execution mode: a plain count (default), per-vertex orbit counts
    /// (summarised in the reply), or a seeded sampled estimate
    /// (protocol v2).
    pub mode: QueryMode,
}

/// Per-enumeration options for [`Client::enumerate_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteEnumerateOptions {
    /// Execute against the hub-accelerated layout. The returned tuples
    /// may pick different automorphic representatives than the plain
    /// layout; the set of occurrences is identical.
    pub hub_bitsets: bool,
    /// Deadline in milliseconds covering queueing, matching, *and* page
    /// streaming — the server re-checks it between pages (0 = none).
    pub deadline_ms: u32,
    /// Requested embeddings per `ENUM_PAGE` (0 = server default; always
    /// clamped to what one frame can carry).
    pub page_size: u32,
}

/// A completed remote enumeration: every embedding received, plus how
/// many pages carried them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteEnumeration {
    /// The embeddings, one `Vec` per match, indexed by pattern vertex.
    pub embeddings: Vec<Vec<u32>>,
    /// `ENUM_PAGE` frames received (at least 1 — an empty result is one
    /// empty terminal page).
    pub pages: u64,
}

/// Per-update options for [`Client::update_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteUpdateOptions {
    /// Deadline in milliseconds covering queueing + commit (0 = none).
    pub deadline_ms: u32,
    /// Idempotency key (0 = none). Unlike counts, updates are **not**
    /// naturally idempotent — recommitting an applied batch burns a
    /// generation and can change the graph — so anything that resends
    /// must set this ([`RetryingClient`] fills it in automatically).
    pub request_id: u64,
}

/// A successful remote count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteCount {
    /// Number of embeddings found (for sample mode: the estimate rounded
    /// to the nearest integer — the full-precision value is in `ext`).
    pub count: u64,
    /// Server-side execution time (excludes queueing and network).
    pub elapsed: Duration,
    /// Mode-specific extension: an orbit summary or sample estimate
    /// ([`CountExt::None`] for plain counts).
    pub ext: CountExt,
}

/// A synchronous GraphPi protocol client over any [`Transport`].
#[derive(Debug)]
pub struct Client<T: Transport = TcpTransport> {
    transport: T,
}

impl Client<TcpTransport> {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(Self::new(TcpTransport::connect(addr)?))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps an existing transport.
    pub fn new(transport: T) -> Self {
        Self { transport }
    }

    /// Consumes the client, returning its transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Sends one request and receives its response, surfacing server
    /// [`op::ERROR`] frames as [`NetError::Remote`].
    fn roundtrip(&mut self, request: &Frame, expect: u8) -> Result<Frame, NetError> {
        self.transport.send(request)?;
        let response = loop {
            match self.transport.recv() {
                Ok(frame) => break frame,
                // Only surfaced when the caller configured a read timeout
                // on the transport; the query is still running, keep
                // waiting.
                Err(NetError::Idle) => continue,
                Err(error) => return Err(error),
            }
        };
        if response.opcode == op::ERROR {
            let error = WireError::decode(&response.payload)
                .ok_or(NetError::Protocol("undecodable error payload"))?;
            return Err(error.into_net_error());
        }
        if response.opcode != expect {
            return Err(NetError::Protocol(
                "response opcode does not match the request",
            ));
        }
        Ok(response)
    }

    /// Liveness probe: sends `PING`, expects the payload echoed back.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let payload = vec![0xA5, 0x5A, 0x42];
        let response = self.roundtrip(&Frame::new(op::PING, payload.clone()), op::PONG)?;
        if response.payload != payload {
            return Err(NetError::Protocol("pong payload was not echoed"));
        }
        Ok(())
    }

    /// Counts embeddings of `pattern` with default options.
    pub fn count(&mut self, pattern: &Pattern) -> Result<RemoteCount, NetError> {
        self.count_with(pattern, RemoteCountOptions::default())
    }

    /// Counts embeddings with explicit per-query options.
    pub fn count_with(
        &mut self,
        pattern: &Pattern,
        options: RemoteCountOptions,
    ) -> Result<RemoteCount, NetError> {
        let request = CountRequest {
            no_iep: options.no_iep,
            hub_bitsets: options.hub_bitsets,
            deadline_ms: options.deadline_ms,
            request_id: options.request_id,
            min_generation: options.min_generation,
            mode: options.mode,
            pattern: pattern.canonical_bytes(),
        };
        let response = self.roundtrip(&Frame::new(op::COUNT, request.encode()), op::COUNT_OK)?;
        let ok = CountOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable COUNT_OK payload"))?;
        Ok(RemoteCount {
            count: ok.count,
            elapsed: Duration::from_micros(ok.elapsed_micros),
            ext: ok.ext,
        })
    }

    /// Enumerates up to `limit` embeddings with default options,
    /// collecting every streamed page (protocol v2).
    pub fn enumerate(
        &mut self,
        pattern: &Pattern,
        limit: u64,
    ) -> Result<RemoteEnumeration, NetError> {
        self.enumerate_with(pattern, limit, RemoteEnumerateOptions::default())
    }

    /// Enumerates up to `limit` embeddings with explicit options,
    /// collecting the `ENUM_PAGE` stream until its terminal page.
    ///
    /// Unlike counts there is no idempotency key: an enumeration that
    /// fails mid-stream cannot be resumed — issue a fresh request (and
    /// see [`RetryingClient::enumerate_with`] for the only retry that is
    /// safe automatically: one where no page was received).
    pub fn enumerate_with(
        &mut self,
        pattern: &Pattern,
        limit: u64,
        options: RemoteEnumerateOptions,
    ) -> Result<RemoteEnumeration, NetError> {
        let request = EnumerateRequest {
            hub_bitsets: options.hub_bitsets,
            deadline_ms: options.deadline_ms,
            limit,
            page_size: options.page_size,
            pattern: pattern.canonical_bytes(),
        };
        self.transport
            .send(&Frame::new(op::ENUMERATE, request.encode()))?;
        let mut result = RemoteEnumeration {
            embeddings: Vec::new(),
            pages: 0,
        };
        loop {
            let frame = match self.transport.recv() {
                Ok(frame) => frame,
                Err(NetError::Idle) => continue,
                Err(error) => return Err(error),
            };
            if frame.opcode == op::ERROR {
                let error = WireError::decode(&frame.payload)
                    .ok_or(NetError::Protocol("undecodable error payload"))?;
                return Err(error.into_net_error());
            }
            if frame.opcode != op::ENUM_PAGE {
                return Err(NetError::Protocol(
                    "response opcode does not match the request",
                ));
            }
            let page = EnumPage::decode(&frame.payload)
                .ok_or(NetError::Protocol("undecodable ENUM_PAGE payload"))?;
            if usize::from(page.pattern_size) != pattern.num_vertices() {
                return Err(NetError::Protocol(
                    "page pattern size does not match the request",
                ));
            }
            result.pages += 1;
            result
                .embeddings
                .extend(page.embeddings().map(<[u32]>::to_vec));
            if page.last {
                return Ok(result);
            }
        }
    }

    /// Commits one edge batch (protocol v2). Inserts apply before
    /// deletes; the reply carries the generation the batch produced.
    /// Static servers answer [`ErrorCode::ReadOnly`].
    pub fn update(
        &mut self,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
    ) -> Result<UpdateOk, NetError> {
        self.update_with(inserts, deletes, RemoteUpdateOptions::default())
    }

    /// Commits one edge batch with explicit options.
    pub fn update_with(
        &mut self,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
        options: RemoteUpdateOptions,
    ) -> Result<UpdateOk, NetError> {
        let request = encode_update(inserts, deletes, options)?;
        let response = self.roundtrip(&Frame::new(op::UPDATE, request.encode()), op::UPDATE_OK)?;
        UpdateOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable UPDATE_OK payload"))
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsOk, NetError> {
        let response = self.roundtrip(&Frame::new(op::STATS, vec![]), op::STATS_OK)?;
        StatsOk::decode(&response.payload).ok_or(NetError::Protocol("undecodable STATS_OK payload"))
    }

    /// Probes server readiness (protocol v2): ready, draining, or
    /// overloaded, with a retry-after hint when not ready.
    pub fn health(&mut self) -> Result<HealthOk, NetError> {
        let response = self.roundtrip(&Frame::new(op::HEALTH, vec![]), op::HEALTH_OK)?;
        HealthOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable HEALTH_OK payload"))
    }

    /// Asks a replica to promote itself to primary (protocol v2),
    /// blocking until its apply loop seals the stream. Idempotent on a
    /// server that is already primary. Returns the sealed generation.
    pub fn promote(&mut self) -> Result<PromoteOk, NetError> {
        let response = self.roundtrip(&Frame::new(op::PROMOTE, vec![]), op::PROMOTE_OK)?;
        PromoteOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable PROMOTE_OK payload"))
    }

    /// Asks the server to drain and exit. The server acknowledges, then
    /// closes this connection.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        self.roundtrip(&Frame::new(op::SHUTDOWN, vec![]), op::SHUTDOWN_OK)?;
        Ok(())
    }
}

/// Builds the wire request for an update, refusing batches that cannot
/// fit one frame (the caller must split them — see
/// [`MAX_UPDATE_EDGES`]).
fn encode_update(
    inserts: &[(u32, u32)],
    deletes: &[(u32, u32)],
    options: RemoteUpdateOptions,
) -> Result<UpdateRequest, NetError> {
    if inserts.len().saturating_add(deletes.len()) > MAX_UPDATE_EDGES {
        return Err(NetError::Protocol(
            "update batch exceeds one frame; split it into MAX_UPDATE_EDGES chunks",
        ));
    }
    Ok(UpdateRequest {
        deadline_ms: options.deadline_ms,
        request_id: options.request_id,
        inserts: inserts.to_vec(),
        deletes: deletes.to_vec(),
    })
}

/// Convenience: is this error the server saying "deadline exceeded"?
pub fn is_deadline_exceeded(error: &NetError) -> bool {
    matches!(
        error,
        NetError::Remote {
            code: ErrorCode::DeadlineExceeded,
            ..
        }
    )
}

/// Convenience: is this error worth retrying? True for transport-level
/// failures (closed/reset/truncated connections, timeouts) and for the
/// server's recoverable refusals ([`ErrorCode::is_retryable`]); false
/// for content errors a retry cannot fix (bad pattern, bad payload,
/// deadline exceeded).
pub fn is_retryable(error: &NetError) -> bool {
    match error {
        NetError::Remote { code, .. } => code.is_retryable(),
        NetError::Io(_)
        | NetError::Closed
        | NetError::Truncated
        | NetError::Idle
        | NetError::BadMagic => true,
        // Version/protocol/frame-size errors mean the peers disagree
        // about the wire format; resending the same bytes cannot help.
        _ => false,
    }
}

/// Retry/backoff policy for [`RetryingClient`]: bounded attempts,
/// exponential backoff with seeded jitter, and optional per-attempt and
/// overall deadlines. The whole schedule is a pure function of the
/// policy (see [`RetryPolicy::backoff_schedule`]), so tests can assert
/// it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling (pre-jitter).
    pub max_backoff: Duration,
    /// Seed for the jitter schedule and request-ID stream. Give each
    /// client its own seed: IDs double as server-side idempotency keys.
    pub seed: u64,
    /// Per-attempt reply deadline (`None` = wait forever). Applied via
    /// [`Transport::set_recv_timeout`].
    pub attempt_timeout: Option<Duration>,
    /// Overall deadline across all attempts and backoffs.
    pub overall_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            seed: 0,
            attempt_timeout: None,
            overall_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// Builder: sets the jitter/request-ID seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The exact backoff waits this policy produces: one entry per
    /// retry (so `max_attempts - 1` entries). Each is the doubled,
    /// capped base scaled by a jitter factor in `[0.5, 1.5)` drawn from
    /// the seeded generator — fully deterministic per seed.
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.max_attempts.saturating_sub(1))
            .map(|retry| {
                let doubled = self
                    .initial_backoff
                    .saturating_mul(1u32 << retry.min(20))
                    .min(self.max_backoff);
                let per_mille = 500 + rng.next_below(1000);
                let nanos = doubled.as_nanos().saturating_mul(per_mille as u128) / 1000;
                Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
            })
            .collect()
    }
}

/// Counters describing what a [`RetryingClient`] actually did — tests
/// assert on these to prove the chaos runs exercised the retry paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Wire attempts issued (first tries + retries).
    pub attempts: u64,
    /// Fresh connections dialed (includes the first).
    pub connects: u64,
    /// Retries that followed a retryable failure.
    pub retries: u64,
    /// Backoffs stretched to honor a server retry-after hint.
    pub hints_honored: u64,
}

type Connector = Box<dyn FnMut() -> Result<Box<dyn Transport + Send>, NetError> + Send>;

/// A [`Client`] wrapped in a [`RetryPolicy`]: reconnects through a
/// caller-supplied connector, classifies failures via [`is_retryable`],
/// sleeps the policy's jittered backoff (stretched to any server
/// retry-after hint), and tags COUNT queries with request IDs so
/// ambiguous failures are safe to resend.
pub struct RetryingClient {
    connector: Connector,
    policy: RetryPolicy,
    transport: Option<Box<dyn Transport + Send>>,
    id_rng: SplitMix64,
    stats: RetryStats,
}

impl RetryingClient {
    /// Builds a retrying client over any connector. The connector is
    /// called lazily — once before the first attempt, then after every
    /// connection-killing failure.
    pub fn new<F>(connector: F, policy: RetryPolicy) -> Self
    where
        F: FnMut() -> Result<Box<dyn Transport + Send>, NetError> + Send + 'static,
    {
        Self {
            connector: Box::new(connector),
            policy,
            transport: None,
            // Offset the ID stream from the jitter stream so the two
            // deterministic sequences never correlate.
            id_rng: SplitMix64::new(policy.seed ^ 0x1D0_C0DE),
            stats: RetryStats::default(),
        }
    }

    /// Retrying client dialing `addr` over plain TCP.
    pub fn connect_tcp(addr: std::net::SocketAddr, policy: RetryPolicy) -> Self {
        Self::new(
            move || {
                let transport = TcpTransport::connect(addr)?;
                Ok(Box::new(transport) as Box<dyn Transport + Send>)
            },
            policy,
        )
    }

    /// What this client has done so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Drops the current connection; the next attempt redials through
    /// the connector. Lets failover logic force a re-route without
    /// waiting for the dead socket to fail an exchange.
    pub fn disconnect(&mut self) {
        self.transport = None;
    }

    /// Counts embeddings of `pattern` with default options, retrying per
    /// the policy.
    pub fn count(&mut self, pattern: &Pattern) -> Result<RemoteCount, NetError> {
        self.count_with(pattern, RemoteCountOptions::default())
    }

    /// Counts embeddings with explicit options, retrying per the policy.
    /// A caller-supplied `request_id` is kept; otherwise a fresh one is
    /// drawn so every attempt of this query shares one idempotency key.
    pub fn count_with(
        &mut self,
        pattern: &Pattern,
        mut options: RemoteCountOptions,
    ) -> Result<RemoteCount, NetError> {
        if options.request_id == 0 {
            options.request_id = self.next_request_id();
        }
        let request = CountRequest {
            no_iep: options.no_iep,
            hub_bitsets: options.hub_bitsets,
            deadline_ms: options.deadline_ms,
            request_id: options.request_id,
            min_generation: options.min_generation,
            mode: options.mode,
            pattern: pattern.canonical_bytes(),
        };
        let frame = Frame::new(op::COUNT, request.encode());
        let response = self.exchange_with_retries(&frame, op::COUNT_OK)?;
        let ok = CountOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable COUNT_OK payload"))?;
        Ok(RemoteCount {
            count: ok.count,
            elapsed: Duration::from_micros(ok.elapsed_micros),
            ext: ok.ext,
        })
    }

    /// Enumerates up to `limit` embeddings with default options, with
    /// the zero-page retry rule of [`RetryingClient::enumerate_with`].
    pub fn enumerate(
        &mut self,
        pattern: &Pattern,
        limit: u64,
    ) -> Result<RemoteEnumeration, NetError> {
        self.enumerate_with(pattern, limit, RemoteEnumerateOptions::default())
    }

    /// Enumerates up to `limit` embeddings, retrying per the policy —
    /// but **only while no page has been received**. Enumeration carries
    /// no idempotency key and its pages are not resumable: once a page
    /// has arrived, a failure surfaces immediately rather than risking a
    /// silently interleaved second stream (a truncated-limit re-run may
    /// also legitimately return different embeddings). Callers that need
    /// to recover mid-stream issue a fresh request.
    pub fn enumerate_with(
        &mut self,
        pattern: &Pattern,
        limit: u64,
        options: RemoteEnumerateOptions,
    ) -> Result<RemoteEnumeration, NetError> {
        let started = Instant::now();
        let deadline = self.policy.overall_deadline.map(|limit| started + limit);
        let schedule = self.policy.backoff_schedule();
        let mut last_error = NetError::Closed;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            self.stats.attempts += 1;
            match self.try_enumerate_once(pattern, limit, options, deadline) {
                Ok(result) => return Ok(result),
                Err((error, pages_received)) => {
                    // The stream is in an unknown state after any failure;
                    // always reconnect before the next attempt.
                    self.transport = None;
                    if pages_received > 0 || !is_retryable(&error) {
                        return Err(error);
                    }
                    let wait = schedule
                        .get(attempt as usize)
                        .copied()
                        .unwrap_or(Duration::ZERO);
                    last_error = error;
                    if attempt + 1 >= self.policy.max_attempts.max(1) {
                        break;
                    }
                    if let Some(deadline) = deadline {
                        if Instant::now() + wait >= deadline {
                            return Err(last_error);
                        }
                    }
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last_error)
    }

    /// One enumeration attempt; on failure, reports how many pages had
    /// already arrived (the retry-safety signal).
    fn try_enumerate_once(
        &mut self,
        pattern: &Pattern,
        limit: u64,
        options: RemoteEnumerateOptions,
        deadline: Option<Instant>,
    ) -> Result<RemoteEnumeration, (NetError, u64)> {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err((NetError::Idle, 0));
            }
        }
        if self.transport.is_none() {
            self.stats.connects += 1;
            self.transport = Some((self.connector)().map_err(|e| (e, 0))?);
        }
        let transport = self.transport.as_mut().expect("connected above");
        let mut timeout = self.policy.attempt_timeout;
        if let Some(deadline) = deadline {
            let left = deadline.saturating_duration_since(Instant::now());
            timeout = Some(
                timeout
                    .map_or(left, |t| t.min(left))
                    .max(Duration::from_millis(1)),
            );
        }
        transport.set_recv_timeout(timeout).map_err(|e| (e, 0))?;
        let request = EnumerateRequest {
            hub_bitsets: options.hub_bitsets,
            deadline_ms: options.deadline_ms,
            limit,
            page_size: options.page_size,
            pattern: pattern.canonical_bytes(),
        };
        transport
            .send(&Frame::new(op::ENUMERATE, request.encode()))
            .map_err(|e| (e, 0))?;
        let mut result = RemoteEnumeration {
            embeddings: Vec::new(),
            pages: 0,
        };
        loop {
            let frame = transport.recv().map_err(|e| (e, result.pages))?;
            if frame.opcode == op::ERROR {
                let error = WireError::decode(&frame.payload)
                    .ok_or(NetError::Protocol("undecodable error payload"))
                    .map_err(|e| (e, result.pages))?;
                return Err((error.into_net_error(), result.pages));
            }
            if frame.opcode != op::ENUM_PAGE {
                return Err((
                    NetError::Protocol("response opcode does not match the request"),
                    result.pages,
                ));
            }
            let page = EnumPage::decode(&frame.payload)
                .ok_or((
                    NetError::Protocol("undecodable ENUM_PAGE payload"),
                    result.pages,
                ))?;
            if usize::from(page.pattern_size) != pattern.num_vertices() {
                return Err((
                    NetError::Protocol("page pattern size does not match the request"),
                    result.pages,
                ));
            }
            result.pages += 1;
            result
                .embeddings
                .extend(page.embeddings().map(<[u32]>::to_vec));
            if page.last {
                return Ok(result);
            }
        }
    }

    /// Commits one edge batch, retrying per the policy. Every attempt
    /// carries the same request ID, so a resend after an ambiguous
    /// failure is answered from the server's ledger with the generation
    /// the batch *originally* produced — never committed twice.
    pub fn update(
        &mut self,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
    ) -> Result<UpdateOk, NetError> {
        self.update_with(inserts, deletes, RemoteUpdateOptions::default())
    }

    /// Commits one edge batch with explicit options, retrying per the
    /// policy. A caller-supplied `request_id` is kept; otherwise a fresh
    /// one is always drawn — an untagged update must not be resent.
    pub fn update_with(
        &mut self,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
        mut options: RemoteUpdateOptions,
    ) -> Result<UpdateOk, NetError> {
        if options.request_id == 0 {
            options.request_id = self.next_request_id();
        }
        let request = encode_update(inserts, deletes, options)?;
        let frame = Frame::new(op::UPDATE, request.encode());
        let response = self.exchange_with_retries(&frame, op::UPDATE_OK)?;
        UpdateOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable UPDATE_OK payload"))
    }

    /// Fetches the server's counter snapshot, retrying per the policy
    /// (STATS is naturally idempotent — no request ID needed).
    pub fn stats_remote(&mut self) -> Result<StatsOk, NetError> {
        let response = self.exchange_with_retries(&Frame::new(op::STATS, vec![]), op::STATS_OK)?;
        StatsOk::decode(&response.payload).ok_or(NetError::Protocol("undecodable STATS_OK payload"))
    }

    /// Probes server readiness, retrying per the policy.
    pub fn health(&mut self) -> Result<HealthOk, NetError> {
        let response =
            self.exchange_with_retries(&Frame::new(op::HEALTH, vec![]), op::HEALTH_OK)?;
        HealthOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable HEALTH_OK payload"))
    }

    fn next_request_id(&mut self) -> u64 {
        loop {
            let id = self.id_rng.next_u64();
            if id != 0 {
                return id;
            }
        }
    }

    /// One logical request: up to `max_attempts` wire exchanges, with
    /// reconnects, backoff, hint-stretched sleeps, and deadline
    /// enforcement between them.
    fn exchange_with_retries(&mut self, request: &Frame, expect: u8) -> Result<Frame, NetError> {
        let started = Instant::now();
        let deadline = self.policy.overall_deadline.map(|limit| started + limit);
        let schedule = self.policy.backoff_schedule();
        let mut last_error = NetError::Closed;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            self.stats.attempts += 1;
            match self.try_once(request, expect, deadline) {
                Ok(response) => return Ok(response),
                Err(error) => {
                    if !is_retryable(&error) {
                        return Err(error);
                    }
                    // A retryable *remote* error arrived on a live
                    // connection; everything else leaves the stream in
                    // an unknown state, so reconnect.
                    let keep_connection = matches!(
                        error,
                        NetError::Remote {
                            code: ErrorCode::RetryLater,
                            ..
                        }
                    );
                    if !keep_connection {
                        self.transport = None;
                    }
                    let mut wait = schedule
                        .get(attempt as usize)
                        .copied()
                        .unwrap_or(Duration::ZERO);
                    if let NetError::Remote {
                        retry_after_ms: Some(hint_ms),
                        ..
                    } = error
                    {
                        let hint = Duration::from_millis(u64::from(hint_ms));
                        if hint > wait {
                            wait = hint;
                            self.stats.hints_honored += 1;
                        }
                    }
                    last_error = error;
                    if attempt + 1 >= self.policy.max_attempts.max(1) {
                        break;
                    }
                    if let Some(deadline) = deadline {
                        let now = Instant::now();
                        if now + wait >= deadline {
                            return Err(last_error);
                        }
                    }
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last_error)
    }

    /// One wire attempt: (re)connect if needed, bound the read, send,
    /// receive, surface typed errors.
    fn try_once(
        &mut self,
        request: &Frame,
        expect: u8,
        deadline: Option<Instant>,
    ) -> Result<Frame, NetError> {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(NetError::Idle);
            }
        }
        if self.transport.is_none() {
            self.stats.connects += 1;
            self.transport = Some((self.connector)()?);
        }
        let transport = self.transport.as_mut().expect("connected above");
        // Bound this attempt by the tighter of the per-attempt timeout
        // and the time left on the overall deadline.
        let mut timeout = self.policy.attempt_timeout;
        if let Some(deadline) = deadline {
            let left = deadline.saturating_duration_since(Instant::now());
            timeout = Some(
                timeout
                    .map_or(left, |t| t.min(left))
                    .max(Duration::from_millis(1)),
            );
        }
        transport.set_recv_timeout(timeout)?;
        transport.send(request)?;
        let response = transport.recv()?;
        if response.opcode == op::ERROR {
            let error = WireError::decode(&response.payload)
                .ok_or(NetError::Protocol("undecodable error payload"))?;
            return Err(error.into_net_error());
        }
        if response.opcode != expect {
            return Err(NetError::Protocol(
                "response opcode does not match the request",
            ));
        }
        Ok(response)
    }
}

/// Counters describing what a [`FailoverClient`] did across its
/// endpoints — the CLI's `replication:` summary line is built from
/// these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailoverStats {
    /// Writes re-routed to a different endpoint (after a `NOT_PRIMARY`
    /// redirect or a dead primary).
    pub failovers: u64,
    /// `NOT_PRIMARY` redirects that carried the primary's address.
    pub redirects: u64,
    /// Successful reads answered per endpoint, indexed like the
    /// endpoint list passed at construction.
    pub reads_per_endpoint: Vec<u64>,
}

/// A multi-endpoint client for a replicated deployment: reads spread
/// round-robin across every reachable endpoint (each one a
/// [`RetryingClient`] that reconnects through the rotation on failure),
/// writes route to the endpoint currently believed to be the primary
/// and re-route on [`ErrorCode::NotPrimary`] — following the address in
/// the redirect when the replica knows it, advancing through the
/// rotation when it does not (or when the primary is simply dead).
///
/// With read-your-writes enabled, every read carries a generation floor
/// equal to the last acknowledged write, so a lagging replica either
/// waits until it has caught up to the client's own writes or sheds the
/// read to another endpoint.
pub struct FailoverClient {
    endpoints: Vec<SocketAddr>,
    read: RetryingClient,
    write: RetryingClient,
    /// Which endpoint the read connector dialed last (shared with the
    /// connector closure).
    last_read_endpoint: Arc<AtomicUsize>,
    /// Index of the endpoint writes currently route to (shared with the
    /// write connector closure).
    primary: Arc<AtomicUsize>,
    read_your_writes: bool,
    last_write_generation: u64,
    stats: FailoverStats,
}

impl FailoverClient {
    /// Builds a failover client over `endpoints` (at least one). Reads
    /// start round-robin from the first endpoint; writes assume
    /// `endpoints[0]` is the primary until a redirect teaches otherwise.
    pub fn connect(
        endpoints: Vec<SocketAddr>,
        policy: RetryPolicy,
        read_your_writes: bool,
    ) -> Self {
        assert!(!endpoints.is_empty(), "need at least one endpoint");
        let rr = Arc::new(AtomicUsize::new(0));
        let last_read_endpoint = Arc::new(AtomicUsize::new(0));
        let primary = Arc::new(AtomicUsize::new(0));
        let read = {
            let endpoints = endpoints.clone();
            let rr = Arc::clone(&rr);
            let last = Arc::clone(&last_read_endpoint);
            RetryingClient::new(
                move || {
                    // Try every endpoint once, starting at the rotation
                    // cursor; the first that answers wins the read.
                    let start = rr.fetch_add(1, Ordering::Relaxed);
                    let mut error = NetError::Closed;
                    for probe in 0..endpoints.len() {
                        let index = (start + probe) % endpoints.len();
                        match TcpTransport::connect(endpoints[index]) {
                            Ok(transport) => {
                                last.store(index, Ordering::Relaxed);
                                return Ok(Box::new(transport) as Box<dyn Transport + Send>);
                            }
                            Err(e) => error = e,
                        }
                    }
                    Err(error)
                },
                policy,
            )
        };
        let write = {
            let endpoints = endpoints.clone();
            let primary = Arc::clone(&primary);
            RetryingClient::new(
                move || {
                    let index = primary.load(Ordering::Relaxed) % endpoints.len();
                    let transport = TcpTransport::connect(endpoints[index])?;
                    Ok(Box::new(transport) as Box<dyn Transport + Send>)
                },
                // Writes and reads draw from distinct ID streams so the
                // two idempotency-key sequences never collide.
                RetryPolicy {
                    seed: policy.seed ^ 0xFA11_0E14_ED75_0B5E,
                    ..policy
                },
            )
        };
        let stats = FailoverStats {
            reads_per_endpoint: vec![0; endpoints.len()],
            ..FailoverStats::default()
        };
        Self {
            endpoints,
            read,
            write,
            last_read_endpoint,
            primary,
            read_your_writes,
            last_write_generation: 0,
            stats,
        }
    }

    /// The endpoint list this client rotates over.
    pub fn endpoints(&self) -> &[SocketAddr] {
        &self.endpoints
    }

    /// What this client has done so far, across both directions.
    pub fn stats(&self) -> &FailoverStats {
        &self.stats
    }

    /// Retry counters for the read and write sides.
    pub fn retry_stats(&self) -> (RetryStats, RetryStats) {
        (self.read.stats(), self.write.stats())
    }

    /// The generation of the last acknowledged write (0 before any).
    pub fn last_write_generation(&self) -> u64 {
        self.last_write_generation
    }

    /// The endpoint writes currently route to.
    pub fn primary_endpoint(&self) -> SocketAddr {
        self.endpoints[self.primary.load(Ordering::Relaxed) % self.endpoints.len()]
    }

    /// Counts embeddings on whichever endpoint answers, with default
    /// options (plus the read-your-writes floor when enabled).
    pub fn count(&mut self, pattern: &Pattern) -> Result<RemoteCount, NetError> {
        self.count_with(pattern, RemoteCountOptions::default())
    }

    /// Counts embeddings with explicit options. When read-your-writes is
    /// on and the caller set no explicit floor, the floor is the last
    /// acknowledged write's generation.
    pub fn count_with(
        &mut self,
        pattern: &Pattern,
        mut options: RemoteCountOptions,
    ) -> Result<RemoteCount, NetError> {
        if self.read_your_writes && options.min_generation == 0 {
            options.min_generation = self.last_write_generation;
        }
        let result = self.read.count_with(pattern, options);
        if result.is_ok() {
            let index = self.last_read_endpoint.load(Ordering::Relaxed) % self.endpoints.len();
            self.stats.reads_per_endpoint[index] += 1;
        }
        result
    }

    /// Commits one edge batch on the primary, following `NOT_PRIMARY`
    /// redirects and rotating past dead endpoints. Every routing attempt
    /// reuses one request ID, so a batch that actually committed before
    /// an ambiguous failure is answered from the ledger, not re-applied
    /// — on the *same* server; a failover to a server that never saw the
    /// ID commits it there (callers that cannot tolerate that must
    /// quiesce before promoting, as the smoke test does).
    pub fn update(
        &mut self,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
    ) -> Result<UpdateOk, NetError> {
        self.update_with(inserts, deletes, RemoteUpdateOptions::default())
    }

    /// Commits one edge batch with explicit options, with failover.
    pub fn update_with(
        &mut self,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
        mut options: RemoteUpdateOptions,
    ) -> Result<UpdateOk, NetError> {
        if options.request_id == 0 {
            options.request_id = self.write.next_request_id();
        }
        let mut last_error = NetError::Closed;
        // One routing attempt per endpoint, plus one for the redirect
        // target itself; the per-endpoint RetryingClient already
        // retried transient failures before each error reaches us.
        for _ in 0..=self.endpoints.len() {
            match self.write.update_with(inserts, deletes, options) {
                Ok(ok) => {
                    self.last_write_generation = ok.generation;
                    return Ok(ok);
                }
                Err(NetError::Remote {
                    code: ErrorCode::NotPrimary,
                    message,
                    ..
                }) => {
                    self.stats.failovers += 1;
                    self.follow_redirect(&message);
                    self.write.disconnect();
                    last_error = NetError::Remote {
                        code: ErrorCode::NotPrimary,
                        message,
                        retry_after_ms: None,
                    };
                }
                Err(error) if is_retryable(&error) => {
                    // The believed primary is unreachable or shedding;
                    // rotate to the next endpoint and try there.
                    self.stats.failovers += 1;
                    self.primary.fetch_add(1, Ordering::Relaxed);
                    self.write.disconnect();
                    last_error = error;
                }
                Err(error) => return Err(error),
            }
        }
        Err(last_error)
    }

    /// Drops the read connection so the next read dials the next
    /// endpoint in rotation. Reads are otherwise sticky — they reuse one
    /// connection until it fails — so callers that want to spread a
    /// query burst across replicas rotate explicitly between queries.
    pub fn rotate_reads(&mut self) {
        self.read.disconnect();
    }

    /// Probes every endpoint's health directly (no retries): the CLI's
    /// lag report. Unreachable endpoints yield `None`.
    pub fn health_all(&self) -> Vec<(SocketAddr, Option<HealthOk>)> {
        self.endpoints
            .iter()
            .map(|&addr| {
                let health = TcpTransport::connect(addr).ok().and_then(|mut transport| {
                    transport
                        .set_recv_timeout(Some(Duration::from_millis(500)))
                        .ok()?;
                    Client::new(transport).health().ok()
                });
                (addr, health)
            })
            .collect()
    }

    /// Points writes at the redirect target: the address named in a
    /// `NOT_PRIMARY` error when it is one of our endpoints, the next
    /// endpoint in rotation otherwise (empty redirects included — the
    /// replica may not know its primary yet).
    fn follow_redirect(&mut self, message: &str) {
        if let Ok(addr) = message.parse::<SocketAddr>() {
            if let Some(index) = self.endpoints.iter().position(|&e| e == addr) {
                self.stats.redirects += 1;
                self.primary.store(index, Ordering::Relaxed);
                return;
            }
        }
        self.primary.fetch_add(1, Ordering::Relaxed);
    }
}
