//! The GraphPi client library: a thin, synchronous request/response layer
//! over any [`Transport`].
//!
//! `Client` is what `graphpi-cli remote` and the network tests are built
//! on. Each method sends exactly one request frame and blocks for exactly
//! one response frame; a typed server error ([`op::ERROR`]) surfaces as
//! [`NetError::Remote`] with its [`ErrorCode`] intact, so callers can
//! distinguish "your deadline expired" from "your pattern is disconnected"
//! without string matching.

use super::protocol::{
    op, CountOk, CountRequest, ErrorCode, Frame, NetError, StatsOk, TcpTransport, Transport,
    WireError,
};
use graphpi_pattern::Pattern;
use std::net::ToSocketAddrs;
use std::time::Duration;

/// Per-query options for [`Client::count_with`] — the wire-level mirror of
/// the server-side execution flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteCountOptions {
    /// Disable Inclusion–Exclusion counting for this query.
    pub no_iep: bool,
    /// Execute against the hub-accelerated layout.
    pub hub_bitsets: bool,
    /// Deadline in milliseconds covering queueing + execution (0 = none).
    pub deadline_ms: u32,
}

/// A successful remote count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteCount {
    /// Number of embeddings found.
    pub count: u64,
    /// Server-side execution time (excludes queueing and network).
    pub elapsed: Duration,
}

/// A synchronous GraphPi protocol client over any [`Transport`].
#[derive(Debug)]
pub struct Client<T: Transport = TcpTransport> {
    transport: T,
}

impl Client<TcpTransport> {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(Self::new(TcpTransport::connect(addr)?))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps an existing transport.
    pub fn new(transport: T) -> Self {
        Self { transport }
    }

    /// Consumes the client, returning its transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Sends one request and receives its response, surfacing server
    /// [`op::ERROR`] frames as [`NetError::Remote`].
    fn roundtrip(&mut self, request: &Frame, expect: u8) -> Result<Frame, NetError> {
        self.transport.send(request)?;
        let response = loop {
            match self.transport.recv() {
                Ok(frame) => break frame,
                // Only surfaced when the caller configured a read timeout
                // on the transport; the query is still running, keep
                // waiting.
                Err(NetError::Idle) => continue,
                Err(error) => return Err(error),
            }
        };
        if response.opcode == op::ERROR {
            let error = WireError::decode(&response.payload)
                .ok_or(NetError::Protocol("undecodable error payload"))?;
            return Err(error.into_net_error());
        }
        if response.opcode != expect {
            return Err(NetError::Protocol(
                "response opcode does not match the request",
            ));
        }
        Ok(response)
    }

    /// Liveness probe: sends `PING`, expects the payload echoed back.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let payload = vec![0xA5, 0x5A, 0x42];
        let response = self.roundtrip(&Frame::new(op::PING, payload.clone()), op::PONG)?;
        if response.payload != payload {
            return Err(NetError::Protocol("pong payload was not echoed"));
        }
        Ok(())
    }

    /// Counts embeddings of `pattern` with default options.
    pub fn count(&mut self, pattern: &Pattern) -> Result<RemoteCount, NetError> {
        self.count_with(pattern, RemoteCountOptions::default())
    }

    /// Counts embeddings with explicit per-query options.
    pub fn count_with(
        &mut self,
        pattern: &Pattern,
        options: RemoteCountOptions,
    ) -> Result<RemoteCount, NetError> {
        let request = CountRequest {
            no_iep: options.no_iep,
            hub_bitsets: options.hub_bitsets,
            deadline_ms: options.deadline_ms,
            pattern: pattern.canonical_bytes(),
        };
        let response = self.roundtrip(&Frame::new(op::COUNT, request.encode()), op::COUNT_OK)?;
        let ok = CountOk::decode(&response.payload)
            .ok_or(NetError::Protocol("undecodable COUNT_OK payload"))?;
        Ok(RemoteCount {
            count: ok.count,
            elapsed: Duration::from_micros(ok.elapsed_micros),
        })
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsOk, NetError> {
        let response = self.roundtrip(&Frame::new(op::STATS, vec![]), op::STATS_OK)?;
        StatsOk::decode(&response.payload).ok_or(NetError::Protocol("undecodable STATS_OK payload"))
    }

    /// Asks the server to drain and exit. The server acknowledges, then
    /// closes this connection.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        self.roundtrip(&Frame::new(op::SHUTDOWN, vec![]), op::SHUTDOWN_OK)?;
        Ok(())
    }
}

/// Convenience: is this error the server saying "deadline exceeded"?
pub fn is_deadline_exceeded(error: &NetError) -> bool {
    matches!(
        error,
        NetError::Remote {
            code: ErrorCode::DeadlineExceeded,
            ..
        }
    )
}
