//! Deterministic fault injection for the serving stack.
//!
//! Two layers share one seeded fault model ([`ChaosConfig`]):
//!
//! - [`ChaosTransport`] wraps any byte stream and implements
//!   [`Transport`], injecting faults *between* the client and the frame
//!   codec: stalls, dropped requests, partial writes, lost replies, and
//!   connection resets. Tests use it in-process to drive the retry layer
//!   through every ambiguous-failure shape without a real flaky network.
//! - [`ChaosProxy`] is a standalone TCP proxy (the `graphpi-cli
//!   chaos-proxy` subcommand) applying byte-level faults between real
//!   sockets, for probing a live server from the outside.
//!
//! All randomness comes from an inline SplitMix64 generator seeded from
//! [`ChaosConfig::seed`], so a given seed reproduces the exact fault
//! schedule. Probabilities are expressed per mille (0..=1000) to keep
//! CLI flags and arithmetic exact.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::protocol::{read_frame, write_frame, Frame, NetError, Transport};

/// SplitMix64: tiny, statistically solid, and dependency-free. `rand` is
/// only a dev-dependency of this crate, and the fault schedule must be
/// reproducible from a single `u64` anyway.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound` > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// One per-mille Bernoulli trial.
    fn roll(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && self.next_below(1000) < u64::from(per_mille)
    }
}

/// The seeded fault model. All probabilities are per mille (0..=1000);
/// `Default` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosConfig {
    /// Root seed; every derived connection re-seeds deterministically.
    pub seed: u64,
    /// Probability an operation stalls for `stall_ms` first.
    pub stall_per_mille: u32,
    /// Injected stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability an outgoing frame is silently dropped (the peer never
    /// sees it; the connection then reads as closed).
    pub drop_request_per_mille: u32,
    /// Probability an outgoing frame is cut mid-write and the connection
    /// reset — the peer sees a truncated frame.
    pub partial_write_per_mille: u32,
    /// Probability an incoming frame is consumed and discarded — the
    /// peer's reply is lost *after* it did the work (the ambiguous
    /// failure that makes request IDs necessary).
    pub drop_reply_per_mille: u32,
    /// Probability the connection resets outright before an operation.
    pub reset_per_mille: u32,
}

impl ChaosConfig {
    /// A light preset: ~5% stalls of 2 ms, ~2% of each failure mode.
    /// Aggressive enough to exercise every retry path over ~50 queries,
    /// gentle enough that bounded retries always converge.
    pub fn gentle(seed: u64) -> Self {
        Self {
            seed,
            stall_per_mille: 50,
            stall_ms: 2,
            drop_request_per_mille: 20,
            partial_write_per_mille: 20,
            drop_reply_per_mille: 20,
            reset_per_mille: 20,
        }
    }

    /// The per-connection seed for connection number `index`. Mixing
    /// through SplitMix64 keeps schedules independent across reconnects
    /// while the whole run stays a pure function of the root seed.
    pub fn connection_seed(&self, index: u64) -> u64 {
        SplitMix64::new(self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
    }
}

/// Counts of injected faults, for assertions that a chaos run actually
/// exercised the paths it claims to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Stalls injected.
    pub stalls: u64,
    /// Outgoing frames dropped.
    pub requests_dropped: u64,
    /// Outgoing frames truncated mid-write.
    pub partial_writes: u64,
    /// Incoming frames consumed and discarded.
    pub replies_dropped: u64,
    /// Outright connection resets.
    pub resets: u64,
}

impl ChaosStats {
    /// Total faults injected (stalls excluded — they don't kill the
    /// connection).
    pub fn total_failures(&self) -> u64 {
        self.requests_dropped + self.partial_writes + self.replies_dropped + self.resets
    }
}

/// Streams whose blocking reads can be bounded. [`ChaosTransport`]
/// forwards [`Transport::set_recv_timeout`] through this, so the retry
/// layer's per-attempt deadlines survive the chaos wrapper.
pub trait TimeoutStream {
    /// Applies a read timeout (`None` = block forever).
    fn apply_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl TimeoutStream for TcpStream {
    fn apply_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// A [`Transport`] that injects seeded faults around a wrapped byte
/// stream. Once a fault kills the connection, every later call returns
/// [`NetError::Closed`] — exactly what a real dead socket looks like to
/// the retry layer, which must reconnect with a fresh transport. (The
/// stream itself is retained until drop, so tests can inspect what
/// actually went over the wire.)
pub struct ChaosTransport<S> {
    stream: S,
    dead: bool,
    rng: SplitMix64,
    config: ChaosConfig,
    stats: ChaosStats,
}

impl<S> ChaosTransport<S> {
    /// Wraps `stream` with the fault model in `config`, seeded by
    /// `seed` (use [`ChaosConfig::connection_seed`] so reconnects get
    /// independent schedules).
    pub fn new(stream: S, config: ChaosConfig, seed: u64) -> Self {
        Self {
            stream,
            dead: false,
            rng: SplitMix64::new(seed),
            config,
            stats: ChaosStats::default(),
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    fn maybe_stall(&mut self) {
        if self.rng.roll(self.config.stall_per_mille) {
            self.stats.stalls += 1;
            std::thread::sleep(Duration::from_millis(self.config.stall_ms));
        }
    }
}

impl<S: Read + Write + TimeoutStream> Transport for ChaosTransport<S> {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        if self.dead {
            return Err(NetError::Closed);
        }
        self.maybe_stall();
        if self.rng.roll(self.config.reset_per_mille) {
            self.stats.resets += 1;
            self.dead = true;
            return Err(NetError::Closed);
        }
        if self.rng.roll(self.config.drop_request_per_mille) {
            // The frame vanishes; the connection is dead but the caller
            // only learns that when it tries to read the reply.
            self.stats.requests_dropped += 1;
            self.dead = true;
            return Ok(());
        }
        if self.rng.roll(self.config.partial_write_per_mille) {
            self.stats.partial_writes += 1;
            let bytes = frame.encode();
            let cut = 1 + self.rng.next_below(bytes.len() as u64 - 1) as usize;
            let _ = self.stream.write_all(&bytes[..cut]);
            let _ = self.stream.flush();
            self.dead = true;
            return Err(NetError::Closed);
        }
        write_frame(&mut self.stream, frame)
    }

    fn recv(&mut self) -> Result<Frame, NetError> {
        if self.dead {
            return Err(NetError::Closed);
        }
        self.maybe_stall();
        if self.rng.roll(self.config.drop_reply_per_mille) {
            // Consume the peer's reply so the work really happened, then
            // lose it — the caller cannot tell this from a crash.
            self.stats.replies_dropped += 1;
            let _ = read_frame(&mut self.stream);
            self.dead = true;
            return Err(NetError::Closed);
        }
        read_frame(&mut self.stream)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.apply_read_timeout(timeout)?;
        Ok(())
    }
}

/// A factory handing out [`ChaosTransport`]s over fresh TCP connections,
/// with per-connection seeds derived from one shared counter — the whole
/// reconnect sequence is reproducible from `config.seed`.
#[derive(Debug, Clone)]
pub struct ChaosConnector {
    addr: SocketAddr,
    config: ChaosConfig,
    connections: Arc<AtomicU64>,
}

impl ChaosConnector {
    /// Builds a connector dialing `addr` under `config`'s fault model.
    pub fn new(addr: SocketAddr, config: ChaosConfig) -> Self {
        Self {
            addr,
            config,
            connections: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Dials a fresh connection wrapped in a newly-seeded
    /// [`ChaosTransport`].
    pub fn connect(&self) -> Result<ChaosTransport<TcpStream>, NetError> {
        let index = self.connections.fetch_add(1, Ordering::Relaxed);
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        Ok(ChaosTransport::new(
            stream,
            self.config,
            self.config.connection_seed(index),
        ))
    }

    /// Connections dialed so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

/// Byte-level chaos proxy: accepts downstream clients, dials the
/// upstream server once per client, and pumps bytes both ways while
/// injecting stalls, truncations, and resets from the same seeded model.
/// This is what `graphpi-cli chaos-proxy` runs.
pub struct ChaosProxy {
    listener: TcpListener,
    upstream: SocketAddr,
    config: ChaosConfig,
}

impl ChaosProxy {
    /// Binds the downstream listener.
    pub fn bind(listen: &str, upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(listen)?,
            upstream,
            config,
        })
    }

    /// The bound downstream address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and proxies connections forever (until the process dies —
    /// the chaos proxy is itself expendable infrastructure).
    pub fn run(self) -> std::io::Result<()> {
        let mut next_conn = 0u64;
        for downstream in self.listener.incoming() {
            let downstream = match downstream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let seed = self.config.connection_seed(next_conn);
            next_conn += 1;
            let upstream_addr = self.upstream;
            let config = self.config;
            std::thread::spawn(move || {
                let Ok(upstream) = TcpStream::connect(upstream_addr) else {
                    return;
                };
                let _ = downstream.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                pump_both(downstream, upstream, config, seed);
            });
        }
        Ok(())
    }
}

/// Pumps bytes between the two sockets on two threads until either side
/// closes or a fault resets the pair.
fn pump_both(downstream: TcpStream, upstream: TcpStream, config: ChaosConfig, seed: u64) {
    let down_clone = match downstream.try_clone() {
        Ok(stream) => stream,
        Err(_) => return,
    };
    let up_clone = match upstream.try_clone() {
        Ok(stream) => stream,
        Err(_) => return,
    };
    let mut fwd_rng = SplitMix64::new(seed);
    let mut rev_rng = SplitMix64::new(seed ^ 0x5DEE_CE66_D0FF_BEEF);
    let forward = std::thread::spawn(move || pump(downstream, up_clone, config, &mut fwd_rng));
    pump(upstream, down_clone, config, &mut rev_rng);
    let _ = forward.join();
}

/// One direction of the proxy: read a chunk, maybe mangle it, write it
/// on. A truncation or reset shuts down both sockets (the clones share
/// the underlying descriptors), so the client sees a clean connection
/// failure and retries.
fn pump(mut from: TcpStream, mut to: TcpStream, config: ChaosConfig, rng: &mut SplitMix64) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if rng.roll(config.stall_per_mille) {
            std::thread::sleep(Duration::from_millis(config.stall_ms));
        }
        if rng.roll(config.reset_per_mille) {
            break;
        }
        let chunk = if rng.roll(config.partial_write_per_mille) && n > 1 {
            &buf[..1 + rng.next_below(n as u64 - 1) as usize]
        } else {
            &buf[..n]
        };
        if to.write_all(chunk).is_err() || chunk.len() < n {
            break;
        }
    }
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory duplex stream: reads drain `input`, writes append to
    /// `output`.
    struct Loopback {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl TimeoutStream for Loopback {
        fn apply_read_timeout(&mut self, _timeout: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let run: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(run, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert!(run.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(43);
        assert_ne!(run[0], c.next_u64());
    }

    #[test]
    fn clean_config_passes_frames_through() {
        let reply = Frame::new(super::super::protocol::op::PONG, vec![]);
        let stream = Loopback {
            input: Cursor::new(reply.encode()),
            output: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(stream, ChaosConfig::default(), 7);
        let ping = Frame::new(super::super::protocol::op::PING, vec![]);
        chaos.send(&ping).unwrap();
        assert_eq!(chaos.recv().unwrap(), reply);
        assert_eq!(chaos.stats(), ChaosStats::default());
        assert_eq!(chaos.get_ref().output, ping.encode());
    }

    #[test]
    fn faults_fire_deterministically_and_kill_the_connection() {
        let config = ChaosConfig {
            seed: 1,
            reset_per_mille: 1000,
            ..ChaosConfig::default()
        };
        let stream = Loopback {
            input: Cursor::new(Vec::new()),
            output: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(stream, config, config.connection_seed(0));
        let ping = Frame::new(super::super::protocol::op::PING, vec![]);
        assert!(matches!(chaos.send(&ping), Err(NetError::Closed)));
        assert_eq!(chaos.stats().resets, 1);
        // Dead forever after.
        assert!(matches!(chaos.recv(), Err(NetError::Closed)));
        assert!(matches!(chaos.send(&ping), Err(NetError::Closed)));
        assert_eq!(chaos.stats().resets, 1, "no double-counting after death");
    }

    #[test]
    fn partial_write_emits_a_truncated_frame() {
        let config = ChaosConfig {
            seed: 9,
            partial_write_per_mille: 1000,
            ..ChaosConfig::default()
        };
        let stream = Loopback {
            input: Cursor::new(Vec::new()),
            output: Vec::new(),
        };
        let mut chaos = ChaosTransport::new(stream, config, 9);
        let frame = Frame::new(super::super::protocol::op::COUNT, vec![0xAB; 64]);
        assert!(matches!(chaos.send(&frame), Err(NetError::Closed)));
        let written = &chaos.get_ref().output;
        assert!(!written.is_empty() && written.len() < frame.encode().len());
        assert_eq!(written[..], frame.encode()[..written.len()]);
        assert_eq!(chaos.stats().partial_writes, 1);
    }
}
