//! The replica side of WAL-shipping replication: a reconnecting apply
//! loop that subscribes to a primary, reassembles the shipped byte
//! stream into checksummed WAL records, and commits them through its own
//! [`DynamicEngine`] — so a durable replica re-logs everything it
//! applies and is itself crash-safe.
//!
//! The loop is deliberately dumb about transport failures: any torn
//! frame, dropped connection, or unexpected opcode throws away the
//! partial parser state and resubscribes from the replica's own applied
//! generation. The primary's cursor resolution (and, end to end, the
//! per-record checksums) make that safe: records already applied are
//! skipped by generation, records not yet applied are re-shipped, and a
//! cursor that fell behind the primary's checkpoint horizon triggers a
//! full checkpoint bootstrap instead of a gap.
//!
//! Promotion ([`ReplState::request_promote`], via `graphpi-cli promote`
//! or `SIGUSR1`) is observed between frames: the loop seals the stream
//! (drops the subscription), flips the shared role through
//! `Promoting` to `Primary`, and returns. From that moment the serving
//! loop accepts `UPDATE`s and answers `REPL_SUBSCRIBE` itself.

use super::protocol::{
    op, Frame, NetError, ReplAck, ReplBatch, ReplPayload, ReplRole, ReplSubscribe, TcpTransport,
    Transport, WireError,
};
use super::server::ReplState;
use crate::dynamic::DynamicEngine;
use graphpi_graph::delta::DeltaError;
use graphpi_graph::io;
use graphpi_graph::wal::{DurableError, RecordStreamParser, WalRecord};
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How long the loop sleeps before redialing a dead primary.
const RECONNECT_PAUSE: Duration = Duration::from_millis(200);

/// Receive poll granularity: how often stop/promote flags are observed
/// while the stream is quiet.
const RECV_POLL: Duration = Duration::from_millis(100);

/// What one [`run_replication`] call did before it returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaReport {
    /// Replicated batches committed through the local engine.
    pub batches_applied: u64,
    /// Checkpoint bootstraps installed.
    pub checkpoints_installed: u64,
    /// Times the subscription was (re)dialed after the first.
    pub reconnects: u64,
    /// Whether the loop exited by promotion (false = the stop flag).
    pub promoted: bool,
}

/// What the inner streaming loop asks the outer loop to do next.
enum StreamExit {
    /// Reconnect and resubscribe (transport died, stream error, gap).
    Resubscribe,
    /// Stop or promotion was requested; unwind.
    Done,
}

/// Follows `primary_addr` until `stop` is set or a promotion is
/// requested, applying the replicated stream through `engine` and
/// reporting progress via `repl` (the same [`ReplState`] the serving
/// loop reads for `HEALTH`/`STATS` and `NOT_PRIMARY` answers).
///
/// Returns the final tally; on promotion the shared role is `Primary`
/// when this returns, and the caller's serving loop needs no restart —
/// role checks happen per request.
pub fn run_replication(
    primary_addr: impl ToSocketAddrs + Clone,
    engine: &DynamicEngine,
    repl: &ReplState,
    stop: &AtomicBool,
) -> ReplicaReport {
    let mut report = ReplicaReport::default();
    let mut first = true;
    loop {
        if stop.load(Ordering::Acquire) {
            return report;
        }
        if repl.promote_requested() {
            promote(repl, &mut report);
            return report;
        }
        if !first {
            std::thread::sleep(RECONNECT_PAUSE);
            if stop.load(Ordering::Acquire) {
                return report;
            }
            report.reconnects += 1;
        }
        first = false;
        let mut transport = match TcpTransport::connect(primary_addr.clone()) {
            Ok(transport) => transport,
            Err(_) => continue,
        };
        if transport.set_recv_timeout(Some(RECV_POLL)).is_err() {
            continue;
        }
        let subscribe = ReplSubscribe {
            generation: engine.generation(),
            offset: 0,
        };
        if transport
            .send(&Frame::new(op::REPL_SUBSCRIBE, subscribe.encode()))
            .is_err()
        {
            continue;
        }
        match stream(&mut transport, engine, repl, stop, &mut report) {
            StreamExit::Resubscribe => continue,
            StreamExit::Done => {
                if repl.promote_requested() {
                    // Seal first (the connection is dropped with the
                    // transport), then flip the role.
                    drop(transport);
                    promote(repl, &mut report);
                }
                return report;
            }
        }
    }
}

/// Replica → Promoting → Primary. Continuity needs no extra check here:
/// every replicated batch was committed via
/// [`DynamicEngine::apply_replicated`], which refuses generation gaps,
/// so the local generation *is* the last contiguously applied one.
fn promote(repl: &ReplState, report: &mut ReplicaReport) {
    repl.set_role(ReplRole::Promoting);
    repl.set_role(ReplRole::Primary);
    report.promoted = true;
}

/// Consumes one subscription until it ends. `REPL_BATCH` frames strictly
/// alternate with our `REPL_ACK`s; the ack always reports the engine's
/// own applied generation, which is what the primary uses both for lag
/// accounting and for cursor recovery after a WAL reset.
fn stream(
    transport: &mut TcpTransport,
    engine: &DynamicEngine,
    repl: &ReplState,
    stop: &AtomicBool,
    report: &mut ReplicaReport,
) -> StreamExit {
    let mut parser = RecordStreamParser::default();
    // Checkpoint bootstrap staging: the file bytes received so far.
    let mut staging: Option<Vec<u8>> = None;
    loop {
        if stop.load(Ordering::Acquire) || repl.promote_requested() {
            return StreamExit::Done;
        }
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(NetError::Idle) => continue,
            Err(_) => return StreamExit::Resubscribe,
        };
        if frame.opcode == op::ERROR {
            // Typed refusals (draining primary, NOT_PRIMARY from a peer
            // that is itself a replica, admission trouble) all resolve
            // the same way from here: back off and resubscribe.
            let _ = WireError::decode(&frame.payload);
            return StreamExit::Resubscribe;
        }
        if frame.opcode != op::REPL_BATCH {
            return StreamExit::Resubscribe;
        }
        let Some(batch) = ReplBatch::decode(&frame.payload) else {
            return StreamExit::Resubscribe;
        };
        repl.note_primary_generation(batch.primary_generation);
        match batch.payload {
            ReplPayload::Records => {
                staging = None;
                parser.push(&batch.bytes);
                loop {
                    match parser.next_record() {
                        Ok(Some((WalRecord::Batch { generation, batch }, _))) => {
                            // Overlap after a resubscribe: already applied.
                            if generation <= engine.generation() {
                                continue;
                            }
                            match engine.apply_replicated(generation, &batch) {
                                Ok(_) => report.batches_applied += 1,
                                // A gap means this cursor skipped records
                                // (e.g. the primary reset under us);
                                // resubscribing re-resolves it safely.
                                Err(DurableError::Delta(DeltaError::GenerationGap { .. })) => {
                                    return StreamExit::Resubscribe
                                }
                                Err(_) => return StreamExit::Resubscribe,
                            }
                        }
                        // Checkpoint markers delimit the shipped log's
                        // base; the graph state arrives via the
                        // Checkpoint payload path, not here.
                        Ok(Some((WalRecord::Checkpoint { .. }, _))) => continue,
                        Ok(None) => break,
                        // Checksummed stream corruption: start over.
                        Err(_) => {
                            parser.clear();
                            return StreamExit::Resubscribe;
                        }
                    }
                }
                if send_ack(transport, engine, batch.next_offset).is_err() {
                    return StreamExit::Resubscribe;
                }
            }
            ReplPayload::Checkpoint { done } => {
                parser.clear();
                let start = batch.next_offset.saturating_sub(batch.bytes.len() as u64);
                // The primary restarts a bootstrap from offset zero when
                // a newer checkpoint lands mid-stream.
                if start == 0 && !done {
                    staging = Some(Vec::new());
                }
                let Some(buffer) = staging.as_mut() else {
                    return StreamExit::Resubscribe;
                };
                if buffer.len() as u64 != start {
                    return StreamExit::Resubscribe;
                }
                buffer.extend_from_slice(&batch.bytes);
                if done {
                    let bytes = staging.take().expect("staging checked above");
                    if install_bootstrap(engine, &bytes, batch.generation).is_err() {
                        return StreamExit::Resubscribe;
                    }
                    report.checkpoints_installed += 1;
                }
                if send_ack(transport, engine, batch.next_offset).is_err() {
                    return StreamExit::Resubscribe;
                }
            }
        }
    }
}

/// Acks the batch ending at `offset` with the engine's applied
/// generation.
fn send_ack(
    transport: &mut TcpTransport,
    engine: &DynamicEngine,
    offset: u64,
) -> Result<(), NetError> {
    let ack = ReplAck {
        generation: engine.generation(),
        offset,
    };
    transport.send(&Frame::new(op::REPL_ACK, ack.encode()))
}

/// Parses and installs a completed checkpoint bootstrap. The bytes are
/// staged to a sibling file of the replica's WAL (falling back to the
/// system temp dir for volatile replicas) because the graph codec reads
/// from paths; the staging file is removed either way.
fn install_bootstrap(
    engine: &DynamicEngine,
    bytes: &[u8],
    generation: u64,
) -> Result<(), NetError> {
    let staging_path: PathBuf = engine
        .wal_path()
        .map(|path| {
            let mut name = path.as_os_str().to_os_string();
            name.push(".bootstrap");
            PathBuf::from(name)
        })
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("graphpi-bootstrap-{}", std::process::id()))
        });
    let result = (|| {
        std::fs::write(&staging_path, bytes).map_err(NetError::Io)?;
        let base = io::load_binary(&staging_path)
            .map_err(|_| NetError::Protocol("bootstrap bytes are not a valid graph"))?;
        engine
            .install_checkpoint(base, generation)
            .map_err(|_| NetError::Protocol("bootstrap install failed"))?;
        Ok(())
    })();
    let _ = std::fs::remove_file(&staging_path);
    result
}
