//! Configurations and compiled execution plans.
//!
//! A *configuration* (Section IV-C) is the combination of a schedule and a
//! restriction set for a pattern. The matching engine does not interpret a
//! configuration directly: it is first *compiled* into an [`ExecutionPlan`],
//! which resolves, for every loop position,
//!
//! * which earlier loops provide the neighborhoods to intersect (the
//!   *parents*),
//! * which restrictions become checkable at that loop and in which
//!   direction they bound the candidate (break-above vs. skip-below), and
//! * whether the loop belongs to the independent suffix usable by IEP.
//!
//! This mirrors the role of AutoMine-style code generation in the paper; the
//! plan is the in-memory equivalent of the generated nested-loop program and
//! [`crate::codegen`] can render it back to source text.

use crate::schedule::Schedule;
use graphpi_pattern::pattern::{Pattern, PatternVertex};
use graphpi_pattern::restriction::RestrictionSet;

/// Hard cap on the number of loops a compiled plan can have (one loop per
/// pattern vertex; the planner rejects larger patterns — see
/// [`crate::engine::MAX_PATTERN_VERTICES`]).
///
/// The execution hot path relies on this bound to keep per-task state on
/// the stack: the parallel executor's prefix tasks are inline
/// `[VertexId; MAX_LOOPS]` arrays and the matching kernel's parent lists
/// are fixed-size arrays, so the worker loop performs no per-task heap
/// allocation.
pub const MAX_LOOPS: usize = 8;

/// Options for the long-lived serving path: the persistent
/// [`crate::exec::pool::WorkerPool`] and the compiled-plan cache behind a
/// [`crate::engine::Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOptions {
    /// Number of persistent worker threads (0 = all available cores). Fixed
    /// at pool construction; per-call thread overrides are ignored by the
    /// pool.
    pub threads: usize,
    /// Capacity of the compiled-plan LRU cache, in plans. A capacity of 0
    /// disables caching (every query re-plans).
    pub cache_capacity: usize,
    /// Maximum number of jobs the pool keeps in flight simultaneously
    /// (0 = automatic: `max(threads, 2)`). Submitting threads beyond the
    /// limit block until a running job completes — that blocking is the
    /// pool's backpressure, bounding queue memory and scheduling overhead
    /// under unbounded client fan-in.
    pub max_in_flight: usize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_capacity: 64,
            max_in_flight: 0,
        }
    }
}

/// Options for the network serving layer ([`crate::net::server::Server`]):
/// the session resources plus the server's own limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker pool + plan cache configuration for the served session.
    pub pool: PoolOptions,
    /// Maximum simultaneously connected clients (0 = unlimited). Excess
    /// connections are answered with a typed `TooManyConnections` error
    /// and closed.
    pub max_connections: usize,
    /// Per-connection read timeout: the poll granularity at which idle
    /// connection handlers notice a drain. Also the stall bound — a peer
    /// that goes quiet *mid-frame* for longer than this is cut off
    /// (anti-slowloris), while a peer idle *between* frames just keeps
    /// the connection open.
    pub read_timeout: std::time::Duration,
    /// Where to persist the plan cache's keys at shutdown and warm-start
    /// from at boot (`None` = no persistence). See [`crate::persist`].
    pub persist_path: Option<std::path::PathBuf>,
    /// Admission wait-queue bound: queries beyond it are shed with a
    /// typed `RetryLater` + retry-after hint instead of queueing
    /// unboundedly (0 = auto: `max(16, 4 × max_in_flight)`).
    pub max_queue_depth: usize,
    /// Re-snapshot the plan cache to `persist_path` this often while
    /// serving, so a hard crash (`kill -9`) loses at most one interval
    /// of cache warmth (`None` = only the shutdown snapshot). Ignored
    /// without a `persist_path`.
    pub snapshot_interval: Option<std::time::Duration>,
    /// Checkpoint the WAL and compact the delta overlay this often on a
    /// dedicated maintenance thread, keeping both off the committing
    /// thread (`None` = only the size-triggered inline checkpoint).
    /// Ignored unless the server serves a durable dynamic engine.
    pub checkpoint_interval: Option<std::time::Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            pool: PoolOptions::default(),
            max_connections: 64,
            read_timeout: std::time::Duration::from_millis(50),
            persist_path: None,
            max_queue_depth: 0,
            snapshot_interval: None,
            checkpoint_interval: None,
        }
    }
}

/// A schedule paired with a restriction set for a specific pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// The pattern this configuration searches for.
    pub pattern: Pattern,
    /// The vertex search order.
    pub schedule: Schedule,
    /// The symmetry-breaking restrictions (over pattern vertex indices).
    pub restrictions: RestrictionSet,
}

impl Configuration {
    /// Bundles a pattern, schedule and restriction set.
    pub fn new(pattern: Pattern, schedule: Schedule, restrictions: RestrictionSet) -> Self {
        assert_eq!(
            pattern.num_vertices(),
            schedule.len(),
            "schedule size must match pattern size"
        );
        Self {
            pattern,
            schedule,
            restrictions,
        }
    }

    /// Compiles the configuration into an executable plan.
    pub fn compile(&self) -> ExecutionPlan {
        ExecutionPlan::compile(self)
    }

    /// Compiles the configuration, optionally disabling IEP counting.
    ///
    /// IEP only makes sense when the job reduces to a single number:
    /// execution modes that must *visit* every embedding (enumeration,
    /// per-vertex counts, sampling the match stream) need a plan whose
    /// loops run to full depth. With `enable_iep = false` the compiled plan
    /// carries an empty independent suffix and a no-op correction, so every
    /// executor treats it as a plain enumerate-everything program.
    pub fn compile_with_iep(&self, enable_iep: bool) -> ExecutionPlan {
        let mut plan = ExecutionPlan::compile(self);
        if !enable_iep {
            plan.iep_suffix_len = 0;
            plan.iep_correction = IepCorrection::DividePrefixRestricted { divisor: 1 };
        }
        plan
    }
}

/// A restriction bound that applies at a given loop.
///
/// Restrictions compare data-graph ids of two pattern vertices; the engine
/// enforces each restriction at the loop of whichever endpoint is scheduled
/// later, at which point the other endpoint's id is already fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopBound {
    /// The candidate must be **smaller** than the value bound at the given
    /// earlier loop position (`id(earlier) > id(current)`). Because
    /// candidate sets are sorted ascending, the loop can `break` as soon as
    /// a candidate reaches the bound — this is the `if id(vA) <= id(vB)
    /// break` statement in the paper's generated code.
    LessThanValueAt(usize),
    /// The candidate must be **greater** than the value bound at the given
    /// earlier loop position (`id(current) > id(earlier)`); smaller
    /// candidates are skipped.
    GreaterThanValueAt(usize),
}

/// Per-loop compiled information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopPlan {
    /// The pattern vertex bound by this loop.
    pub pattern_vertex: PatternVertex,
    /// Loop positions (all `<` this loop's position) whose bound vertices'
    /// neighborhoods are intersected to form this loop's candidate set.
    /// Empty only for the first loop, which iterates over all data vertices.
    pub parents: Vec<usize>,
    /// Restriction bounds enforced while iterating this loop.
    pub bounds: Vec<LoopBound>,
}

/// How IEP counting corrects for the restrictions it drops (Section IV-D).
///
/// Replacing the innermost `k` loops with an inclusion–exclusion computation
/// discards every restriction enforced in those loops, so the grand total
/// over-counts each distinct subgraph by the number of its automorphic
/// embeddings that satisfy the *remaining* (outer-loop) restrictions. The
/// paper divides by that factor. The division is exact only when the factor
/// is the same for every subgraph; the compiler verifies this by enumerating
/// all relative orders of the pattern vertices' ids. When the multiplicity
/// is not uniform (which never happens for the configurations GraphPi's own
/// generator produces, but can for hand-built ones), the engine falls back
/// to running IEP with **no** restrictions at all and dividing by the full
/// automorphism count, which is always exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IepCorrection {
    /// Keep the outer-loop restrictions and divide the IEP total by this
    /// uniform per-subgraph multiplicity.
    DividePrefixRestricted {
        /// The uniform multiplicity (≥ 1).
        divisor: u64,
    },
    /// Drop every restriction for the IEP run and divide by `|Aut|`.
    DivideUnrestricted {
        /// The pattern's automorphism count.
        divisor: u64,
    },
}

impl IepCorrection {
    /// The divisor applied to the IEP grand total.
    pub fn divisor(&self) -> u64 {
        match *self {
            IepCorrection::DividePrefixRestricted { divisor } => divisor,
            IepCorrection::DivideUnrestricted { divisor } => divisor,
        }
    }
}

/// A fully resolved nested-loop program for one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionPlan {
    /// The source configuration.
    pub config: Configuration,
    /// One entry per loop, outermost first.
    pub loops: Vec<LoopPlan>,
    /// Length of the trailing run of loops whose pattern vertices are
    /// pairwise non-adjacent — the `k` usable by IEP counting for this plan.
    pub iep_suffix_len: usize,
    /// How IEP counting must correct for the restrictions it drops.
    pub iep_correction: IepCorrection,
}

impl ExecutionPlan {
    fn compile(config: &Configuration) -> ExecutionPlan {
        let pattern = &config.pattern;
        let order = config.schedule.order();
        let n = order.len();
        assert!(
            n <= MAX_LOOPS,
            "plans are limited to {MAX_LOOPS} loops (got {n})"
        );

        let mut loops = Vec::with_capacity(n);
        for i in 0..n {
            let v = order[i];
            let parents: Vec<usize> = (0..i).filter(|&j| pattern.has_edge(order[j], v)).collect();
            let mut bounds = Vec::new();
            for r in config.restrictions.restrictions() {
                let pg = config.schedule.position_of(r.greater);
                let ps = config.schedule.position_of(r.smaller);
                let enforced_at = pg.max(ps);
                if enforced_at != i {
                    continue;
                }
                if ps == i {
                    // current must be smaller than the earlier `greater`.
                    bounds.push(LoopBound::LessThanValueAt(pg));
                } else {
                    // current must be greater than the earlier `smaller`.
                    bounds.push(LoopBound::GreaterThanValueAt(ps));
                }
            }
            loops.push(LoopPlan {
                pattern_vertex: v,
                parents,
                bounds,
            });
        }

        let iep_suffix_len = config.schedule.independent_suffix_len(pattern);
        let iep_correction = iep_correction(config, iep_suffix_len);

        ExecutionPlan {
            config: config.clone(),
            loops,
            iep_suffix_len,
            iep_correction,
        }
    }

    /// Number of loops (= pattern vertices).
    pub fn num_loops(&self) -> usize {
        self.loops.len()
    }
}

/// Determines the IEP over-counting correction for this configuration
/// (Section IV-D).
///
/// The restrictions that remain after dropping the innermost `k` loops are
/// those whose endpoints both lie in the outer `n - k` scheduled vertices.
/// For each possible relative order `π` of the data ids assigned to the
/// pattern vertices, the per-subgraph multiplicity is the number of
/// automorphisms `σ` for which `π ∘ σ` satisfies the remaining restrictions.
/// If that multiplicity is the same for every `π`, dividing the IEP total by
/// it is exact; otherwise the safe fallback drops all restrictions.
fn iep_correction(config: &Configuration, k: usize) -> IepCorrection {
    use graphpi_pattern::automorphism::automorphism_group;

    let order = config.schedule.order();
    let n = order.len();
    let outer: Vec<PatternVertex> = order[..n - k].to_vec();
    let remaining = config.restrictions.restricted_to(&outer);
    let auts = automorphism_group(&config.pattern);
    let aut_count = auts.len() as u64;

    if remaining.is_empty() {
        // No restrictions survive: every automorphic copy is counted.
        return IepCorrection::DividePrefixRestricted { divisor: aut_count };
    }

    // Enumerate every relative order of the pattern vertices' ids and count,
    // for each, how many automorphic re-labelings satisfy the remaining
    // restrictions. Patterns are tiny, so n! * |Aut| stays small.
    let mut orders: Vec<Vec<u64>> = Vec::new();
    let mut current: Vec<u64> = (0..n as u64).collect();
    permutations_into(&mut current, n, &mut orders);

    let mut multiplicity: Option<u64> = None;
    for ids in &orders {
        let m = auts
            .iter()
            .filter(|sigma| {
                remaining
                    .restrictions()
                    .iter()
                    .all(|r| ids[sigma.apply(r.greater)] > ids[sigma.apply(r.smaller)])
            })
            .count() as u64;
        match multiplicity {
            None => multiplicity = Some(m),
            Some(prev) if prev != m => {
                return IepCorrection::DivideUnrestricted { divisor: aut_count };
            }
            _ => {}
        }
    }
    IepCorrection::DividePrefixRestricted {
        divisor: multiplicity.unwrap_or(aut_count).max(1),
    }
}

fn permutations_into(current: &mut Vec<u64>, k: usize, out: &mut Vec<Vec<u64>>) {
    if k <= 1 {
        out.push(current.clone());
        return;
    }
    for i in 0..k {
        permutations_into(current, k - 1, out);
        if k % 2 == 0 {
            current.swap(i, k - 1);
        } else {
            current.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::RestrictionSet;

    /// The paper's House configuration: schedule A,B,C,D,E with the single
    /// restriction id(A) > id(B).
    fn paper_house_config() -> Configuration {
        let pattern = prefab::house();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
        let restrictions = RestrictionSet::from_pairs(&[(0, 1)]);
        Configuration::new(pattern, schedule, restrictions)
    }

    #[test]
    fn house_plan_matches_figure_5() {
        let plan = paper_house_config().compile();
        assert_eq!(plan.num_loops(), 5);
        // Loop 0 (A): no parents, no bounds.
        assert!(plan.loops[0].parents.is_empty());
        assert!(plan.loops[0].bounds.is_empty());
        // Loop 1 (B): parent A, and the id(A) > id(B) restriction becomes a
        // break-above bound referencing loop 0.
        assert_eq!(plan.loops[1].parents, vec![0]);
        assert_eq!(plan.loops[1].bounds, vec![LoopBound::LessThanValueAt(0)]);
        // Loop 2 (C): parent A only.
        assert_eq!(plan.loops[2].parents, vec![0]);
        // Loop 3 (D): parents B and C.
        assert_eq!(plan.loops[3].parents, vec![1, 2]);
        // Loop 4 (E): parents A and B.
        assert_eq!(plan.loops[4].parents, vec![0, 1]);
        // D and E are the independent suffix (k = 2).
        assert_eq!(plan.iep_suffix_len, 2);
        // Dropping the restriction-free suffix keeps id(A) > id(B), which
        // eliminates the single non-identity automorphism: divisor 1.
        assert_eq!(
            plan.iep_correction,
            IepCorrection::DividePrefixRestricted { divisor: 1 }
        );
    }

    #[test]
    fn reversed_restriction_becomes_lower_bound() {
        let pattern = prefab::house();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
        // id(B) > id(A): enforced at B's loop as a skip-below bound.
        let restrictions = RestrictionSet::from_pairs(&[(1, 0)]);
        let plan = Configuration::new(pattern, schedule, restrictions).compile();
        assert_eq!(plan.loops[1].bounds, vec![LoopBound::GreaterThanValueAt(0)]);
    }

    #[test]
    fn iep_correction_counts_lost_symmetry() {
        // House with no restrictions at all: both automorphisms survive.
        let pattern = prefab::house();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
        let plan = Configuration::new(pattern, schedule, RestrictionSet::empty()).compile();
        assert_eq!(
            plan.iep_correction,
            IepCorrection::DividePrefixRestricted { divisor: 2 }
        );

        // Rectangle with a complete restriction set but a schedule whose
        // independent suffix swallows some restrictions: the divisor grows
        // but stays well defined.
        let rect = prefab::rectangle();
        let schedule = Schedule::new(&rect, vec![0, 1, 2, 3]);
        let restrictions = RestrictionSet::from_pairs(&[(0, 1), (0, 2), (1, 3)]);
        let plan = Configuration::new(rect, schedule, restrictions).compile();
        // The 4-cycle schedule 0,1,2,3 ends with two adjacent vertices, so
        // the usable suffix is 1 and only restrictions touching vertex 3 are
        // dropped.
        assert_eq!(plan.iep_suffix_len, 1);
        assert!(plan.iep_correction.divisor() >= 1);
    }

    #[test]
    fn non_uniform_prefix_restrictions_fall_back() {
        // Path A-B-C with the single restriction id(A) > id(B) and suffix
        // {C}: depending on whether B has the smallest id, either one or two
        // automorphic copies satisfy the remaining restriction, so the exact
        // division is impossible and the plan must fall back to the
        // unrestricted correction.
        let path = prefab::path_pattern(3);
        let schedule = Schedule::new(&path, vec![0, 1, 2]);
        let restrictions = RestrictionSet::from_pairs(&[(0, 1)]);
        let plan = Configuration::new(path, schedule, restrictions).compile();
        assert_eq!(
            plan.iep_correction,
            IepCorrection::DivideUnrestricted { divisor: 2 }
        );
    }

    #[test]
    fn compile_with_iep_disabled_clears_the_suffix() {
        let config = paper_house_config();
        let plan = config.compile_with_iep(false);
        assert_eq!(plan.iep_suffix_len, 0);
        assert_eq!(plan.iep_correction.divisor(), 1);
        // The loop program itself is untouched.
        assert_eq!(plan.loops, config.compile().loops);
        // And enabling IEP is identical to the plain compile.
        assert_eq!(config.compile_with_iep(true), config.compile());
    }

    #[test]
    #[should_panic]
    fn mismatched_schedule_rejected() {
        let pattern = prefab::triangle();
        let schedule = Schedule::new(&prefab::rectangle(), vec![0, 1, 2, 3]);
        let _ = Configuration::new(pattern, schedule, RestrictionSet::empty());
    }

    #[test]
    fn unrestricted_plan_divides_by_full_group() {
        // P2 (double star) with no restrictions: the IEP divisor is the full
        // automorphism count (8) and the four leaves form the suffix.
        let p = prefab::p2();
        let schedule = Schedule::new(&p, vec![0, 1, 2, 3, 4, 5]);
        let plan = Configuration::new(p, schedule, RestrictionSet::empty()).compile();
        assert_eq!(plan.iep_suffix_len, 4);
        assert_eq!(
            plan.iep_correction,
            IepCorrection::DividePrefixRestricted { divisor: 8 }
        );
    }
}
