//! Source-code generation for compiled plans.
//!
//! GraphPi's production pipeline emits C++ for the selected configuration
//! and compiles it with gcc (Section III, "Code Generation and
//! Compilation"). This reproduction executes plans with an interpreter, but
//! the generator below emits the equivalent nested-loop program — in both a
//! C++ flavour (matching the paper's Figure 5(b)/Figure 6(b) pseudocode) and
//! a Rust flavour — so the structure the engine executes can be inspected,
//! tested, and diffed against the paper.

use crate::config::{ExecutionPlan, LoopBound};

/// Target language for the emitted source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// C++-style pseudocode, as in the paper's figures.
    Cpp,
    /// Rust-style pseudocode.
    Rust,
}

/// Vertex names used in the emitted code: pattern vertex `i` is rendered as
/// an uppercase letter (`A`, `B`, …), matching the paper's figures.
fn vertex_name(i: usize) -> String {
    if i < 26 {
        ((b'A' + i as u8) as char).to_string()
    } else {
        format!("V{i}")
    }
}

/// Emits the nested-loop matching program for a plan.
pub fn generate(plan: &ExecutionPlan, language: Language) -> String {
    let mut out = String::new();
    let n = plan.num_loops();
    let order = plan.config.schedule.order();

    let schedule_names: Vec<String> = order.iter().map(|&v| vertex_name(v)).collect();
    match language {
        Language::Cpp => {
            out.push_str(&format!(
                "// GraphPi generated matcher\n// schedule: {}\n// restrictions: {}\nuint64_t count = 0;\n",
                schedule_names.join(" -> "),
                describe_restrictions(plan)
            ));
        }
        Language::Rust => {
            out.push_str(&format!(
                "// GraphPi generated matcher\n// schedule: {}\n// restrictions: {}\nlet mut count: u64 = 0;\n",
                schedule_names.join(" -> "),
                describe_restrictions(plan)
            ));
        }
    }

    for depth in 0..n {
        let loop_plan = &plan.loops[depth];
        let indent = "    ".repeat(depth);
        let var = format!("v_{}", vertex_name(loop_plan.pattern_vertex));
        let candidate_expr = if loop_plan.parents.is_empty() {
            match language {
                Language::Cpp => "V_G".to_string(),
                Language::Rust => "graph.vertices()".to_string(),
            }
        } else {
            let parents: Vec<String> = loop_plan
                .parents
                .iter()
                .map(|&p| {
                    let pv = plan.loops[p].pattern_vertex;
                    match language {
                        Language::Cpp => format!("N(v_{})", vertex_name(pv)),
                        Language::Rust => format!("graph.neighbors(v_{})", vertex_name(pv)),
                    }
                })
                .collect();
            parents.join(" ∩ ")
        };
        match language {
            Language::Cpp => {
                out.push_str(&format!("{indent}for (auto {var} : {candidate_expr}) {{\n"));
            }
            Language::Rust => {
                out.push_str(&format!("{indent}for {var} in {candidate_expr} {{\n"));
            }
        }
        let inner_indent = "    ".repeat(depth + 1);
        for bound in &loop_plan.bounds {
            let (other_pos, cmp) = match *bound {
                LoopBound::LessThanValueAt(p) => (p, "<="),
                LoopBound::GreaterThanValueAt(p) => (p, ">="),
            };
            let other = format!("v_{}", vertex_name(plan.loops[other_pos].pattern_vertex));
            // `cmp` is the violating comparison: break/continue when it holds.
            match (language, *bound) {
                (Language::Cpp, LoopBound::LessThanValueAt(_)) => out.push_str(&format!(
                    "{inner_indent}if ({other} {cmp} {var}) break; // restriction id({other}) > id({var})\n"
                )),
                (Language::Cpp, LoopBound::GreaterThanValueAt(_)) => out.push_str(&format!(
                    "{inner_indent}if ({var} {cmp2} {other}) continue; // restriction id({var}) > id({other})\n",
                    cmp2 = "<="
                )),
                (Language::Rust, LoopBound::LessThanValueAt(_)) => out.push_str(&format!(
                    "{inner_indent}if {other} {cmp} {var} {{ break; }} // restriction id({other}) > id({var})\n"
                )),
                (Language::Rust, LoopBound::GreaterThanValueAt(_)) => out.push_str(&format!(
                    "{inner_indent}if {var} <= {other} {{ continue; }} // restriction id({var}) > id({other})\n"
                )),
            }
        }
        // Injectivity comment on the innermost loop plus the embedding
        // action.
        if depth == n - 1 {
            match language {
                Language::Cpp => out.push_str(&format!(
                    "{inner_indent}count += 1; // ({}) is an embedding\n",
                    (0..n)
                        .map(|i| format!("v_{}", vertex_name(plan.loops[i].pattern_vertex)))
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
                Language::Rust => out.push_str(&format!(
                    "{inner_indent}count += 1; // ({}) is an embedding\n",
                    (0..n)
                        .map(|i| format!("v_{}", vertex_name(plan.loops[i].pattern_vertex)))
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            }
        }
    }
    for depth in (0..n).rev() {
        let indent = "    ".repeat(depth);
        out.push_str(&format!("{indent}}}\n"));
    }
    out
}

fn describe_restrictions(plan: &ExecutionPlan) -> String {
    let restrictions = plan.config.restrictions.restrictions();
    if restrictions.is_empty() {
        return "(none)".to_string();
    }
    restrictions
        .iter()
        .map(|r| {
            format!(
                "id({}) > id({})",
                vertex_name(r.greater),
                vertex_name(r.smaller)
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::schedule::Schedule;
    use graphpi_pattern::prefab;
    use graphpi_pattern::restriction::RestrictionSet;

    fn house_plan() -> ExecutionPlan {
        let pattern = prefab::house();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2, 3, 4]);
        let restrictions = RestrictionSet::from_pairs(&[(0, 1)]);
        Configuration::new(pattern, schedule, restrictions).compile()
    }

    #[test]
    fn cpp_output_mirrors_figure_5() {
        let code = generate(&house_plan(), Language::Cpp);
        // Outer loop over the whole vertex set.
        assert!(code.contains("for (auto v_A : V_G)"));
        // The restriction break in the B loop.
        assert!(code.contains("if (v_A <= v_B) break;"));
        // The intersections for D (N(B) ∩ N(C)) and E (N(A) ∩ N(B)).
        assert!(code.contains("N(v_B) ∩ N(v_C)"));
        assert!(code.contains("N(v_A) ∩ N(v_B)"));
        // Properly nested braces: 5 opens, 5 closes.
        assert_eq!(code.matches("{\n").count() + code.matches("{{").count(), 5);
        assert_eq!(code.matches("}\n").count(), 5);
        // The embedding action mentions all five vertices.
        assert!(code.contains("(v_A, v_B, v_C, v_D, v_E) is an embedding"));
    }

    #[test]
    fn rust_output_is_generated_too() {
        let code = generate(&house_plan(), Language::Rust);
        assert!(code.contains("for v_A in graph.vertices()"));
        assert!(code.contains("graph.neighbors(v_B)"));
        assert!(code.contains("break;"));
    }

    #[test]
    fn restriction_free_plan_reports_none() {
        let pattern = prefab::triangle();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2]);
        let plan = Configuration::new(pattern, schedule, RestrictionSet::empty()).compile();
        let code = generate(&plan, Language::Cpp);
        assert!(code.contains("restrictions: (none)"));
        assert!(!code.contains("break;"));
    }

    #[test]
    fn lower_bound_restriction_emits_continue() {
        let pattern = prefab::triangle();
        let schedule = Schedule::new(&pattern, vec![0, 1, 2]);
        let plan =
            Configuration::new(pattern, schedule, RestrictionSet::from_pairs(&[(1, 0)])).compile();
        let code = generate(&plan, Language::Cpp);
        assert!(code.contains("continue;"), "{code}");
    }
}
